"""Parallel merge search: wall-clock speedup with deterministic results.

The merge operation's bottleneck is candidate pipeline execution (paper
section VII-D); the parallel engine (ISSUE 3) evaluates several candidate
leaves concurrently while the single-flight checkpoint layer keeps every
``(component fingerprint, input ref)`` pair at-most-once. This bench runs
one cold multi-leaf prioritized merge search at 1, 2, and 4 workers.

Targets (ISSUE 3): >= 2x wall-clock speedup with 4 workers over the
sequential search, with *identical* candidate scores, stage output refs,
winner, and executed/reused totals at every worker count. Component cost
is simulated service delay (GIL-releasing sleeps, like the cost-model
benches), so the speedup reproduces even on single-core CI — under smoke
mode the delays shrink and scheduling overhead dominates, so only the
equivalence half is asserted there.
"""

from conftest import BENCH_SEED, BENCH_SMOKE, write_bench_record, write_result

from repro.experiments import run_parallel_merge_experiment

if BENCH_SMOKE:
    # n_clean >= 2 keeps both branches ahead of the ancestor (a one-sided
    # history would fast-forward and search nothing).
    SHAPE = dict(n_clean=2, n_extract=2, n_model=2)  # 8 leaves
    COSTS = dict(stage_seconds=0.005, model_seconds=0.01)
else:
    SHAPE = dict(n_clean=2, n_extract=3, n_model=6)  # 36 leaves
    COSTS = dict(stage_seconds=0.04, model_seconds=0.08)


def test_parallel_merge_speedup_and_equivalence():
    result = run_parallel_merge_experiment(
        workers=(1, 2, 4), seed=BENCH_SEED, **SHAPE, **COSTS
    )
    write_result("parallel_merge.txt", result.render_table())
    write_bench_record(
        "parallel_merge",
        {
            "equivalent": result.equivalent,
            "speedup": {
                str(row.workers): result.speedup_at(row.workers)
                for row in result.rows
            },
        },
    )

    # Determinism is asserted at every scale: all worker counts must agree
    # on every candidate's score, every stage output ref, the winner, and
    # the executed/reused totals.
    assert result.equivalent, "worker counts diverged on scores/output refs"
    by_workers = {row.workers: row for row in result.rows}
    for row in result.rows:
        assert row.winner_score == by_workers[1].winner_score
        assert row.evaluated == by_workers[1].evaluated
        assert row.executed == by_workers[1].executed
        assert row.reused == by_workers[1].reused

    if not BENCH_SMOKE:
        assert result.speedup_at(4) >= 2.0, (
            f"4-worker speedup {result.speedup_at(4):.2f}x below the 2x target"
        )
        assert result.speedup_at(2) >= 1.3, (
            f"2-worker speedup {result.speedup_at(2):.2f}x shows no concurrency"
        )
