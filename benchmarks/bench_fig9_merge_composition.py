"""Fig. 9: pipeline time composition during the merge operation.

Benchmarks one candidate evaluation with PR reuse (the unit whose
repetition the composition aggregates)."""

from conftest import BENCH_SEED, write_bench_record, write_result

from repro.core.context import ExecutionContext
from repro.core.executor import Executor
from repro.core.merge import (
    build_compatibility_lut,
    build_merge_scope,
    build_search_tree,
    execute_candidate,
    leaves,
    mark_checkpointed_nodes,
    prune_incompatible,
)
from repro.core.repository import MLCask
from repro.workloads import apply_nonlinear_history, nonlinear_script, readmission_workload


def test_fig9_composition(merge_result, benchmark):
    workload = readmission_workload(scale=0.5, seed=BENCH_SEED)
    repo = MLCask(metric=workload.metric, seed=BENCH_SEED)
    apply_nonlinear_history(repo, nonlinear_script(workload))
    scope = build_merge_scope(
        repo.graph,
        repo.registry,
        repo.spec(workload.name),
        repo.head_commit(workload.name, "master"),
        repo.head_commit(workload.name, "dev"),
    )
    root = build_search_tree(scope)
    prune_incompatible(root, build_compatibility_lut(scope))
    mark_checkpointed_nodes(root, scope)
    pending = [leaf for leaf in leaves(root) if not leaf.executed]
    executor = Executor(repo.checkpoints, metric=workload.metric, reuse=True)
    context = ExecutionContext(seed=BENCH_SEED, metric=workload.metric)
    state = {"i": 0}

    def evaluate_one_candidate():
        leaf = pending[state["i"] % len(pending)]
        state["i"] += 1
        return execute_candidate(leaf, scope, executor, context)

    benchmark.pedantic(evaluate_one_candidate, rounds=3, iterations=1)

    write_result("fig9_merge_composition.txt", merge_result.render_fig9())
    write_bench_record(
        "fig9_merge_composition",
        {
            "preprocessing_seconds": {
                app: {
                    mode: measure.preprocessing_seconds
                    for mode, measure in by_mode.items()
                }
                for app, by_mode in merge_result.measures.items()
            }
        },
    )

    for app, by_mode in merge_result.measures.items():
        # Paper: "The difference in pipeline time among the three systems
        # are mainly attributed to pre-processing"; training comparable.
        preproc_gap = (
            by_mode["none"].preprocessing_seconds
            - by_mode["pcpr"].preprocessing_seconds
        )
        assert preproc_gap >= 0, app
