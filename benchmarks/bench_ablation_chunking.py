"""Ablation: chunking strategy (word-hash CDC vs byte buzhash vs fixed).

Quantifies the design choice called out in DESIGN.md: how much dedup each
strategy retains under the three edit patterns our payloads exhibit
(same-length value edits, appends, arbitrary insertions), and what each
costs in throughput.
"""

import time

import numpy as np
from conftest import write_bench_record, write_result

from repro.experiments.report import format_table
from repro.storage import ChunkerConfig, ContentDefinedChunker, FixedSizeChunker


def _dedup_fraction(chunker, base: bytes, edited: bytes) -> float:
    original = set(chunker.split(base))
    shared = sum(len(c) for c in chunker.split(edited) if c in original)
    return shared / len(base)


def _throughput(chunker, data: bytes) -> float:
    start = time.perf_counter()
    chunker.split(data)
    return len(data) / (time.perf_counter() - start) / 1e6


def test_ablation_chunking(benchmark):
    rng = np.random.default_rng(0)
    base = rng.integers(0, 256, 1_000_000, dtype=np.uint8).tobytes()
    value_edit = bytearray(base)
    value_edit[500_000:500_064] = bytes(64)
    value_edit = bytes(value_edit)
    append = base + rng.integers(0, 256, 50_000, dtype=np.uint8).tobytes()
    # 5 bytes: NOT a multiple of the word size, so word-mode alignment
    # breaks downstream of the insertion point (an 8-byte-aligned insert
    # would dedup fine even in word mode).
    insertion = base[:500_000] + b"WEDGE" + base[500_000:]

    chunkers = {
        "word CDC (default)": ContentDefinedChunker(ChunkerConfig(boundary="word")),
        "byte CDC (buzhash)": ContentDefinedChunker(ChunkerConfig(boundary="byte")),
        "fixed 4KiB": FixedSizeChunker(4096),
    }

    word_chunker = chunkers["word CDC (default)"]
    benchmark.pedantic(lambda: word_chunker.split(base), rounds=5, iterations=1)

    rows = []
    for name, chunker in chunkers.items():
        rows.append([
            name,
            f"{_dedup_fraction(chunker, base, value_edit):.2f}",
            f"{_dedup_fraction(chunker, base, append):.2f}",
            f"{_dedup_fraction(chunker, base, insertion):.2f}",
            f"{_throughput(chunker, base):.0f}",
        ])
    text = format_table(
        ["strategy", "value-edit dedup", "append dedup", "insert dedup", "MB/s"],
        rows,
        title="Ablation: chunking strategy (fraction of base bytes shared)",
    )
    write_result("ablation_chunking.txt", text)
    write_bench_record(
        "ablation_chunking",
        {
            name: {
                "value_edit_dedup": _dedup_fraction(chunker, base, value_edit),
                "append_dedup": _dedup_fraction(chunker, base, append),
                "insert_dedup": _dedup_fraction(chunker, base, insertion),
                "mb_per_s": _throughput(chunker, base),
            }
            for name, chunker in chunkers.items()
        },
    )

    word = chunkers["word CDC (default)"]
    byte = chunkers["byte CDC (buzhash)"]
    fixed = chunkers["fixed 4KiB"]
    # word CDC keeps value-edit and append dedup like byte CDC...
    assert _dedup_fraction(word, base, value_edit) > 0.9
    assert _dedup_fraction(word, base, append) > 0.9
    # ...but only byte CDC survives arbitrary-length insertions...
    assert _dedup_fraction(byte, base, insertion) > 0.9
    assert _dedup_fraction(word, base, insertion) < 0.9
    # ...and fixed-size chunking loses insertions entirely.
    assert _dedup_fraction(fixed, base, insertion) < 0.6
    # word CDC must be substantially faster than byte CDC.
    assert _throughput(word, base) > 3 * _throughput(byte, base)
