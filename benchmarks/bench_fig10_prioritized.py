"""Fig. 10: prioritized vs random pipeline search, 100 trials.

Benchmarks one simulated prioritized trial (tree rebuild + ordered walk
over known scores and costs)."""

import numpy as np
from conftest import BENCH_SEED, write_bench_record, write_result

from repro.core.merge import (
    SearchSimulator,
    build_compatibility_lut,
    build_merge_scope,
    prune_incompatible,
)
from repro.core.repository import MLCask
from repro.workloads import apply_nonlinear_history, nonlinear_script, readmission_workload


def test_fig10_prioritized_search(search_result, benchmark):
    workload = readmission_workload(scale=0.4, seed=BENCH_SEED)
    repo = MLCask(metric=workload.metric, seed=BENCH_SEED)
    apply_nonlinear_history(repo, nonlinear_script(workload))
    scope = build_merge_scope(
        repo.graph,
        repo.registry,
        repo.spec(workload.name),
        repo.head_commit(workload.name, "master"),
        repo.head_commit(workload.name, "dev"),
    )
    outcome = repo.merge(workload.name, "master", "dev", mode="pcpr")
    leaf_scores = {
        e.path_key: e.score for e in outcome.evaluations if e.score is not None
    }
    costs = {r.component_id: r.run_seconds for r in repo.checkpoints.records()}
    lut = build_compatibility_lut(scope)
    simulator = SearchSimulator(
        scope, leaf_scores, costs, prune=lambda root: prune_incompatible(root, lut)
    )
    state = {"seed": 0}

    def one_prioritized_trial():
        state["seed"] += 1
        return simulator.run_trial("prioritized", seed=state["seed"])

    benchmark.pedantic(one_prioritized_trial, rounds=10, iterations=1)

    write_result("fig10_prioritized.txt", search_result.render_fig10())
    write_bench_record(
        "fig10_prioritized",
        {
            "mean_score_by_rank": {
                app: {
                    method: [p.mean_score for p in points]
                    for method, points in by_method.items()
                }
                for app, by_method in search_result.points.items()
            }
        },
    )

    for app in search_result.points:
        prioritized = search_result.points[app]["prioritized"]
        random_points = search_result.points[app]["random"]
        # Paper: prioritized scores decline with rank; random stays flat.
        first = np.mean([p.mean_score for p in prioritized[:3]])
        last = np.mean([p.mean_score for p in prioritized[-3:]])
        assert first >= last, app
        # Paper: "higher score pipeline candidates ... have a smaller
        # average end time" for the prioritized search.
        ranks_by_score = sorted(prioritized, key=lambda p: -p.mean_score)
        top_time = np.mean([p.mean_end_time for p in ranks_by_score[:3]])
        bottom_time = np.mean([p.mean_end_time for p in ranks_by_score[-3:]])
        assert top_time <= bottom_time * 1.2, app
        assert len(random_points) == len(prioritized)
