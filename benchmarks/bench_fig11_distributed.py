"""Fig. 11: distributed training — (a) loss vs time for 1/2/4/8 workers,
(b) the pipeline-speedup grid 1/((1-p)+p/k).

Benchmarks one synchronous 8-worker training step (gradient shards plus
averaging)."""

import numpy as np
from conftest import BENCH_SEED, write_bench_record, write_result

from repro.experiments import loss_decay_ordering
from repro.ml import DistributedTrainer, MLPClassifier, pipeline_speedup


def test_fig11_distributed(distributed_result, benchmark):
    rng = np.random.default_rng(BENCH_SEED)
    X = rng.standard_normal((800, 16))
    y = (X[:, 0] + X[:, 1] > 0).astype(int)

    def one_sync_step():
        model = MLPClassifier(hidden_sizes=(64, 32), seed=BENCH_SEED)
        DistributedTrainer(model, n_workers=8, seed=BENCH_SEED).train(
            X, y, n_steps=1, compute_time_per_batch=0.01
        )

    benchmark.pedantic(one_sync_step, rounds=5, iterations=1)

    text = "\n\n".join(
        [distributed_result.render_fig11a(), distributed_result.render_fig11b()]
    )
    write_result("fig11_distributed.txt", text)
    write_bench_record(
        "fig11_distributed",
        {
            "loss_decay_ordering": loss_decay_ordering(distributed_result),
            "speedup_grid": {
                f"p={p},k={k}": value
                for (p, k), value in distributed_result.speedup_grid.items()
            },
        },
    )

    # Paper: "the training loss decreases faster over training time for
    # more GPUs."
    assert loss_decay_ordering(distributed_result) == [1, 2, 4, 8]
    # Paper: p > 0.9 and k = 8 cut pipeline time below one quarter.
    assert distributed_result.speedup_grid[(0.9, 8)] > 4.0
    assert pipeline_speedup(0.95, 8) == distributed_result.speedup_grid[(0.95, 8)]
