"""Ablation: checkpoint granularity — per-component prefix reuse (MLCask)
vs whole-pipeline-only reuse vs no reuse.

Whole-pipeline reuse only skips work when the *entire* configuration
repeats; per-component reuse also accelerates partially-overlapping
candidates, which is where the merge savings of Fig. 8 come from.
"""

from conftest import BENCH_SEED, write_bench_record, write_result

from repro.core.checkpoint import ChunkedCheckpointStore
from repro.core.context import ExecutionContext
from repro.core.executor import Executor
from repro.core.pipeline import PipelineInstance
from repro.experiments.report import format_table
from repro.workloads import dpm_workload


def _run_variants(reuse: bool):
    """Run four pipeline variants sharing prefixes; count executions."""
    workload = dpm_workload(scale=0.4, seed=BENCH_SEED)
    executor = Executor(
        ChunkedCheckpointStore(), metric=workload.metric, reuse=reuse
    )
    context = ExecutionContext(seed=BENCH_SEED, metric=workload.metric)
    base = PipelineInstance(
        spec=workload.spec, components=workload.initial_components()
    )
    variants = [
        base,
        base.with_updates({"model": workload.model_version(1)}),
        base.with_updates({"model": workload.model_version(2)}),
        base.with_updates({
            "hmm": workload.stage_version("hmm", 1),
            "model": workload.model_version(3),
        }),
    ]
    executed = 0
    seconds = 0.0
    for instance in variants:
        report = executor.run(instance, context)
        executed += report.n_executed
        seconds += report.execution_seconds
    return executed, seconds


def test_ablation_checkpoint_granularity(benchmark):
    executed_reuse, seconds_reuse = benchmark.pedantic(
        lambda: _run_variants(reuse=True), rounds=1, iterations=1
    )
    executed_none, seconds_none = _run_variants(reuse=False)

    # whole-pipeline-only reuse: every variant differs somewhere, so it
    # degenerates to no reuse on this workload — same counts as reuse=False
    rows = [
        ["per-component (MLCask)", executed_reuse, f"{seconds_reuse:.3f}"],
        ["whole-pipeline only", executed_none, f"{seconds_none:.3f}"],
        ["no reuse", executed_none, f"{seconds_none:.3f}"],
    ]
    text = format_table(
        ["granularity", "components executed", "execution seconds"],
        rows,
        title="Ablation: checkpoint granularity (4 overlapping DPM variants)",
    )
    write_result("ablation_checkpoint.txt", text)
    write_bench_record(
        "ablation_checkpoint",
        {
            "executed": {
                "per_component": executed_reuse,
                "no_reuse": executed_none,
            },
            "seconds": {
                "per_component": seconds_reuse,
                "no_reuse": seconds_none,
            },
        },
    )

    # per-component reuse runs strictly fewer components: the three
    # model-only variants reuse the whole expensive prefix.
    assert executed_reuse < executed_none
    assert executed_reuse <= 5 + 1 + 1 + 3  # first full run + increments
