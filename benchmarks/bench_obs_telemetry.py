"""Telemetry: traced spans, lineage forensics, and instrumentation overhead.

Three acceptance layers share this bench. The tracing checks (ISSUE 6 +
ISSUE 9): a single push admitted by the hub must come out the other side
as a tree of at least four spans sharing one ``trace_id`` — hub
admission, the server operation, the write-lock wait, and the chunk
import — parented so an operator can read the request's life story from
the buffer:

    hub.request
    ├── hub.admission
    └── server.push
        ├── lock.write
        └── storage.import

and, new in ISSUE 9, the same push driven by an *instrumented client
over real HTTP* must yield exactly one trace id spanning both sides of
the wire — ``client.<op>`` spans on the client tracer, the hub/server
tree on the hub's, every ``hub.request`` parented under the client span
that carried it (trace-context propagation, not shared memory).

The provenance checks (ISSUE 8), on a traced merge search:

* the lineage DAG for the merge's trace has exactly one node per
  checkpoint event — node count equals the outcome's executed plus
  reused component counts;
* ``impact_of`` on a mid-pipeline component names the *exact*
  downstream invalidation set (recomputed independently here from the
  raw ledger);
* ledger capture costs <= 5% wall-clock against a lineage-free twin
  (relaxed in smoke mode, like every perf-ratio assertion).

The forensics layer (ISSUE 9): a cold metric-driven merge with the
sampling profiler attached must stay within 5% of the profiler-off wall
time, and the profiler's folded-stack table is persisted to
``results/obs_profile_folded.txt`` (flamegraph.pl/speedscope input).

The span and forensics checks are deterministic, so they are asserted
in smoke mode too. The winning trace's spans are dumped to
``results/obs_trace_spans.json`` and the merge's full ledger to
``results/obs_lineage_ledger.json`` (CI uploads it as an artifact).
"""

import json
import threading
import time

from conftest import (
    BENCH_SCALE,
    BENCH_SEED,
    BENCH_SMOKE,
    write_bench_record,
    write_result,
)

from repro.core.checkpoint import ChunkedCheckpointStore
from repro.core.context import ExecutionContext
from repro.core.executor import Executor
from repro.core.pipeline import PipelineInstance
from repro.core.repository import MLCask
from repro.hub import RepositoryHub, serve_hub
from repro.obs.profiler import SamplingProfiler
from repro.obs.trace import Tracer
from repro.provenance import LineageLedger
from repro.remote.client import Remote
from repro.remote.transport import HttpTransport
from repro.workloads import ALL_WORKLOADS

N_HISTORY = 3  # commits in the pushed history (cheap; tracing is the point)
OVERHEAD_BOUND = 10.0 if BENCH_SMOKE else 1.05  # instrumented / bare
OVERHEAD_RUNS = 3  # best-of-N per arm (cold stores, so wall-clock heavy)


def build_repo(workload):
    repo = MLCask(metric=workload.metric, seed=BENCH_SEED)
    repo.create_pipeline(
        workload.spec, workload.initial_components(), message="initial pipeline"
    )
    for idx in range(1, N_HISTORY + 1):
        repo.commit(
            workload.name,
            {workload.model_stage: workload.model_version(idx)},
            message=f"update {idx}",
        )
    return repo


def traced_push():
    """Push once through a traced hub; return every finished span."""
    workload = ALL_WORKLOADS["readmission"](scale=BENCH_SCALE, seed=BENCH_SEED)
    team_repo = build_repo(workload)
    hub = RepositoryHub(tracer=Tracer())
    hub.add_tenant("team0", tokens=["tok-0"])
    remote = team_repo.add_remote(
        "hub", hub.local_transport("team0", "pipelines", "tok-0")
    )
    remote.push(workload.name)
    return hub.tracer.drain()


def traced_push_over_http():
    """One push over real HTTP: instrumented client, instrumented hub.

    Returns ``(client_spans, hub_spans, sync_span)`` — the client
    tracer's buffer, the hub tracer's buffer, and the client-side root
    span that wrapped the push conversation. The only thing the two
    tracers share is the wire: any join between their spans is the
    propagated ``trace_ctx``, not process memory.
    """
    workload = ALL_WORKLOADS["readmission"](scale=BENCH_SCALE, seed=BENCH_SEED)
    team_repo = build_repo(workload)
    hub = RepositoryHub(tracer=Tracer())
    hub.add_tenant("team0", tokens=["tok-0"])
    hub.create_repo("team0", "pipelines")
    server = serve_hub(hub, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client_tracer = Tracer()
    transport = HttpTransport(server.repo_url("team0", "pipelines"), token="tok-0")
    try:
        remote = Remote(team_repo, transport, name="hub-http", tracer=client_tracer)
        with client_tracer.span("client.sync", remote="hub-http") as sync_span:
            remote.push(workload.name)
    finally:
        transport.close()
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
    return client_tracer.drain(), hub.tracer.drain(), sync_span


def check_cross_process(client_spans, hub_spans, sync_span):
    """ISSUE 9 acceptance: ONE trace id spans the wire, links verified."""
    trace_id = sync_span.trace_id

    # Single trace on both sides: every span either tracer finished
    # during the push belongs to the client root's trace.
    assert {s["trace_id"] for s in client_spans} == {trace_id}
    assert {s["trace_id"] for s in hub_spans} == {trace_id}

    # Client side: one root (the sync span), every client.<op> under it.
    client_by_id = {s["span_id"]: s for s in client_spans}
    for span in client_spans:
        if span["span_id"] == sync_span.span_id:
            assert span["parent_id"] is None
        else:
            assert span["parent_id"] == sync_span.span_id, span["name"]
            assert span["name"].startswith("client."), span["name"]

    # Server side: every hub.request is parented under the exact
    # client.<op> span that carried its request — the cross-process link.
    roots = [s for s in hub_spans if s["name"] == "hub.request"]
    assert roots, [s["name"] for s in hub_spans]
    for root in roots:
        carrier = client_by_id.get(root["parent_id"])
        assert carrier is not None, root
        assert carrier["name"].startswith("client."), carrier["name"]

    # The push itself made it across with its full server-side tree.
    names = {s["name"] for s in hub_spans}
    assert {"hub.request", "hub.admission", "server.push",
            "lock.write", "storage.import"} <= names, sorted(names)
    return trace_id, roots


def push_trace(spans):
    """The span tree of the push request (there is exactly one push)."""
    (push,) = [s for s in spans if s["name"] == "server.push"]
    trace = [s for s in spans if s["trace_id"] == push["trace_id"]]
    return push, trace


def check_trace(push, trace):
    by_name = {}
    for span in trace:
        by_name.setdefault(span["name"], []).append(span)

    # ISSUE 6 acceptance: >= 4 correlated spans for one traced push.
    assert len(trace) >= 4, [s["name"] for s in trace]
    assert {s["trace_id"] for s in trace} == {push["trace_id"]}
    for name in ("hub.request", "hub.admission", "server.push",
                 "lock.write", "storage.import"):
        assert name in by_name, (name, sorted(by_name))

    # Parenting tells the request's story: admission and the operation
    # hang off the hub root; the lock wait and chunk import hang off the
    # operation.
    (root,) = by_name["hub.request"]
    assert root["parent_id"] is None
    assert by_name["hub.admission"][0]["parent_id"] == root["span_id"]
    assert push["parent_id"] == root["span_id"]
    for child in ("lock.write", "storage.import"):
        assert by_name[child][0]["parent_id"] == push["span_id"], child

    # The root saw the whole request and recorded the admission outcome.
    assert root["status"] == "ok"
    assert root["attrs"]["outcome"] == "allowed"
    assert root["seconds"] >= push["seconds"]
    imported = by_name["storage.import"][0]["attrs"]
    assert imported["chunks"] > 0 and imported["bytes"] > 0
    return root


def build_diverged_repo(workload):
    """A history whose master/dev heads force a metric-driven merge."""
    repo = build_repo(workload)
    repo.branch(workload.name, "dev")
    repo.commit(
        workload.name,
        {workload.model_stage: workload.model_version(N_HISTORY + 1)},
        branch="dev",
        message="dev candidate",
    )
    # Diverge master on a *mid-pipeline* stage, so the merge is a real
    # metric-driven search (no fast-forward) whose cross-branch
    # candidates mix never-run combinations: the trace then contains
    # both executed and reused lineage events.
    mid_stage = workload.spec.stages[1]
    repo.commit(
        workload.name,
        {mid_stage: workload.stage_version(mid_stage, 1, 0, 0)},
        branch="master",
        message="master candidate",
    )
    return repo


def traced_merge():
    """A merge search under one tracer span; return (repo, outcome, span)."""
    workload = ALL_WORKLOADS["readmission"](scale=BENCH_SCALE, seed=BENCH_SEED)
    repo = build_diverged_repo(workload)
    tracer = Tracer()
    with tracer.span("merge.search") as span:
        outcome = repo.merge(workload.name, "master", "dev")
    return workload, repo, outcome, span


def check_forensics(repo, outcome, span):
    """ISSUE 8 (a): one lineage node per checkpoint event of the trace."""
    result = repo.trace_forensics(span.trace_id)
    events = outcome.components_executed + outcome.components_reused
    assert len(result["nodes"]) == events, (len(result["nodes"]), events)
    assert result["executed"] == outcome.components_executed
    assert result["reused"] == outcome.components_reused
    assert {n["trace_id"] for n in result["nodes"]} == {span.trace_id}
    return result


def check_impact(workload, repo):
    """ISSUE 8 (b): the what-if set for a mid-pipeline component equals
    the downstream closure recomputed independently from the raw log."""
    stage = workload.spec.stages[1]  # mid-pipeline: first post-dataset stage
    records = repo.lineage.records()
    component = next(r.component_id for r in records if r.stage == stage)

    # Independent recomputation: BFS the input_refs relation directly.
    seeds = {r.output_ref for r in records if r.component_id == component}
    downstream, frontier = set(), set(seeds)
    while frontier:
        frontier = {
            r.output_ref
            for r in records
            if frontier.intersection(r.input_refs)
            and r.output_ref not in downstream | seeds
        }
        downstream |= frontier

    result = repo.impact_of(component)
    assert result["outputs"] == sorted(seeds)
    assert result["invalidated"] == sorted(downstream), (
        len(result["invalidated"]),
        len(downstream),
    )
    return result, component


def measure_overhead():
    """ISSUE 8 (c): ledger-attached vs bare executor, cold stores, best-of-N."""
    workload = ALL_WORKLOADS["readmission"](scale=BENCH_SCALE, seed=BENCH_SEED)
    instance = PipelineInstance(
        spec=workload.spec, components=workload.initial_components()
    )
    context = ExecutionContext(seed=BENCH_SEED, metric=workload.metric)

    def one_run_seconds(lineage):
        executor = Executor(
            ChunkedCheckpointStore(), metric=workload.metric, lineage=lineage
        )
        started = time.perf_counter()
        executor.run(instance, context)
        return time.perf_counter() - started

    # Interleaved arms compared on best runs: cold runs vary more
    # run-to-run than the ledger costs, so sequential arms would
    # measure machine drift, not the capture overhead.
    bare = instrumented = float("inf")
    for _ in range(2 * OVERHEAD_RUNS):
        bare = min(bare, one_run_seconds(None))
        instrumented = min(instrumented, one_run_seconds(LineageLedger()))
    ratio = instrumented / bare
    assert ratio <= OVERHEAD_BOUND, (
        f"lineage capture overhead {ratio:.3f}x exceeds {OVERHEAD_BOUND}x"
    )
    return bare, instrumented, ratio


def measure_profiler_overhead():
    """ISSUE 9 acceptance: profiler-on vs profiler-off cold merge within
    the overhead bound, best-of-N fresh repositories per arm; returns the
    folded-stack table of the profiled arm as the committed artifact."""
    workload = ALL_WORKLOADS["readmission"](scale=BENCH_SCALE, seed=BENCH_SEED)

    def one_merge_seconds(profiler):
        repo = build_diverged_repo(workload)  # setup outside the timer
        if profiler is not None:
            profiler.start()
        started = time.perf_counter()
        repo.merge(workload.name, "master", "dev")
        elapsed = time.perf_counter() - started
        if profiler is not None:
            profiler.stop()
        return elapsed

    # The arms are *interleaved* (off, on, off, on, ...) and compared on
    # their best runs: cold-store merges vary more run-to-run than the
    # profiler costs, so sequential arms would measure drift, not the
    # sampler. The interval is the documented 10ms default.
    profiler = SamplingProfiler(interval=0.01)
    off = on = float("inf")
    for _ in range(2 * OVERHEAD_RUNS):
        off = min(off, one_merge_seconds(None))
        on = min(on, one_merge_seconds(profiler))
    ratio = on / off
    assert ratio <= OVERHEAD_BOUND, (
        f"profiler overhead {ratio:.3f}x exceeds {OVERHEAD_BOUND}x"
    )
    folded = profiler.folded()
    # A full-scale merge runs long enough that a 10ms sampler must see
    # it; smoke merges can finish between ticks.
    assert folded or BENCH_SMOKE, "profiler saw no stacks at full scale"
    return off, on, ratio, folded


def main():
    spans = traced_push()
    push, trace = push_trace(spans)
    root = check_trace(push, trace)

    client_spans, hub_spans, sync_span = traced_push_over_http()
    wire_trace_id, wire_roots = check_cross_process(
        client_spans, hub_spans, sync_span
    )

    workload, repo, outcome, span = traced_merge()
    forensics = check_forensics(repo, outcome, span)
    impact, component = check_impact(workload, repo)
    bare, instrumented, ratio = measure_overhead()
    prof_off, prof_on, prof_ratio, folded = measure_profiler_overhead()

    names = sorted({s["name"] for s in trace})
    lines = [
        f"One traced push through the hub (scale={BENCH_SCALE}, "
        f"seed={BENCH_SEED})",
        "",
        f"trace {root['trace_id']}: {len(trace)} correlated spans "
        f"(assert >= 4)",
        f"span names: {', '.join(names)}",
        f"hub.request: {root['seconds'] * 1000:.2f} ms, "
        f"outcome={root['attrs']['outcome']}",
        f"total spans recorded across the push conversation: {len(spans)}",
        "",
        f"Cross-process push over HTTP, trace {wire_trace_id}:",
        f"{len(client_spans)} client span(s) + {len(hub_spans)} hub "
        f"span(s), ONE trace id across the wire (assert exact)",
        f"{len(wire_roots)} hub.request span(s), each parented under the "
        f"client.<op> span that carried it (propagated trace_ctx)",
        "",
        f"Traced merge search, trace {span.trace_id}:",
        f"lineage DAG nodes: {len(forensics['nodes'])} == "
        f"{outcome.components_executed} executed + "
        f"{outcome.components_reused} reused (exact)",
        f"impact_of({component}): {len(impact['outputs'])} direct "
        f"output(s), {len(impact['invalidated'])} downstream "
        f"checkpoint(s) invalidated == independent closure (exact)",
        f"ledger records after merge: {len(repo.lineage)}",
        "",
        f"Provenance capture overhead (best of {2 * OVERHEAD_RUNS} "
        f"interleaved cold runs):",
        f"bare executor:       {bare * 1000:.1f} ms",
        f"lineage-attached:    {instrumented * 1000:.1f} ms",
        f"ratio: {ratio:.3f}x (assert <= {OVERHEAD_BOUND}x)",
        "",
        f"Sampling-profiler overhead (best of {2 * OVERHEAD_RUNS} "
        f"interleaved cold merges):",
        f"profiler off:        {prof_off * 1000:.1f} ms",
        f"profiler on (10ms):  {prof_on * 1000:.1f} ms",
        f"ratio: {prof_ratio:.3f}x (assert <= {OVERHEAD_BOUND}x), "
        f"{len(folded.splitlines()) if folded else 0} unique stacks",
        "",
        "span tree dumped to obs_trace_spans.json; "
        "merge ledger dumped to obs_lineage_ledger.json; "
        "folded stacks dumped to obs_profile_folded.txt",
    ]
    write_result("obs_telemetry.txt", "\n".join(lines))
    write_result(
        "obs_trace_spans.json",
        json.dumps(sorted(trace, key=lambda s: s["start"]), indent=2),
    )
    write_result(
        "obs_lineage_ledger.json",
        json.dumps(repo.lineage.to_payload(), indent=2, sort_keys=True),
    )
    write_result(
        "obs_profile_folded.txt",
        folded if folded else "# no samples (smoke-size merge)",
    )
    write_bench_record(
        "obs_telemetry",
        {
            "push_trace_spans": len(trace),
            "cross_process": {
                "client_spans": len(client_spans),
                "hub_spans": len(hub_spans),
                "hub_requests": len(wire_roots),
            },
            "lineage_overhead_ratio": ratio,
            "profiler_overhead_ratio": prof_ratio,
            "profiler_unique_stacks": len(folded.splitlines()) if folded else 0,
        },
    )


def test_traced_push_span_tree():
    main()


if __name__ == "__main__":
    main()
