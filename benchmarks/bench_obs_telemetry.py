"""Telemetry: one traced push is one correlated span tree (ISSUE 6).

The tracing acceptance check for the observability subsystem: a single
push admitted by the hub must come out the other side as a tree of at
least four spans sharing one ``trace_id`` — hub admission, the server
operation, the write-lock wait, and the chunk import — parented so an
operator can read the request's life story from the buffer:

    hub.request
    ├── hub.admission
    └── server.push
        ├── lock.write
        └── storage.import

Deterministic (no timing thresholds), so everything here is asserted in
smoke mode too. The winning trace's spans are dumped to
``results/obs_trace_spans.json`` for inspection.
"""

import json

from conftest import BENCH_SCALE, BENCH_SEED, write_result

from repro.core.repository import MLCask
from repro.hub import RepositoryHub
from repro.obs.trace import Tracer
from repro.workloads import ALL_WORKLOADS

N_HISTORY = 3  # commits in the pushed history (cheap; tracing is the point)


def build_repo(workload):
    repo = MLCask(metric=workload.metric, seed=BENCH_SEED)
    repo.create_pipeline(
        workload.spec, workload.initial_components(), message="initial pipeline"
    )
    for idx in range(1, N_HISTORY + 1):
        repo.commit(
            workload.name,
            {workload.model_stage: workload.model_version(idx)},
            message=f"update {idx}",
        )
    return repo


def traced_push():
    """Push once through a traced hub; return every finished span."""
    workload = ALL_WORKLOADS["readmission"](scale=BENCH_SCALE, seed=BENCH_SEED)
    team_repo = build_repo(workload)
    hub = RepositoryHub(tracer=Tracer())
    hub.add_tenant("team0", tokens=["tok-0"])
    remote = team_repo.add_remote(
        "hub", hub.local_transport("team0", "pipelines", "tok-0")
    )
    remote.push(workload.name)
    return hub.tracer.drain()


def push_trace(spans):
    """The span tree of the push request (there is exactly one push)."""
    (push,) = [s for s in spans if s["name"] == "server.push"]
    trace = [s for s in spans if s["trace_id"] == push["trace_id"]]
    return push, trace


def check_trace(push, trace):
    by_name = {}
    for span in trace:
        by_name.setdefault(span["name"], []).append(span)

    # ISSUE 6 acceptance: >= 4 correlated spans for one traced push.
    assert len(trace) >= 4, [s["name"] for s in trace]
    assert {s["trace_id"] for s in trace} == {push["trace_id"]}
    for name in ("hub.request", "hub.admission", "server.push",
                 "lock.write", "storage.import"):
        assert name in by_name, (name, sorted(by_name))

    # Parenting tells the request's story: admission and the operation
    # hang off the hub root; the lock wait and chunk import hang off the
    # operation.
    (root,) = by_name["hub.request"]
    assert root["parent_id"] is None
    assert by_name["hub.admission"][0]["parent_id"] == root["span_id"]
    assert push["parent_id"] == root["span_id"]
    for child in ("lock.write", "storage.import"):
        assert by_name[child][0]["parent_id"] == push["span_id"], child

    # The root saw the whole request and recorded the admission outcome.
    assert root["status"] == "ok"
    assert root["attrs"]["outcome"] == "allowed"
    assert root["seconds"] >= push["seconds"]
    imported = by_name["storage.import"][0]["attrs"]
    assert imported["chunks"] > 0 and imported["bytes"] > 0
    return root


def main():
    spans = traced_push()
    push, trace = push_trace(spans)
    root = check_trace(push, trace)

    names = sorted({s["name"] for s in trace})
    lines = [
        f"One traced push through the hub (scale={BENCH_SCALE}, "
        f"seed={BENCH_SEED})",
        "",
        f"trace {root['trace_id']}: {len(trace)} correlated spans "
        f"(assert >= 4)",
        f"span names: {', '.join(names)}",
        f"hub.request: {root['seconds'] * 1000:.2f} ms, "
        f"outcome={root['attrs']['outcome']}",
        f"total spans recorded across the push conversation: {len(spans)}",
        "",
        "span tree dumped to obs_trace_spans.json",
    ]
    write_result("obs_telemetry.txt", "\n".join(lines))
    write_result(
        "obs_trace_spans.json",
        json.dumps(sorted(trace, key=lambda s: s["start"]), indent=2),
    )


def test_traced_push_span_tree():
    main()


if __name__ == "__main__":
    main()
