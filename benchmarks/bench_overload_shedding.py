"""Observability-driven overload shedding: bounded p99 under a storm.

The self-aware-serving claim (ISSUE 10): a hub whose admission pipeline
consults its own sliding-window health model keeps the latency of the
requests it *accepts* bounded under overload, at the price of shedding
the rest with a typed, retryable error — while a hub without shedding
lets every request marinate in the lock queue.

The storm is a closed loop of ``K`` writers hammering ``put_chunks``
(exclusive-lock writes, so concurrency serializes into queueing delay)
against one hub over real HTTP, twice:

* **shedding off** — every request is admitted; the accepted-request
  p99 saturates near ``K x`` the single-request service time, far past
  the configured objective;
* **shedding on** — once the windowed p99 of completed requests blows
  the objective, admission sheds writes with
  :class:`~repro.errors.ServerOverloadedError` (``retry_after`` hint,
  honored by the workers with jittered backoff).

The SLO assertion reads the same instrument the shedder does: the
health model's sliding-window per-op p99 (fetched over the wire via the
``health`` RPC at storm end, i.e. the steady-state trailing window of
*accepted* requests). The off arm must blow it; the on arm must keep it
within ``ASSERT_SLACK x`` the objective — slack because admission is
reactive: it cannot recall requests already queued when a breach is
detected, so each re-arm admits a small burst. Client-observed
latencies are reported alongside for color; they additionally carry
transfer time and scheduler noise the server model does not govern.

Also asserted, deterministically (smoke mode too):

* a shed request never partially mutates the repo: the shed payload's
  chunk digest is still reported missing after the storm;
* the typed error round-trips the wire and ``Remote`` backs off per
  ``retry_after`` (injected backoff recorder sees every retry);
* ``GET /readyz`` flips to 503 while shedding is active and recovers
  to 200 after the window slides; ``GET /healthz`` answers 200
  throughout (liveness is not load-dependent);
* with shedding off, readiness never flips (no errors, no burn).
"""

import random
import threading
import time
import urllib.error
import urllib.request

from conftest import BENCH_SEED, BENCH_SMOKE, write_bench_record, write_result

from repro.errors import ServerOverloadedError
from repro.hub import RepositoryHub, serve_hub
from repro.obs.slo import SLOConfig
from repro.remote.client import Remote
from repro.remote.transport import HttpTransport
from repro.storage import sha256_hex

N_WORKERS = 8 if BENCH_SMOKE else 24
STORM_SECONDS = 1.5 if BENCH_SMOKE else 4.0
CHUNKS_PER_REQUEST = 32 if BENCH_SMOKE else 48
CHUNK_BYTES = 16 * 1024 if BENCH_SMOKE else 64 * 1024
# Calibrated against the storm shape on the *server-side* signal the
# monitor actually sees (handler time: lock wait + chunk import; client
# transfer time is invisible to it): one request alone serves well under
# the objective, K concurrent writers queue on the exclusive lock and
# blow well past it (smoke: single ~2.5ms / storm ~22ms vs the 8ms
# objective; full: single ~5ms / storm ~200ms vs 30ms).
OBJECTIVE_P99 = 0.008 if BENCH_SMOKE else 0.03
RETRY_AFTER = 0.2             # the server's shed hint
WINDOW_SECONDS = 2.0          # short: lets shedding disengage and re-arm
READY_POLL = 0.05
RECOVERY_TIMEOUT = WINDOW_SECONDS + 5.0
# Steady-state accepted p99 must stay within ASSERT_SLACK x objective;
# the off-arm p99 must blow past BLOWN_FACTOR x objective. Smoke runs
# exercise the machinery with the ratio assertions relaxed, like every
# timing assertion in this suite.
ASSERT_SLACK = 100.0 if BENCH_SMOKE else 3.0
BLOWN_FACTOR = 0.0 if BENCH_SMOKE else 2.0


def bench_slo(shed_enabled: bool) -> SLOConfig:
    return SLOConfig(
        objectives={"put_chunks": OBJECTIVE_P99},
        window_seconds=WINDOW_SECONDS,
        tick_seconds=0.05,
        # Two samples re-arm the shedder: detection latency bounds how
        # large a re-admission burst can grow once the window slides.
        min_samples=2,
        retry_after_seconds=RETRY_AFTER,
        shed_enabled=shed_enabled,
    )


def start_hub(shed_enabled: bool):
    hub = RepositoryHub(slo=bench_slo(shed_enabled))
    hub.add_tenant("team0", tokens=["tok-0"])
    hub.create_repo("team0", "pipelines")
    server = serve_hub(hub)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return hub, server, thread


def payload_for(rng: random.Random):
    """One put_chunks request body: unique, deterministic chunk blobs."""
    blobs = [rng.randbytes(CHUNK_BYTES) for _ in range(CHUNKS_PER_REQUEST)]
    return [sha256_hex(blob) for blob in blobs], blobs


def probe_url(server):
    return server.repo_url("team0", "pipelines")


def run_storm(server, shed_enabled: bool):
    """K closed-loop writers for STORM_SECONDS; returns observations."""
    stop_at = time.perf_counter() + STORM_SECONDS
    accepted = []  # (admitted_at, seconds) per successful request
    shed_count = [0]
    first_shed_at = [None]
    shed_seen = threading.Event()
    errors = []
    lock = threading.Lock()

    def worker(idx: int):
        rng = random.Random(BENCH_SEED * 1000 + idx)
        transport = HttpTransport(probe_url(server), token="tok-0")
        # overload_retries=0: the worker owns the backoff loop so every
        # shed is counted once (Remote's built-in retry is demonstrated
        # separately by the probe below).
        remote = Remote(repo=None, transport=transport, overload_retries=0)
        consecutive_sheds = 0
        try:
            while time.perf_counter() < stop_at:
                digests, blobs = payload_for(rng)
                admitted_at = time.perf_counter()
                try:
                    remote._call(
                        {"op": "put_chunks", "digests": digests}, blobs
                    )
                except ServerOverloadedError as error:
                    with lock:
                        shed_count[0] += 1
                        if first_shed_at[0] is None:
                            first_shed_at[0] = admitted_at
                    shed_seen.set()
                    # Honor the server's hint with jittered exponential
                    # backoff, like the production client does: shed
                    # writers must not return in lockstep and recreate
                    # the very burst that shed them.
                    consecutive_sheds = min(consecutive_sheds + 1, 4)
                    time.sleep(
                        error.retry_after
                        * (2 ** (consecutive_sheds - 1))
                        * (0.5 + rng.random())
                    )
                    continue
                consecutive_sheds = 0
                elapsed = time.perf_counter() - admitted_at
                with lock:
                    accepted.append((admitted_at, elapsed))
        except Exception as error:  # noqa: BLE001 - surfaced via assert
            errors.append(error)
        finally:
            transport.close()

    ready_codes = []
    mid_healths = []

    def ready_watcher():
        # Sample the health report over the wire mid-storm (the health
        # op is shed-exempt): the windowed p99 then reflects the loaded
        # steady state, not the post-storm drain. Several samples, so
        # the assertion sees the worst window either arm produced.
        sample_times = [
            stop_at - STORM_SECONDS * fraction
            for fraction in (0.6, 0.35, 0.1)
        ]
        while time.perf_counter() < stop_at:
            ready_codes.append(http_status(f"{server.url}/readyz"))
            if sample_times and time.perf_counter() >= sample_times[0]:
                sample_times.pop(0)
                mid_healths.append(remote_health(server))
            time.sleep(READY_POLL)

    threads = [
        threading.Thread(target=worker, args=(idx,))
        for idx in range(N_WORKERS)
    ]
    watcher = threading.Thread(target=ready_watcher)
    for t in threads:
        t.start()
    watcher.start()

    # While the storm rages (shedding arm only): prove the typed error
    # and the never-partially-mutate contract with a probe whose unique
    # payload must not land, and whose Remote backs off per retry_after.
    shed_digest = None
    backoff_delays = []
    if shed_enabled and shed_seen.wait(timeout=STORM_SECONDS):
        shed_digest, backoff_delays = run_shed_probe(server)

    for t in threads:
        t.join()
    watcher.join()
    assert not errors, f"storm worker failed: {errors[:1]}"
    return {
        "accepted": accepted,
        "shed": shed_count[0],
        "first_shed_at": first_shed_at[0],
        "ready_codes": ready_codes,
        "mid_healths": mid_healths,
        "shed_digest": shed_digest,
        "backoff_delays": backoff_delays,
    }


def run_shed_probe(server):
    """One put_chunks that gets shed: typed error, backoff, no mutation.

    Retries fresh payloads until one is shed (the storm makes that
    near-immediate); returns its digest so the caller can verify the
    content never landed, plus the delays the injected backoff recorded.
    """
    rng = random.Random(BENCH_SEED + 987)
    delays = []
    transport = HttpTransport(probe_url(server), token="tok-0")
    remote = Remote(
        repo=None, transport=transport,
        overload_retries=2, backoff=delays.append,
    )
    try:
        for _ in range(50):
            blob = rng.randbytes(CHUNK_BYTES)
            digest = sha256_hex(blob)
            delays.clear()
            try:
                remote._call({"op": "put_chunks", "digests": [digest]}, [blob])
            except ServerOverloadedError as error:
                # The typed error crossed the wire with its hint intact,
                # and the client slept once per retry before giving up.
                assert error.retry_after == RETRY_AFTER, error.retry_after
                assert len(delays) == 2, delays
                assert all(d > 0 for d in delays), delays
                return digest, list(delays)
    finally:
        transport.close()
    raise AssertionError("probe was never shed during the storm")


def check_not_mutated(server, shed_digest: str):
    """The shed probe's chunk must still be missing server-side."""
    transport = HttpTransport(probe_url(server), token="tok-0")
    try:
        meta, _ = Remote(repo=None, transport=transport)._call(
            {"op": "missing_chunks", "digests": [shed_digest]}
        )
    finally:
        transport.close()
    assert meta["missing"] == [shed_digest], (
        "a shed put_chunks must leave no trace in the store"
    )


def http_status(url: str) -> int:
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.status
    except urllib.error.HTTPError as error:
        return error.code


def await_recovery(server) -> float:
    """Poll /readyz until 200; returns how long recovery took."""
    started = time.perf_counter()
    while time.perf_counter() - started < RECOVERY_TIMEOUT:
        if http_status(f"{server.url}/readyz") == 200:
            return time.perf_counter() - started
        time.sleep(READY_POLL)
    raise AssertionError(
        f"/readyz did not recover within {RECOVERY_TIMEOUT}s"
    )


def percentile(values, q: float) -> float:
    if not values:
        return 0.0
    ranked = sorted(values)
    return ranked[min(len(ranked) - 1, int(q * len(ranked)))]


def remote_health(server) -> dict:
    """The health report over the wire (the authenticated health op)."""
    transport = HttpTransport(probe_url(server), token="tok-0")
    try:
        return Remote(repo=None, transport=transport).health()
    finally:
        transport.close()


def run_arm(shed_enabled: bool) -> dict:
    hub, server, thread = start_hub(shed_enabled)
    try:
        assert http_status(f"{server.url}/healthz") == 200
        result = run_storm(server, shed_enabled)
        assert http_status(f"{server.url}/healthz") == 200
        # Mid-storm trailing windows: p99 of the requests that were
        # actually accepted, exactly as the model saw it. Two summaries
        # with different jobs: the *worst* sampled window backs the
        # off-arm existence claim (unshed overload drives the signal
        # arbitrarily high at some point), the *median* window backs the
        # on-arm steady-state claim (shedding keeps the typical window
        # bounded — individual windows still spike while a re-admission
        # burst drains, because admission cannot recall queued work).
        reports = result["mid_healths"]
        assert reports, "mid-storm health samples never taken"
        puts = [r.get("ops", {}).get("put_chunks", {}) for r in reports]
        p99s = sorted(put.get("p99", 0.0) or 0.0 for put in puts)
        result["window_p99_max"] = p99s[-1]
        result["window_p99_median"] = p99s[len(p99s) // 2]
        result["window_count"] = max(put.get("count", 0) for put in puts)
        report = reports[-1]
        result["health_report"] = report

        if shed_enabled:
            assert result["shed"] > 0, "storm never tripped the shedder"
            assert 503 in result["ready_codes"], (
                "/readyz never flipped while shedding"
            )
            check_not_mutated(server, result["shed_digest"])
            result["recovery_seconds"] = await_recovery(server)
            assert report["shedding"]["total"] > 0
            assert report["shedding"]["enabled"] is True
        else:
            assert result["shed"] == 0
            assert set(result["ready_codes"]) == {200}, (
                "readiness must not flip without shedding or errors"
            )
        return result
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def main():
    off = run_arm(shed_enabled=False)
    on = run_arm(shed_enabled=True)

    client_p99_off = percentile([s for _, s in off["accepted"]], 0.99)
    client_p99_on = percentile([s for _, s in on["accepted"]], 0.99)
    window_p99_off = off["window_p99_max"]
    window_p99_on = on["window_p99_median"]

    assert window_p99_off > BLOWN_FACTOR * OBJECTIVE_P99, (
        f"unshed storm windowed p99 {window_p99_off:.3f}s never blew the "
        f"{OBJECTIVE_P99:.3f}s objective — storm too weak to demonstrate"
    )
    assert window_p99_on <= ASSERT_SLACK * OBJECTIVE_P99, (
        f"accepted-request windowed p99 {window_p99_on:.3f}s exceeds "
        f"{ASSERT_SLACK:.1f}x the {OBJECTIVE_P99:.3f}s objective"
    )
    if not BENCH_SMOKE:
        assert window_p99_off > window_p99_on, (
            window_p99_off, window_p99_on,
        )

    lines = [
        "Observability-driven overload shedding "
        f"(K={N_WORKERS} writers, {STORM_SECONDS:.1f}s storm, "
        f"objective p99 {OBJECTIVE_P99 * 1000:.0f} ms, smoke={BENCH_SMOKE})",
        "",
        f"{'arm':14s} {'accepted':>9s} {'shed':>7s} "
        f"{'windowed p99':>13s} {'client p99':>11s}",
        f"{'shedding off':14s} {len(off['accepted']):>9d} "
        f"{off['shed']:>7d} {window_p99_off * 1000:>10.1f} ms "
        f"{client_p99_off * 1000:>8.1f} ms",
        f"{'shedding on':14s} {len(on['accepted']):>9d} "
        f"{on['shed']:>7d} {window_p99_on * 1000:>10.1f} ms "
        f"{client_p99_on * 1000:>8.1f} ms  "
        f"({on['window_count']} in the mid-storm window)",
        "",
        f"the windowed p99 is the model's own signal — the trailing "
        f"{WINDOW_SECONDS:.0f}s of accepted requests sampled 3x "
        "mid-storm over the wire (off arm: worst sample; on arm: median "
        "sample): "
        f"off-arm blew the objective "
        f"{window_p99_off / OBJECTIVE_P99:.1f}x over; on-arm stayed "
        f"within {ASSERT_SLACK:.1f}x (admission is reactive: each re-arm "
        "admits a short burst it cannot recall)",
        "",
        "shed contract: ServerOverloadedError round-tripped with "
        f"retry_after={RETRY_AFTER}s; Remote backed off "
        f"{len(on['backoff_delays'])}x "
        f"({', '.join(f'{d * 1000:.0f} ms' for d in on['backoff_delays'])}); "
        "shed payload still missing_chunks after the storm (zero mutation)",
        "",
        f"/readyz flipped to 503 during the storm and recovered in "
        f"{on['recovery_seconds']:.2f}s once the window slid; "
        "/healthz answered 200 throughout; the unshed arm never flipped",
    ]
    write_result("overload_shedding.txt", "\n".join(lines))
    write_bench_record(
        "overload_shedding",
        {
            "accepted_off": len(off["accepted"]),
            "accepted_on": len(on["accepted"]),
            "shed_on": on["shed"],
            "window_p99_off_seconds": window_p99_off,
            "window_p99_on_seconds": window_p99_on,
            "client_p99_off_seconds": client_p99_off,
            "client_p99_on_seconds": client_p99_on,
            "objective_p99_seconds": OBJECTIVE_P99,
            "backoff_retries": len(on["backoff_delays"]),
            "recovery_seconds": on["recovery_seconds"],
        },
    )


def test_overload_shedding():
    main()


if __name__ == "__main__":
    main()
