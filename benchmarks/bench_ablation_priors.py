"""Ablation: prioritized-search initialization — history scores vs cold
start.

Section VII-E initializes node scores "using scores of the trained
pipelines on MERGE_HEAD and HEAD". This ablation disables that
initialization (cold start: every leaf unscored) and measures how much
later the optimum is found.
"""

import numpy as np
from conftest import BENCH_SEED, write_bench_record, write_result

from repro.core.merge import (
    SearchSimulator,
    build_compatibility_lut,
    build_merge_scope,
    prune_incompatible,
)
from repro.core.repository import MLCask
from repro.experiments.report import format_table
from repro.workloads import apply_nonlinear_history, nonlinear_script, readmission_workload


def _mean_first_optimal_rank(simulator, method, n_trials, best_score):
    ranks = []
    for seed in range(n_trials):
        trial = simulator.run_trial(method, seed=seed)
        ranks.append(
            next(s.rank for s in trial.steps if s.score >= best_score - 1e-9)
        )
    return float(np.mean(ranks))


def test_ablation_priors(benchmark):
    # scale 0.5: at smaller scales the seeded landscape can anti-correlate
    # with history (see EXPERIMENTS.md deviations) and priors then hurt —
    # this ablation quantifies the representative configuration
    workload = readmission_workload(scale=0.5, seed=BENCH_SEED)
    repo = MLCask(metric=workload.metric, seed=BENCH_SEED)
    apply_nonlinear_history(repo, nonlinear_script(workload))
    scope = build_merge_scope(
        repo.graph,
        repo.registry,
        repo.spec(workload.name),
        repo.head_commit(workload.name, "master"),
        repo.head_commit(workload.name, "dev"),
    )
    outcome = repo.merge(workload.name, "master", "dev", mode="pcpr")
    leaf_scores = {
        e.path_key: e.score for e in outcome.evaluations if e.score is not None
    }
    best_score = max(leaf_scores.values())
    costs = {r.component_id: r.run_seconds for r in repo.checkpoints.records()}
    lut = build_compatibility_lut(scope)

    with_history = SearchSimulator(
        scope, leaf_scores, costs,
        mark_history=True,
        prune=lambda root: prune_incompatible(root, lut),
    )
    cold_start = SearchSimulator(
        scope, leaf_scores, costs,
        mark_history=False,  # no green nodes, no initial scores
        prune=lambda root: prune_incompatible(root, lut),
    )

    warm = benchmark.pedantic(
        lambda: _mean_first_optimal_rank(with_history, "prioritized", 60, best_score),
        rounds=1,
        iterations=1,
    )
    cold = _mean_first_optimal_rank(cold_start, "prioritized", 60, best_score)
    random_rank = _mean_first_optimal_rank(with_history, "random", 60, best_score)

    text = format_table(
        ["initialization", "mean rank of first optimal (60 trials)"],
        [
            ["history scores (paper)", f"{warm:.2f}"],
            ["cold start", f"{cold:.2f}"],
            ["random search", f"{random_rank:.2f}"],
        ],
        title="Ablation: prioritized-search initialization",
    )
    write_result("ablation_priors.txt", text)
    write_bench_record(
        "ablation_priors",
        {
            "mean_first_optimal_rank": {
                "history": warm,
                "cold_start": cold,
                "random": random_rank,
            }
        },
    )

    # History initialization must help: the optimum is found earlier than
    # under a cold start (which degenerates toward random order).
    assert warm <= cold + 0.5
    assert warm <= random_rank + 0.5
