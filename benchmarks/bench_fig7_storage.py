"""Fig. 7: cumulative storage size (CSS) per iteration, 4 apps x 3 systems.

Regenerates the CSS series and benchmarks the storage unit: archiving a
component output into the chunk-deduplicating store versus a folder copy.
"""

import numpy as np
from conftest import BENCH_SMOKE, write_bench_record, write_result

from repro.storage import FolderStore, ObjectStore


def test_fig7_storage(linear_result, benchmark):
    rng = np.random.default_rng(0)
    base = rng.integers(0, 256, 400_000, dtype=np.uint8).tobytes()
    variants = []
    for i in range(8):
        edited = bytearray(base)
        position = 50_000 * (i + 1)
        edited[position : position + 64] = bytes(64)
        variants.append(bytes(edited))
    state = {"i": 0}

    def archive_into_chunked_store(store=ObjectStore()):
        store.put(variants[state["i"] % len(variants)])
        state["i"] += 1

    benchmark.pedantic(archive_into_chunked_store, rounds=5, iterations=1)

    write_result("fig7_storage.txt", linear_result.render_fig7())
    write_bench_record(
        "fig7_storage",
        {
            "final_bytes": {
                app: {
                    name: series[-1]
                    for name, series in linear_result.fig7_series(app).items()
                }
                for app in linear_result.series
            }
        },
    )

    for app in linear_result.series:
        series = linear_result.fig7_series(app)
        # Paper shape: ModelDB grows linearly and largest; MLflow reuses
        # outputs; MLCask adds chunk dedup and stays lowest.
        assert series["modeldb"][-1] > series["mlflow"][-1], app
        assert series["mlflow"][-1] > series["mlcask"][-1], app
        if not BENCH_SMOKE:
            # The saving magnitude needs realistic history depth.
            ratio = linear_result.storage_saving_ratio(app)
            assert ratio > 1.5, (app, ratio)

    # sanity for the benchmarked unit itself: dedup must be effective
    store = FolderStore()
    for i, v in enumerate(variants):
        store.archive("blob", f"v{i}", v)
    chunked = ObjectStore()
    for v in variants:
        chunked.put(v)
    assert chunked.stats.physical_bytes < 0.5 * store.stats.physical_bytes
