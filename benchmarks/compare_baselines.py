"""Compare smoke-mode bench records against committed baselines.

CI runs every ``bench_*.py`` in smoke mode, which drops one
``BENCH_<name>.json`` record per benchmark into ``benchmarks/results/``
(see ``conftest.write_bench_record``). This script diffs those records
against the committed history in ``benchmarks/results/baselines/`` and
fails (exit 1) when an *asserted* metric regresses by more than
``DEFAULT_TOLERANCE`` — so a perf- or correctness-ratio slide shows up
in the PR that caused it, not three releases later.

Only metrics named in :data:`MANIFEST` are compared, and the manifest
deliberately sticks to ratios and counts that are deterministic (or
near-deterministic) at smoke sizes: dedup fractions, byte savings,
span/retry counts. Raw wall-clock numbers are recorded in the same
files but never asserted here — shared CI runners make them noise.

Metric paths are ``/``-separated (metric keys themselves contain dots
and spaces, e.g. ``byte CDC (buzhash)/insert_dedup``). Directions:

* ``higher`` — regression when current < baseline x (1 - tolerance);
* ``lower``  — regression when current > baseline x (1 + tolerance);
* ``exact``  — regression on any inequality (deterministic contracts).

Records carry their ``smoke`` flag; a record pair whose flags disagree
is skipped with a warning rather than diffed — full-mode numbers are a
different experiment, not a regression.

Refreshing a baseline is a deliberate, reviewable act::

    REPRO_BENCH_SMOKE=1 REPRO_BENCH_SCALE=0.2 REPRO_BENCH_ITERATIONS=3 \
        REPRO_BENCH_TRIALS=3 python -m pytest benchmarks/bench_*.py -q
    cp benchmarks/results/BENCH_<name>.json benchmarks/results/baselines/
"""

import json
import os
import sys

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")
BASELINE_DIR = os.path.join(RESULTS_DIR, "baselines")

DEFAULT_TOLERANCE = 0.25

#: bench name -> list of (metric path, direction[, tolerance]).
MANIFEST = {
    "ablation_chunking": [
        # Dedup fractions are pure functions of the chunker and the
        # synthetic edit script — deterministic at fixed seed/scale.
        ("byte CDC (buzhash)/insert_dedup", "higher"),
        ("byte CDC (buzhash)/append_dedup", "higher"),
        ("fixed 4KiB/append_dedup", "higher"),
    ],
    "remote_sync": [
        # Wire-transfer byte counts: the delta-sync saving ratios.
        ("saving_vs_naive", "higher"),
        ("saving_vs_clone", "higher"),
    ],
    "hub_multitenant": [
        # Shared-backend dedup across tenants (physical bytes ratio).
        ("physical_saving", "higher"),
    ],
    "fig8_merge_perf": [
        # Storage saving is a byte ratio; the timing speedup is not
        # asserted here.
        ("storage_saving/readmission", "higher"),
        ("storage_saving/sa", "higher"),
    ],
    "parallel_merge": [
        # Parallel and serial merge must stay bit-equivalent.
        ("equivalent", "exact"),
    ],
    "obs_telemetry": [
        # Span counts for one traced push are a protocol contract.
        ("push_trace_spans", "exact"),
        # Overhead ratios compare two in-process runs of the same work,
        # so runner speed divides out; keep a little extra headroom.
        ("lineage_overhead_ratio", "higher", 0.30),
        ("profiler_overhead_ratio", "higher", 0.30),
    ],
    "overload_shedding": [
        # Remote's shed-retry loop: retries per overloaded call.
        ("backoff_retries", "exact"),
    ],
    "fig11_distributed": [
        # Analytic speedup grid — deterministic.
        ("speedup_grid/p=0.9,k=8", "higher"),
    ],
}


def resolve(metrics: dict, path: str):
    """Walk a ``/``-separated path through nested metric dicts."""
    node = metrics
    for part in path.split("/"):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def compare_metric(name, path, direction, tolerance, current, baseline):
    """One metric's verdict: (ok, human line)."""
    label = f"{name}:{path}"
    if direction == "exact":
        ok = current == baseline
        return ok, (
            f"{label}: {current!r} vs baseline {baseline!r}"
            + ("" if ok else "  << REGRESSION (exact match required)")
        )
    if not isinstance(current, (int, float)) or isinstance(current, bool):
        return False, f"{label}: current value {current!r} is not numeric"
    if not isinstance(baseline, (int, float)) or isinstance(baseline, bool):
        return False, f"{label}: baseline value {baseline!r} is not numeric"
    if direction == "higher":
        floor = baseline * (1.0 - tolerance)
        ok = current >= floor
        bound = f">= {floor:.4g}"
    else:
        ceiling = baseline * (1.0 + tolerance)
        ok = current <= ceiling
        bound = f"<= {ceiling:.4g}"
    return ok, (
        f"{label}: {current:.4g} vs baseline {baseline:.4g} "
        f"(need {bound})" + ("" if ok else "  << REGRESSION")
    )


def load_record(directory: str, name: str):
    path = os.path.join(directory, f"BENCH_{name}.json")
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def main(argv=None) -> int:
    failures = []
    warnings = []
    for name, entries in sorted(MANIFEST.items()):
        current = load_record(RESULTS_DIR, name)
        baseline = load_record(BASELINE_DIR, name)
        if baseline is None:
            warnings.append(
                f"{name}: no baseline committed yet "
                f"(benchmarks/results/baselines/BENCH_{name}.json) — skipped"
            )
            continue
        if current is None:
            # The bench never produced a record this run: that is itself
            # a regression (bit-rot), not a skip.
            line = f"{name}: no current record in results/ — did the bench run?"
            print(f"FAIL {line}")
            failures.append(line)
            continue
        if current.get("smoke") != baseline.get("smoke"):
            warnings.append(
                f"{name}: smoke flags differ (current "
                f"{current.get('smoke')}, baseline {baseline.get('smoke')}) "
                "— different experiment, skipped"
            )
            continue
        for entry in entries:
            path, direction = entry[0], entry[1]
            tolerance = entry[2] if len(entry) > 2 else DEFAULT_TOLERANCE
            current_value = resolve(current.get("metrics", {}), path)
            baseline_value = resolve(baseline.get("metrics", {}), path)
            if baseline_value is None:
                warnings.append(f"{name}:{path}: not in baseline — skipped")
                continue
            if current_value is None:
                line = f"{name}:{path}: missing from current record"
                print(f"FAIL {line}")
                failures.append(line)
                continue
            ok, line = compare_metric(
                name, path, direction, tolerance, current_value, baseline_value
            )
            print(("ok   " if ok else "FAIL ") + line)
            if not ok:
                failures.append(line)
    for warning in warnings:
        print(f"warn {warning}")
    if failures:
        print(
            f"\n{len(failures)} asserted metric(s) regressed past "
            f"tolerance — if intentional, refresh the baseline record "
            "(see module docstring) in the same PR."
        )
        return 1
    print(f"\nall asserted metrics within tolerance ({len(warnings)} skipped)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
