"""Fig. 6: pipeline time composition (storage / pre-processing / training).

Regenerates the stacked-bar data and benchmarks the full-rerun iteration
(ModelDB's unit: every component executes)."""

from conftest import BENCH_SEED, BENCH_SMOKE, write_bench_record, write_result

from repro.baselines import ModelDBSim
from repro.workloads import readmission_workload


def test_fig6_composition(linear_result, benchmark):
    workload = readmission_workload(scale=0.5, seed=BENCH_SEED)
    system = ModelDBSim(workload, seed=BENCH_SEED)
    state = {"idx": 0}

    def one_modeldb_iteration():
        state["idx"] += 1
        system.run_iteration(state["idx"], {})

    benchmark.pedantic(one_modeldb_iteration, rounds=3, iterations=1)

    write_result("fig6_time_composition.txt", linear_result.render_fig6())
    write_bench_record(
        "fig6_time_composition",
        {
            "composition": {
                app: linear_result.fig6_composition(app)
                for app in linear_result.series
            }
        },
    )

    if BENCH_SMOKE:
        # Tiny runs exercise the pipeline end to end; the composition
        # shape below only emerges at realistic scales/iterations.
        return
    for app in linear_result.series:
        composition = linear_result.fig6_composition(app)
        # Paper: training time comparable across systems; the difference
        # lies in pre-processing (ModelDB reruns it, others reuse).
        assert (
            composition["modeldb"]["preprocessing"]
            >= 0.9 * composition["mlflow"]["preprocessing"]
        ), app
    # Per-application cost profile (section VII-A): readmission is
    # training-dominated, DPM/SA/Autolearn preprocessing-dominated. The
    # check uses ModelDB's composition — with no reuse, it reflects the
    # pipelines' intrinsic profile (reuse rightly shrinks the
    # pre-processing share for MLflow/MLCask).
    readmission = linear_result.fig6_composition("readmission")["modeldb"]
    assert readmission["training"] > readmission["preprocessing"]
    for app in ("dpm", "sa", "autolearn"):
        parts = linear_result.fig6_composition(app)["modeldb"]
        assert parts["preprocessing"] > parts["training"], app
