"""Concurrent sync: aggregate read throughput, shared vs serialized locking.

The collaborative workload the remote subsystem exists for (paper §III,
§VI): many readers cloning and polling a shared repository while a writer
publishes updates. Two server configurations race over HTTP against a
threaded ``serve()`` instance:

* **serialized baseline** — every operation behind one exclusive lock,
  no response cache (the PR-1 server);
* **concurrent** — reader-writer locking (reads in parallel, pushes
  exclusive) plus the revision-keyed response cache.

Each reader replays the clone-shaped read mix — ``manifest`` plus a full
``fetch`` — while the writer lands pushes on fresh branches (each push
invalidating the cache). Target (ISSUE 2): with 4+ readers, aggregate
read throughput of the concurrent server is >= 2x the baseline, and a
malformed push answered mid-storm leaves the server serving.

Telemetry riders (ISSUE 6): after the storm the server's own ``stats``
op must report an effective cache (hit rate asserted, not inferred from
wall clock), and a third storm against an *uninstrumented* server
(null registry/tracer) bounds the metrics overhead at <= 5% of read
throughput. The instrumented run's registry snapshot is dumped to
``results/obs_concurrent_sync_metrics.json``.
"""

import json
import threading
import time

from conftest import BENCH_SCALE, BENCH_SEED, BENCH_SMOKE, write_bench_record, write_result

from repro.core.repository import MLCask
from repro.obs.metrics import NULL_REGISTRY
from repro.obs.trace import NULL_TRACER
from repro.remote import HttpTransport, clone_repository, serve
from repro.remote.protocol import decode_message, encode_message
from repro.workloads import ALL_WORKLOADS

N_READERS = 4
N_READS = 6 if BENCH_SMOKE else 60  # read iterations per reader
N_PUSHES = 2 if BENCH_SMOKE else 4  # writer pushes during the storm
N_HISTORY = 4 if BENCH_SMOKE else 12  # commits in the shared history

#: An error response's header is ``{"blob_sizes":[],"meta":{"error":...``
#: (keys sorted), so the marker sits at a fixed, early offset.
_ERROR_MARKER = b'"meta":{"error"'


def build_shared_repo(workload, seed):
    repo = MLCask(metric=workload.metric, seed=seed)
    repo.create_pipeline(
        workload.spec, workload.initial_components(), message="initial pipeline"
    )
    for idx in range(1, N_HISTORY + 1):
        if idx % 4 == 0:
            updates = {"clean": workload.stage_version("clean", idx)}
        else:
            updates = {workload.model_stage: workload.model_version(idx)}
        repo.commit(workload.name, updates, message=f"update {idx}")
    return repo


def run_scenario(
    exclusive: bool, cache_entries: int, registry=None, tracer=None
) -> dict:
    """One readers-plus-writer storm; returns throughput and checks.

    ``registry``/``tracer`` pass through to :func:`serve` — None means
    the instrumented default, the null singletons mean bare metal (the
    overhead comparison's other arm).
    """
    workload = ALL_WORKLOADS["readmission"](scale=BENCH_SCALE, seed=BENCH_SEED)
    shared = build_shared_repo(workload, BENCH_SEED)
    server = serve(
        shared,
        host="127.0.0.1",
        port=0,
        cache_entries=cache_entries,
        exclusive=exclusive,
        registry=registry,
        tracer=tracer,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        # The writer's commits are prepared up front so the timed window
        # contains sync traffic, not model training.
        writer = clone_repository(
            HttpTransport(server.url), registry=shared.registry
        )
        pushed = {}
        for idx in range(N_PUSHES):
            branch = f"bench-{idx}"
            writer.branch(workload.name, branch)
            commit, _ = writer.commit(
                workload.name,
                {workload.model_stage: workload.model_version(N_HISTORY + 1 + idx)},
                branch=branch,
                message=f"writer update {idx}",
            )
            pushed[branch] = commit.commit_id

        # The clone-bootstrap read, as raw request bytes — identical
        # across readers, exactly what a fleet of pollers and fresh
        # clones sends. Readers are *load generators* for server
        # throughput: real clients decode on their own machines, so
        # spending reader CPU on json parsing here (same process, same
        # GIL as the server) would understate the server's capacity —
        # each reader fully decodes its first and last response and
        # cheap-checks the rest for error frames.
        read_request = encode_message(
            {"op": "fetch", "want": None, "have_commits": []}
        )
        errors: list[Exception] = []
        start = threading.Barrier(N_READERS + 2, timeout=60)

        def reader():
            try:
                transport = HttpTransport(server.url)
                start.wait()
                for iteration in range(N_READS):
                    response = transport.call(read_request)
                    if iteration in (0, N_READS - 1):
                        meta, _ = decode_message(response)
                        if "error" in meta:
                            raise RuntimeError(f"read failed: {meta['error']}")
                        assert meta.get("refs"), "fetch lost its refs"
                    elif _ERROR_MARKER in response[:48]:
                        raise RuntimeError("server answered an error frame")
                transport.close()
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        def pusher():
            try:
                start.wait()
                for branch in pushed:
                    writer.remote("origin").push(workload.name, branch)
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [threading.Thread(target=reader) for _ in range(N_READERS)]
        threads.append(threading.Thread(target=pusher))
        for t in threads:
            t.start()
        start.wait()
        t0 = time.perf_counter()
        for t in threads:
            t.join(timeout=300)
        elapsed = time.perf_counter() - t0

        assert errors == [], errors
        assert not any(t.is_alive() for t in threads)
        for branch, head in pushed.items():
            assert shared.branches.head(workload.name, branch) == head

        # Hardening probe, mid-deployment: a malformed push (ref update
        # missing "new") must come back as a typed error over HTTP with
        # the server still serving afterwards.
        probe = HttpTransport(server.url)
        bad = probe.call(
            encode_message(
                {"op": "push", "refs": {workload.name: {"master": {}}}}
            )
        )
        bad_meta, _ = decode_message(bad)
        assert bad_meta["error"]["type"] == "RemoteProtocolError"
        ok_meta, _ = decode_message(probe.call(encode_message({"op": "manifest"})))
        assert "refs" in ok_meta

        # The server's own telemetry readout, over the wire: the stats
        # op is how effectiveness is asserted rather than inferred.
        stats_meta, _ = decode_message(probe.call(encode_message({"op": "stats"})))
        probe.close()

        reads = N_READERS * N_READS
        return {
            "elapsed": elapsed,
            "reads": reads,
            "throughput": reads / elapsed,
            "cache_hits": server.repository_server.cache.hits,
            "stats": stats_meta["stats"],
            "metrics": server.metrics_registry.snapshot(),
        }
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def test_concurrent_read_throughput():
    baseline = run_scenario(exclusive=True, cache_entries=0)
    concurrent = run_scenario(exclusive=False, cache_entries=128)
    # Same concurrent configuration with the null registry/tracer: the
    # bare-metal arm of the instrumentation-overhead comparison.
    bare = run_scenario(
        exclusive=False, cache_entries=128,
        registry=NULL_REGISTRY, tracer=NULL_TRACER,
    )
    speedup = concurrent["throughput"] / baseline["throughput"]
    overhead_ratio = concurrent["throughput"] / bare["throughput"]

    cache_stats = concurrent["stats"]["cache"]
    lines = [
        f"{N_READERS} readers x {N_READS} iterations, {N_PUSHES} pushes "
        f"(history {N_HISTORY + 1} commits, scale {BENCH_SCALE}, "
        f"seed {BENCH_SEED}{', SMOKE' if BENCH_SMOKE else ''})",
        f"serialized baseline   {baseline['throughput']:>9.1f} reads/s  "
        f"({baseline['elapsed'] * 1000:.0f} ms for {baseline['reads']} reads)",
        f"rwlock + cache        {concurrent['throughput']:>9.1f} reads/s  "
        f"({concurrent['elapsed'] * 1000:.0f} ms, "
        f"{concurrent['cache_hits']} cache hits)",
        f"uninstrumented        {bare['throughput']:>9.1f} reads/s  "
        f"(instrumented/bare ratio {overhead_ratio:.3f})",
        f"aggregate speedup     {speedup:>9.2f}x",
        f"stats op: cache hit rate {cache_stats['hit_rate']:.1%} "
        f"({cache_stats['hits']} hits / {cache_stats['misses']} misses)",
        "malformed push during storm: typed error, server kept serving",
    ]
    write_result("concurrent_sync.txt", "\n".join(lines))
    write_bench_record(
        "concurrent_sync",
        {
            "reads_per_second": {
                "serialized": baseline["throughput"],
                "rwlock_cache": concurrent["throughput"],
                "uninstrumented": bare["throughput"],
            },
            "speedup": speedup,
            "instrumentation_ratio": overhead_ratio,
            "cache_hit_rate": cache_stats["hit_rate"],
        },
    )
    write_result(
        "obs_concurrent_sync_metrics.json",
        json.dumps(concurrent["metrics"], indent=2, sort_keys=True),
    )

    assert concurrent["cache_hits"] > 0
    # Cache effectiveness asserted through the server's own stats op.
    assert cache_stats["hits"] == concurrent["cache_hits"]
    assert cache_stats["hit_rate"] > 0
    # The instrumented server's registry saw the storm.
    requests = concurrent["metrics"]["repro_requests_total"]["series"]
    assert sum(s["value"] for s in requests) > 0
    assert bare["metrics"] == {}  # null registry: nothing recorded
    if not BENCH_SMOKE:
        # ISSUE 2 acceptance: >= 2x aggregate read throughput with 4+
        # concurrent readers vs. the single-lock baseline.
        assert speedup >= 2.0, speedup
        # ISSUE 6 acceptance: identical reads, mostly identical state —
        # the cache should be absorbing the storm.
        assert cache_stats["hit_rate"] >= 0.5, cache_stats
        # ISSUE 6 acceptance: instrumentation costs <= 5% read throughput.
        assert overhead_ratio >= 0.95, overhead_ratio
