"""Fig. 8: non-linear versioning performance (CPT / CSS / CET / CST) for
MLCask vs MLCask w/o PR vs MLCask w/o PCPR, on all four applications.

Benchmarks the headline unit: a full metric-driven merge with both
pruning methods on the Fig. 3-shaped Readmission history.
"""

from conftest import BENCH_SEED, BENCH_SMOKE, write_bench_record, write_result

from repro.core.repository import MLCask
from repro.workloads import apply_nonlinear_history, nonlinear_script, readmission_workload


def test_fig8_merge_performance(merge_result, benchmark):
    def full_pcpr_merge():
        workload = readmission_workload(scale=0.5, seed=BENCH_SEED)
        repo = MLCask(metric=workload.metric, seed=BENCH_SEED)
        apply_nonlinear_history(repo, nonlinear_script(workload))
        return repo.merge(workload.name, "master", "dev", mode="pcpr")

    outcome = benchmark.pedantic(full_pcpr_merge, rounds=3, iterations=1)
    assert outcome.commit.score is not None

    lines = [merge_result.render_fig8(), ""]
    for app in merge_result.measures:
        lines.append(
            f"{app}: merge speedup (w/o PCPR vs MLCask) = "
            f"{merge_result.speedup(app):.2f}x, storage saving = "
            f"{merge_result.storage_saving(app):.2f}x"
        )
    write_result("fig8_merge_perf.txt", "\n".join(lines))
    write_bench_record(
        "fig8_merge_perf",
        {
            "speedup": {
                app: merge_result.speedup(app) for app in merge_result.measures
            },
            "storage_saving": {
                app: merge_result.storage_saving(app)
                for app in merge_result.measures
            },
        },
    )

    for app, by_mode in merge_result.measures.items():
        if not BENCH_SMOKE:
            # Wall-clock orderings are noise at smoke sizes; the paper's
            # "dominates in all metrics" claim is checked at full scale.
            assert by_mode["pcpr"].cpt_seconds <= by_mode["pc_only"].cpt_seconds, app
            assert by_mode["pcpr"].cpt_seconds <= by_mode["none"].cpt_seconds, app
            # "MLCask without PR provides minor advantages over w/o PCPR."
            assert (
                by_mode["pc_only"].cpt_seconds <= 1.1 * by_mode["none"].cpt_seconds
            ), app
        assert by_mode["pcpr"].css_bytes <= by_mode["pc_only"].css_bytes, app
        assert by_mode["pcpr"].css_bytes <= by_mode["none"].css_bytes, app
        # All modes must elect an equally-scored winner.
        scores = {m.winner_score for m in by_mode.values()}
        assert len(scores) == 1, app
