"""Remote sync: bytes-transferred and wall-clock, incremental vs full copy.

Simulates the multi-user collaboration the remote subsystem exists for: a
shared repository accumulates history, a collaborator clones it, then
publishes a single-commit delta. Three transfer strategies are compared:

* **naive full copy** — what folder-archival sharing ships: every logical
  byte of every version (the no-dedup upper bound);
* **full clone** — the protocol's bootstrap: complete history, but chunks
  deduped and shipped once;
* **incremental push** — the steady state: have/want negotiation sends
  only the chunks the server lacks for the new commit.

Target (ISSUE 1): the incremental push must move <10% of the bytes of a
full clone (>=10x saving) for a 1-commit delta.
"""

from conftest import BENCH_SCALE, BENCH_SEED, BENCH_SMOKE, write_bench_record, write_result

from repro.core.repository import MLCask
from repro.remote import LocalTransport, RepositoryServer, clone_repository
from repro.workloads import ALL_WORKLOADS

N_HISTORY_COMMITS = 12


def build_shared_repo(workload, seed):
    """A shared repository with a realistic mixed update history."""
    repo = MLCask(metric=workload.metric, seed=seed)
    repo.create_pipeline(
        workload.spec, workload.initial_components(), message="initial pipeline"
    )
    for idx in range(1, N_HISTORY_COMMITS + 1):
        if idx % 4 == 0:
            updates = {"clean": workload.stage_version("clean", idx)}
        else:
            updates = {workload.model_stage: workload.model_version(idx)}
        repo.commit(workload.name, updates, message=f"update {idx}")
    return repo


def test_remote_sync_transfer(benchmark):
    import time

    workload = ALL_WORKLOADS["readmission"](scale=BENCH_SCALE, seed=BENCH_SEED)
    shared = build_shared_repo(workload, BENCH_SEED)
    server = RepositoryServer(shared)

    # Naive full copy: every version in full, like folder archival.
    naive_bytes = shared.objects.stats.logical_bytes

    # Full clone through the protocol (deduped, but complete).
    clone_transport = LocalTransport(server)
    start = time.perf_counter()
    clone = clone_repository(clone_transport, registry=shared.registry)
    clone_seconds = time.perf_counter() - start
    clone_bytes = clone_transport.bytes_transferred

    # One-commit delta, negotiated.
    clone.commit(
        workload.name,
        {workload.model_stage: workload.model_version(N_HISTORY_COMMITS + 1)},
        message="collaborator delta",
    )
    push_transport = clone.remote("origin").transport
    push_transport.reset_counters()
    start = time.perf_counter()
    result = clone.remote("origin").push(workload.name, "master")
    push_seconds = time.perf_counter() - start
    push_bytes = push_transport.bytes_transferred

    # Benchmark the recurring unit: an up-to-date sync round (negotiation
    # with nothing to move — the cost every idle poll pays).
    def negotiation_round():
        clone.remote("origin").push(workload.name, "master")

    benchmark.pedantic(negotiation_round, rounds=5, iterations=1)

    clone_ratio = clone_bytes / max(push_bytes, 1)
    naive_ratio = naive_bytes / max(push_bytes, 1)
    lines = [
        f"history: {N_HISTORY_COMMITS + 1} commits "
        f"(scale {BENCH_SCALE}, seed {BENCH_SEED})",
        f"naive full copy       {naive_bytes:>12,} bytes",
        f"full clone            {clone_bytes:>12,} bytes  "
        f"({clone_seconds * 1000:.1f} ms)",
        f"incremental push      {push_bytes:>12,} bytes  "
        f"({push_seconds * 1000:.1f} ms, {result.commits_sent} commits, "
        f"{result.chunks_sent} chunks)",
        f"saving vs full clone  {clone_ratio:>11.1f}x",
        f"saving vs naive copy  {naive_ratio:>11.1f}x",
    ]
    write_result("remote_sync.txt", "\n".join(lines))
    write_bench_record(
        "remote_sync",
        {
            "naive_bytes": naive_bytes,
            "clone_bytes": clone_bytes,
            "push_bytes": push_bytes,
            "saving_vs_clone": clone_ratio,
            "saving_vs_naive": naive_ratio,
        },
    )

    assert result.commits_sent == 1
    # ISSUE 1 acceptance: 1-commit delta moves <10% of a full clone.
    assert push_bytes < 0.1 * clone_bytes, (push_bytes, clone_bytes)
    if not BENCH_SMOKE:
        # Dedup already beats folder copies — at real scale. At smoke
        # scale the per-chunk framing overhead exceeds what dedup saves
        # on the tiny payloads, so the comparison flips meaninglessly.
        assert naive_bytes > clone_bytes
