"""Fig. 5: total time per iteration, linear versioning, 4 apps x 3 systems.

Regenerates the cumulative-time series and benchmarks the unit whose cost
the figure accumulates: one MLCask iteration (model update with
pre-processing reuse) on the Readmission pipeline.
"""

from conftest import BENCH_SEED, write_bench_record, write_result

from repro.baselines import MLCaskLinear
from repro.workloads import readmission_workload


def test_fig5_series(linear_result, benchmark):
    workload = readmission_workload(scale=0.5, seed=BENCH_SEED)
    system = MLCaskLinear(workload, seed=BENCH_SEED)
    system.run_iteration(1, {})
    state = {"idx": 1}

    def one_mlcask_iteration():
        state["idx"] += 1
        system.run_iteration(
            state["idx"],
            {workload.model_stage: workload.model_version(state["idx"] % 8)},
        )

    benchmark.pedantic(one_mlcask_iteration, rounds=3, iterations=1)

    write_result("fig5_linear_total_time.txt", linear_result.render_fig5())
    write_bench_record(
        "fig5_linear_total_time",
        {
            "total_executed": {
                app: {name: s.total_executed for name, s in by_system.items()}
                for app, by_system in linear_result.series.items()
            }
        },
    )

    # Paper shape: ModelDB's total grows fastest in every application.
    for app, by_system in linear_result.series.items():
        executed = {name: s.total_executed for name, s in by_system.items()}
        assert executed["modeldb"] > executed["mlflow"], app
        assert executed["modeldb"] > executed["mlcask"], app
        # MLCask never runs the designed-incompatible final iteration.
        assert by_system["mlcask"].flags[-1] == "skipped", app
        assert by_system["modeldb"].flags[-1] == "failed", app
