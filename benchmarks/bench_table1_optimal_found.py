"""Table I: % of trials with the optimal pipeline found within the first
20/40/60/80/100% of searches, random vs prioritized, four applications.

Benchmarks the full 100-trial simulation for one application."""

from conftest import BENCH_SEED, write_bench_record, write_result

from repro.experiments import run_search_experiment


def test_table1_optimal_found(search_result, benchmark):
    def hundred_trials_one_app():
        return run_search_experiment(
            apps=("readmission",), n_trials=100, scale=0.4, seed=BENCH_SEED
        )

    benchmark.pedantic(hundred_trials_one_app, rounds=1, iterations=1)

    write_result("table1_optimal_found.txt", search_result.render_table1())
    write_bench_record(
        "table1_optimal_found",
        {
            "found_percent": {
                app: {
                    method: {str(k): v for k, v in by_fraction.items()}
                    for method, by_fraction in by_method.items()
                }
                for app, by_method in search_result.table1.items()
            }
        },
    )

    for app, by_method in search_result.table1.items():
        # Everything is found eventually (both methods are exhaustive).
        assert by_method["random"][1.0] == 100.0, app
        assert by_method["prioritized"][1.0] == 100.0, app
    # Paper: prioritized finds the optimum earlier than random; assert
    # dominance of the cumulative curves in aggregate across apps.
    for fraction in (0.4, 0.6, 0.8):
        prioritized_total = sum(
            search_result.table1[app]["prioritized"][fraction]
            for app in search_result.table1
        )
        random_total = sum(
            search_result.table1[app]["random"][fraction]
            for app in search_result.table1
        )
        assert prioritized_total >= random_total, fraction
