"""Benchmark harness configuration.

Every bench regenerates one of the paper's tables or figures at full
scale, printing the series/rows and writing them under
``benchmarks/results/`` (pytest captures stdout, so the files are the
durable record; EXPERIMENTS.md quotes them).

Heavy experiments are shared through session-scoped fixtures so each
figure of a family (e.g. Figs. 5/6/7 share one linear-versioning run)
costs one execution.
"""

import json
import os
import subprocess
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_ITERATIONS = int(os.environ.get("REPRO_BENCH_ITERATIONS", "10"))
BENCH_TRIALS = int(os.environ.get("REPRO_BENCH_TRIALS", "100"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))
# Smoke mode (CI): tiny sizes, exercising every benchmark end to end to
# catch bit-rot, with performance-ratio assertions relaxed.
BENCH_SMOKE = bool(int(os.environ.get("REPRO_BENCH_SMOKE", "0")))


def write_result(name: str, text: str) -> None:
    """Persist a rendered figure/table and echo it to stdout."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print(f"\n[written {path}]\n{text}")


def _git_commit() -> str | None:
    try:
        probe = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(__file__),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return probe.stdout.strip() or None if probe.returncode == 0 else None


def write_bench_record(name: str, metrics: dict) -> None:
    """Persist one benchmark's machine-readable record as
    ``results/BENCH_<name>.json``: the key metrics next to the run's
    configuration (smoke flag, scale, seed, commit), so CI artifacts are
    comparable across commits without parsing rendered tables."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    record = {
        "benchmark": name,
        "metrics": metrics,
        "smoke": BENCH_SMOKE,
        "scale": BENCH_SCALE,
        "seed": BENCH_SEED,
        "commit": _git_commit(),
    }
    path = os.path.join(RESULTS_DIR, f"BENCH_{name}.json")
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[bench-record {path}]")


@pytest.fixture(scope="session")
def linear_result():
    from repro.experiments import run_linear_experiment

    return run_linear_experiment(
        n_iterations=BENCH_ITERATIONS, scale=BENCH_SCALE, seed=BENCH_SEED
    )


@pytest.fixture(scope="session")
def merge_result():
    from repro.experiments import run_merge_experiment

    return run_merge_experiment(scale=BENCH_SCALE, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def search_result():
    from repro.experiments import run_search_experiment

    return run_search_experiment(
        n_trials=BENCH_TRIALS, scale=BENCH_SCALE, seed=BENCH_SEED
    )


@pytest.fixture(scope="session")
def distributed_result():
    from repro.experiments import run_distributed_experiment

    return run_distributed_experiment(n_steps=150, n_samples=800, seed=BENCH_SEED)
