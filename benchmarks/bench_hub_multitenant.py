"""Multi-tenant hub: cross-tenant dedup, quota accounting, admission.

The DataHub premise applied to pipeline version control: hosting many
tenants' repositories pays off when identical content is stored once
deployment-wide. N tenants push the *same* workload history (different
teams tracking the same upstream pipeline — the overlap case the hub
optimizes for):

* **isolated baseline** — one standalone ``RepositoryServer`` per
  tenant, each with its own chunk store (the PR 1-3 deployment model);
* **hub** — one ``RepositoryHub`` routing ``{tenant}/{repo}`` to hosted
  repos over a shared refcounted chunk backend.

Asserted (ISSUE 5): the hub's physical bytes are >= 2x smaller than the
isolated total, while every tenant's quota accounting still reports its
full logical usage; an unauthenticated and an over-quota push are both
rejected with typed protocol errors and leave the target repo
untouched. Also measured: concurrent per-tenant read throughput over
HTTP (each tenant fetching its own repo while the others do the same).

Telemetry rider (ISSUE 6): while the read storm's server is still live,
``GET /metrics`` is scraped over HTTP and must expose the deployment's
vital signs — request counts and latency buckets, cache hits, the
admission denials provoked by :func:`probe_admission`, and chunk bytes
attributed per tenant. The scrape is persisted verbatim to
``results/obs_hub_scrape.txt`` (CI greps it).
"""

import threading
import time
import urllib.request

from conftest import BENCH_SCALE, BENCH_SEED, BENCH_SMOKE, write_bench_record, write_result

from repro.core.repository import MLCask
from repro.errors import AuthenticationError, QuotaExceededError
from repro.hub import RepositoryHub, serve_hub
from repro.remote import HttpTransport, LocalTransport, RepositoryServer, clone_repository
from repro.workloads import ALL_WORKLOADS

N_TENANTS = 3
N_HISTORY = 3 if BENCH_SMOKE else 8   # commits in the shared history
N_READS = 3 if BENCH_SMOKE else 20    # fetches per tenant in the storm


def build_team_repo(workload):
    repo = MLCask(metric=workload.metric, seed=BENCH_SEED)
    repo.create_pipeline(
        workload.spec, workload.initial_components(), message="initial pipeline"
    )
    for idx in range(1, N_HISTORY + 1):
        if idx % 3 == 0:
            updates = {"clean": workload.stage_version("clean", idx)}
        else:
            updates = {workload.model_stage: workload.model_version(idx)}
        repo.commit(workload.name, updates, message=f"update {idx}")
    return repo


def run_isolated_baseline(workload, team_repo):
    """One standalone server per tenant; returns per-tenant physical bytes."""
    physical = []
    for _ in range(N_TENANTS):
        server_repo = MLCask(metric=workload.metric, seed=BENCH_SEED)
        remote = team_repo.add_remote(
            f"isolated-{len(physical)}",
            LocalTransport(RepositoryServer(server_repo)),
        )
        remote.push(workload.name)
        physical.append(server_repo.objects.stats.physical_bytes)
    return physical


def run_hub_scenario(workload, team_repo):
    hub = RepositoryHub()
    tokens = {}
    for idx in range(N_TENANTS):
        tenant = f"team{idx}"
        tokens[tenant] = f"token-{idx}"
        hub.add_tenant(tenant, tokens=[tokens[tenant]])
    for tenant, token in tokens.items():
        remote = team_repo.add_remote(
            f"hub-{tenant}", hub.local_transport(tenant, "pipelines", token)
        )
        remote.push(workload.name)
    return hub, tokens


def probe_admission(hub, tokens, workload, team_repo):
    """Denied pushes must be typed and must not mutate the target."""
    tenant = next(iter(tokens))
    before = hub.stats()

    try:
        bad = team_repo.add_remote(
            "hub-bad-token", hub.local_transport(tenant, "pipelines", "wrong")
        )
        bad.manifest()
        raise AssertionError("unauthenticated request was admitted")
    except AuthenticationError:
        pass

    hub.add_tenant("cramped", tokens=["tok-cramped"], quota_bytes=1024)
    try:
        squeezed = team_repo.add_remote(
            "hub-cramped", hub.local_transport("cramped", "pipelines", "tok-cramped")
        )
        squeezed.push(workload.name)
        raise AssertionError("over-quota push was admitted")
    except QuotaExceededError:
        pass

    after = hub.stats()
    assert after["physical_bytes"] == before["physical_bytes"], (
        "denied pushes must not grow the store"
    )
    assert hub.tenant_usage("cramped") == 0, (
        "denied pushes must not charge the tenant"
    )
    assert after["tenant_usage"][tenant] == before["tenant_usage"][tenant]


def run_read_storm(hub, tokens, registry):
    """Every tenant fetches its own repo concurrently over HTTP."""
    server = serve_hub(hub)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    errors = []
    commits_seen = {}

    def reader(tenant, token):
        try:
            transport = HttpTransport(
                server.repo_url(tenant, "pipelines"), token=token
            )
            for _ in range(N_READS):
                clone = clone_repository(transport, registry=registry)
                commits_seen.setdefault(tenant, set()).add(len(clone.graph))
            transport.close()
        except Exception as error:  # noqa: BLE001 - surfaced via assert
            errors.append(error)

    try:
        threads = [
            threading.Thread(target=reader, args=(tenant, token))
            for tenant, token in tokens.items()
        ]
        started = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - started
        # Scrape the live endpoint the way an operator's Prometheus
        # would — over HTTP, while the server still serves.
        with urllib.request.urlopen(f"{server.url}/metrics", timeout=30) as resp:
            assert resp.status == 200
            scrape = resp.read().decode("utf-8")
    finally:
        server.shutdown()
        server.server_close()

    assert not errors, f"concurrent reads failed: {errors[:1]}"
    expected = {len(set(commits)) for commits in commits_seen.values()}
    assert expected == {1}, "every tenant must see a stable history"
    total_reads = N_READS * len(tokens)
    return total_reads, elapsed, scrape


def series_total(scrape: str, name: str) -> float:
    """Sum every sample of one metric family in a Prometheus scrape."""
    total = 0.0
    prefixes = (f"{name} ", f"{name}{{")
    for line in scrape.splitlines():
        if line.startswith(prefixes):
            total += float(line.rsplit(" ", 1)[1])
    return total


def check_scrape(scrape, tokens):
    """ISSUE 6 acceptance: one scrape covers the deployment's vitals."""
    vital = (
        "repro_requests_total",          # request counts per op
        "repro_request_seconds_bucket",  # latency histogram
        "repro_cache_hits_total",        # response-cache effectiveness
        "repro_admission_denied_total",  # the probe's auth/quota denials
        "repro_chunk_written_bytes_total",  # chunk bytes per tenant
    )
    for name in vital:
        assert series_total(scrape, name) > 0, f"{name} absent or zero"
    # Denials carry their classified reasons, not a catch-all bucket.
    assert 'reason="auth"' in scrape and 'reason="quota"' in scrape
    # Chunk accounting is attributed: every pushing tenant has its own
    # written-bytes series, and they all pushed the same history.
    written = {
        tenant: series_total(
            scrape, f'repro_chunk_written_bytes_total{{tenant="{tenant}",'
            f'repo="pipelines"}}'
        )
        for tenant in tokens
    }
    assert all(v > 0 for v in written.values()), written
    assert len(set(written.values())) == 1, written


def main():
    workload = ALL_WORKLOADS["readmission"](scale=BENCH_SCALE, seed=BENCH_SEED)
    team_repo = build_team_repo(workload)

    isolated = run_isolated_baseline(workload, team_repo)
    isolated_total = sum(isolated)

    hub, tokens = run_hub_scenario(workload, team_repo)
    stats = hub.stats()
    hub_physical = stats["physical_bytes"]
    usage = stats["tenant_usage"]
    saving = isolated_total / hub_physical

    # Quota accounting charges logical usage: each tenant pays what an
    # isolated deployment would have stored for it.
    for idx, tenant in enumerate(tokens):
        assert usage[tenant] == isolated[idx], (
            f"{tenant}: logical usage {usage[tenant]} != isolated "
            f"physical {isolated[idx]}"
        )
    # The tentpole claim: >= 2x physical saving from cross-tenant dedup.
    # Deterministic content, not a timing ratio — asserted in smoke too.
    assert saving >= 2.0, (
        f"expected >= 2x physical saving with {N_TENANTS} tenants, "
        f"got {saving:.2f}x ({isolated_total} vs {hub_physical} bytes)"
    )

    probe_admission(hub, tokens, workload, team_repo)
    total_reads, elapsed, scrape = run_read_storm(
        hub, tokens, team_repo.registry
    )
    check_scrape(scrape, tokens)
    write_result("obs_hub_scrape.txt", scrape)

    lines = [
        "Multi-tenant hub: physical storage and admission "
        f"(N={N_TENANTS} tenants, {N_HISTORY + 1} commits each, "
        f"scale={BENCH_SCALE})",
        "",
        f"{'tenant':12s} {'logical (quota) bytes':>22s} "
        f"{'isolated bytes':>15s}",
    ]
    for idx, tenant in enumerate(tokens):
        lines.append(f"{tenant:12s} {usage[tenant]:>22,} {isolated[idx]:>15,}")
    lines += [
        "",
        f"isolated deployments total : {isolated_total:>12,} bytes",
        f"hub shared backend         : {hub_physical:>12,} bytes",
        f"physical saving            : {saving:>12.2f}x  (assert >= 2x)",
        "",
        "admission: unauthenticated push -> AuthenticationError, "
        "over-quota push -> QuotaExceededError; both left the store "
        "byte-identical",
        "",
        f"concurrent per-tenant reads: {total_reads} full fetches across "
        f"{N_TENANTS} tenants in {elapsed:.2f}s "
        f"({total_reads / elapsed:.1f} fetches/s aggregate over HTTP)",
        "",
        "metrics-scrape OK: live GET /metrics covered requests, latency "
        "buckets, cache hits, admission denials (auth + quota), and "
        "per-tenant chunk bytes (see obs_hub_scrape.txt)",
    ]
    write_result("hub_multitenant.txt", "\n".join(lines))
    write_bench_record(
        "hub_multitenant",
        {
            "isolated_total_bytes": isolated_total,
            "hub_physical_bytes": hub_physical,
            "physical_saving": saving,
            "aggregate_fetches_per_second": total_reads / elapsed,
        },
    )


def test_hub_multitenant():
    main()


if __name__ == "__main__":
    main()
