"""Exception hierarchy for the MLCask reproduction.

Every error raised by :mod:`repro` derives from :class:`MLCaskError` so that
callers can catch the library's failures with a single ``except`` clause while
still distinguishing the finer-grained categories below.
"""

from __future__ import annotations


class MLCaskError(Exception):
    """Base class for all errors raised by this library."""


class StorageError(MLCaskError):
    """A storage-engine operation failed (missing chunk, bad recipe, ...)."""


class ChunkNotFoundError(StorageError):
    """A content hash was requested that the chunk store does not hold."""

    def __init__(self, digest: str):
        super().__init__(f"chunk not found: {digest}")
        self.digest = digest


class ObjectNotFoundError(StorageError):
    """A logical object (blob/commit/value) is absent from the store."""

    def __init__(self, key: str):
        super().__init__(f"object not found: {key}")
        self.key = key


class VersionError(MLCaskError):
    """Semantic-version parsing or bumping failed."""


class ComponentError(MLCaskError):
    """A pipeline component is malformed or misused."""


class PipelineError(MLCaskError):
    """A pipeline definition is invalid (cycle, dangling edge, ...)."""


class IncompatibleComponentsError(PipelineError):
    """Two adjacent components have mismatched input/output schemas.

    This is the failure mode the compatibility LUT (paper section VI-A)
    exists to prevent: raised when a component is asked to consume an output
    whose schema tag it does not understand.
    """

    def __init__(self, producer: str, consumer: str):
        super().__init__(
            f"component {consumer!r} cannot consume the output of {producer!r}: "
            "output/input schema mismatch"
        )
        self.producer = producer
        self.consumer = consumer


class RepositoryError(MLCaskError):
    """Repository-level failure (unknown branch, duplicate commit, ...)."""


class BranchNotFoundError(RepositoryError):
    def __init__(self, branch: str):
        super().__init__(f"branch not found: {branch}")
        self.branch = branch


class CommitNotFoundError(RepositoryError):
    def __init__(self, commit_id: str):
        super().__init__(f"commit not found: {commit_id}")
        self.commit_id = commit_id


class MergeError(MLCaskError):
    """The merge operation could not produce a result."""


class NoCandidateError(MergeError):
    """Every pre-merge pipeline candidate was pruned or failed to execute."""


class SearchBudgetExhausted(MergeError):
    """A prioritized search ran out of its time/evaluation budget.

    Carries the best pipeline found so far, so callers can still use the
    suboptimal result (paper section VII-E: trade-off between time complexity
    and solution quality).
    """

    def __init__(self, best=None):
        super().__init__("search budget exhausted before covering all candidates")
        self.best = best


class NotFittedError(MLCaskError):
    """An estimator was used before ``fit`` (mirrors sklearn semantics)."""

    def __init__(self, estimator: str):
        super().__init__(f"{estimator} must be fitted before use")
        self.estimator = estimator
