"""Exception hierarchy for the MLCask reproduction.

Every error raised by :mod:`repro` derives from :class:`MLCaskError` so that
callers can catch the library's failures with a single ``except`` clause while
still distinguishing the finer-grained categories below.
"""

from __future__ import annotations


class MLCaskError(Exception):
    """Base class for all errors raised by this library."""


class StorageError(MLCaskError):
    """A storage-engine operation failed (missing chunk, bad recipe, ...)."""


class ChunkNotFoundError(StorageError):
    """A content hash was requested that the chunk store does not hold."""

    def __init__(self, digest: str):
        super().__init__(f"chunk not found: {digest}")
        self.digest = digest


class ObjectNotFoundError(StorageError):
    """A logical object (blob/commit/value) is absent from the store."""

    def __init__(self, key: str):
        super().__init__(f"object not found: {key}")
        self.key = key


class ChunkIntegrityError(StorageError):
    """A chunk's bytes do not hash to their claimed content address.

    Raised when importing chunks received from an untrusted source (a
    remote peer, an on-disk object directory): content addressing makes
    corruption detectable at the moment of receipt, before the bad bytes
    can ever be served back under a digest they do not match.
    """

    def __init__(self, digest: str):
        super().__init__(f"chunk integrity check failed for {digest}")
        self.digest = digest


class VersionError(MLCaskError):
    """Semantic-version parsing or bumping failed."""


class ComponentError(MLCaskError):
    """A pipeline component is malformed or misused."""


class PipelineError(MLCaskError):
    """A pipeline definition is invalid (cycle, dangling edge, ...)."""


class IncompatibleComponentsError(PipelineError):
    """Two adjacent components have mismatched input/output schemas.

    This is the failure mode the compatibility LUT (paper section VI-A)
    exists to prevent: raised when a component is asked to consume an output
    whose schema tag it does not understand.
    """

    def __init__(self, producer: str, consumer: str):
        super().__init__(
            f"component {consumer!r} cannot consume the output of {producer!r}: "
            "output/input schema mismatch"
        )
        self.producer = producer
        self.consumer = consumer


class RepositoryError(MLCaskError):
    """Repository-level failure (unknown branch, duplicate commit, ...)."""


class BranchNotFoundError(RepositoryError):
    def __init__(self, branch: str):
        super().__init__(f"branch not found: {branch}")
        self.branch = branch


class CommitNotFoundError(RepositoryError):
    def __init__(self, commit_id: str):
        super().__init__(f"commit not found: {commit_id}")
        self.commit_id = commit_id


class MergeError(MLCaskError):
    """The merge operation could not produce a result."""


class NoCandidateError(MergeError):
    """Every pre-merge pipeline candidate was pruned or failed to execute."""


class SearchBudgetExhausted(MergeError):
    """A prioritized search ran out of its time/evaluation budget.

    Carries the best pipeline found so far, so callers can still use the
    suboptimal result (paper section VII-E: trade-off between time complexity
    and solution quality).
    """

    def __init__(self, best=None):
        super().__init__("search budget exhausted before covering all candidates")
        self.best = best


class RemoteError(MLCaskError):
    """A remote-repository operation (clone/fetch/push/pull) failed."""


class TransportError(RemoteError):
    """The transport could not deliver a request or response."""


class RemoteProtocolError(RemoteError):
    """A wire message was malformed or of an unsupported version."""


class PushRejectedError(RemoteError):
    """The server refused a ref update (non-fast-forward push).

    Mirrors git's behaviour: the client must first pull — which, when the
    branches diverged, resolves the divergence through the metric-driven
    merge — and push the merge result instead.
    """

    def __init__(self, pipeline: str, branch: str, reason: str):
        super().__init__(
            f"push of {pipeline}:{branch} rejected: {reason}"
        )
        self.pipeline = pipeline
        self.branch = branch
        self.reason = reason


class HubError(RemoteError):
    """A multi-tenant repository hub rejected or failed a request.

    Hub denials are *admission* failures — they happen before the request
    touches any repository state, so a rejected operation is guaranteed
    not to have mutated the target repo. Each subclass travels over the
    wire as a typed error response (see
    :func:`repro.remote.protocol.raise_remote_error`) so clients can
    distinguish "retry with credentials" from "buy more quota" from
    "back off".
    """


class AuthenticationError(HubError):
    """The request carried no token, or a token the hub does not know."""

    def __init__(self, message: str = "missing or invalid bearer token"):
        super().__init__(message)


class AuthorizationError(HubError):
    """A valid token tried to act outside its tenant's namespace."""

    def __init__(self, message: str = "token does not grant access to this tenant"):
        super().__init__(message)


class QuotaExceededError(HubError):
    """A write would push the tenant's *logical* usage past its quota.

    Quotas charge reachable bytes per tenant (every chunk a tenant holds
    counted in full) even though the hub stores each chunk once
    deployment-wide — cross-tenant dedup is the operator's saving, not
    the tenant's.
    """

    def __init__(self, message: str = "tenant storage quota exceeded"):
        super().__init__(message)


class RateLimitedError(HubError):
    """The tenant's token bucket is empty; retry after it refills."""

    def __init__(self, message: str = "tenant request rate limit exceeded"):
        super().__init__(message)


class RepositoryNotFoundError(HubError):
    """The addressed {tenant}/{repo} does not exist on the hub."""

    def __init__(self, message: str = "no such repository on this hub"):
        super().__init__(message)


class ServerOverloadedError(HubError):
    """The health model reported overload and admission shed the request.

    Raised by the hub's admission pipeline *before* any repository state
    is touched (the same never-partially-mutate contract as auth, quota,
    and rate denials), so a shed request is guaranteed side-effect-free.
    ``retry_after`` is the server's backoff hint in seconds; it rides the
    typed error response across the wire and
    :meth:`repro.remote.client.Remote` honors it with jittered
    exponential backoff.
    """

    def __init__(
        self,
        message: str = "server overloaded; retry later",
        retry_after: float = 1.0,
    ):
        super().__init__(message)
        self.retry_after = retry_after


class ProvenanceError(MLCaskError):
    """A lineage-ledger operation or query failed."""


class LineageNotFoundError(ProvenanceError):
    """A lineage query matched nothing (unknown ref, component, or trace).

    Travels over the wire as a typed error response (see
    :func:`repro.remote.protocol.raise_remote_error`), so a client asking
    about an artifact the server never recorded gets this rather than a
    generic protocol failure.
    """

    def __init__(self, message: str = "no lineage recorded for that query"):
        super().__init__(message)


class NotFittedError(MLCaskError):
    """An estimator was used before ``fit`` (mirrors sklearn semantics)."""

    def __init__(self, estimator: str):
        super().__init__(f"{estimator} must be fitted before use")
        self.estimator = estimator
