"""Command-line interface: demos and experiment drivers.

Usage::

    python -m repro workloads                 # list the evaluated pipelines
    python -m repro demo readmission          # Fig. 3 scenario + merge
    python -m repro experiment linear         # regenerate Figs. 5-7
    python -m repro experiment merge          # regenerate Figs. 8-9
    python -m repro experiment search         # regenerate Fig. 10 + Table I
    python -m repro experiment distributed    # regenerate Fig. 11

``--scale`` resizes workloads (1.0 = the benchmark default), ``--seed``
fixes all randomness.
"""

from __future__ import annotations

import argparse
import sys


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MLCask reproduction: pipeline version control demos "
        "and experiment drivers",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list the paper's evaluated pipelines")

    demo = sub.add_parser("demo", help="run the Fig. 3 two-branch scenario")
    demo.add_argument("workload", choices=["readmission", "dpm", "sa", "autolearn"])
    demo.add_argument("--scale", type=float, default=0.5)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument(
        "--mode", choices=["pcpr", "pc_only", "none"], default="pcpr",
        help="merge mode (ablations: pc_only = w/o PR, none = w/o PCPR)",
    )

    experiment = sub.add_parser("experiment", help="regenerate a paper figure/table")
    experiment.add_argument(
        "which", choices=["linear", "merge", "search", "distributed"]
    )
    experiment.add_argument("--scale", type=float, default=0.5)
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument("--iterations", type=int, default=10)
    experiment.add_argument("--trials", type=int, default=50)
    experiment.add_argument(
        "--apps", nargs="+", default=["readmission", "dpm", "sa", "autolearn"]
    )
    return parser


def _cmd_workloads(out) -> int:
    from .workloads import ALL_WORKLOADS

    for name, factory in ALL_WORKLOADS.items():
        workload = factory()
        stages = " -> ".join(["dataset", *workload.stage_names])
        print(f"{name:12s} {stages}  (metric: {workload.metric})", file=out)
    return 0


def _cmd_demo(args, out) -> int:
    from .core.repository import MLCask
    from .workloads import ALL_WORKLOADS, apply_nonlinear_history, nonlinear_script

    workload = ALL_WORKLOADS[args.workload](scale=args.scale, seed=args.seed)
    repo = MLCask(metric=workload.metric, seed=args.seed)
    print(f"building the Fig. 3 history for {workload.name!r} ...", file=out)
    apply_nonlinear_history(repo, nonlinear_script(workload))
    print(repo.log(workload.name, "dev"), file=out)
    print(repo.log(workload.name, "master"), file=out)
    outcome = repo.merge(workload.name, "master", "dev", mode=args.mode)
    print(f"\n{outcome.summary()}", file=out)
    print(f"winner: {outcome.commit.describe()}", file=out)
    print(f"\n{repo.diff(workload.name, outcome.commit.parents[0], 'master')}", file=out)
    return 0


def _cmd_experiment(args, out) -> int:
    if args.which == "linear":
        from .experiments import run_linear_experiment

        result = run_linear_experiment(
            apps=tuple(args.apps),
            n_iterations=args.iterations,
            scale=args.scale,
            seed=args.seed,
        )
        print(result.render_fig5(), file=out)
        print(file=out)
        print(result.render_fig6(), file=out)
        print(file=out)
        print(result.render_fig7(), file=out)
    elif args.which == "merge":
        from .experiments import run_merge_experiment

        result = run_merge_experiment(
            apps=tuple(args.apps), scale=args.scale, seed=args.seed
        )
        print(result.render_fig8(), file=out)
        print(file=out)
        print(result.render_fig9(), file=out)
        for app in args.apps:
            print(
                f"{app}: speedup {result.speedup(app):.2f}x, "
                f"storage saving {result.storage_saving(app):.2f}x",
                file=out,
            )
    elif args.which == "search":
        from .experiments import run_search_experiment

        result = run_search_experiment(
            apps=tuple(args.apps),
            n_trials=args.trials,
            scale=args.scale,
            seed=args.seed,
        )
        print(result.render_table1(), file=out)
    else:  # distributed
        from .experiments import run_distributed_experiment

        result = run_distributed_experiment(seed=args.seed)
        print(result.render_fig11a(), file=out)
        print(file=out)
        print(result.render_fig11b(), file=out)
    return 0


def main(argv: list[str] | None = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = _build_parser().parse_args(argv)
    if args.command == "workloads":
        return _cmd_workloads(out)
    if args.command == "demo":
        return _cmd_demo(args, out)
    return _cmd_experiment(args, out)


if __name__ == "__main__":
    raise SystemExit(main())
