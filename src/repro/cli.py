"""Command-line interface: demos, experiment drivers, and remote sync.

Usage::

    python -m repro workloads                 # list the evaluated pipelines
    python -m repro demo readmission          # Fig. 3 scenario + merge
    python -m repro experiment linear         # regenerate Figs. 5-7
    python -m repro experiment merge          # regenerate Figs. 8-9
    python -m repro experiment search         # regenerate Fig. 10 + Table I
    python -m repro experiment distributed    # regenerate Fig. 11

    python -m repro init REPO --workload readmission   # repo dir on disk
    python -m repro serve REPO --port 8321             # expose it over HTTP
    python -m repro clone SRC DEST                     # SRC: URL or repo dir
    python -m repro push REPO REMOTE                   # fast-forward publish
    python -m repro pull REPO REMOTE                   # sync (+merge) back
    python -m repro stats REMOTE                       # telemetry readout
    python -m repro stats REMOTE --watch 2             # re-render every 2s
    python -m repro health REMOTE                      # SLO health readout
    python -m repro lineage REMOTE REF                 # provenance closure
    python -m repro lineage REMOTE --trace ID          # request forensics
    python -m repro impact REMOTE COMPONENT            # what-if analysis
    python -m repro trace REMOTE                       # recent-trace readout
    python -m repro trace REMOTE TRACE_ID              # one trace's critical path
    python -m repro profile URL --token SECRET         # live profiler readout
    python -m repro gc REPO                            # sweep dead chunks

    python -m repro run REPO --workload readmission    # run the branch head
    python -m repro merge REPO master dev --workers 4  # metric-driven merge

    python -m repro hub init HUB                       # multi-tenant hub dir
    python -m repro hub add-tenant HUB ana --token SECRET --quota-bytes 10000000
    python -m repro hub serve HUB --port 8321          # serve every repo
    # then, from any client:
    python -m repro push REPO http://host:8321 --tenant ana/proj --token SECRET

Remotes are either ``http://host:port`` endpoints (a running ``serve``)
or plain repository-directory paths, synced in-process through the same
wire protocol; hub-hosted repositories are addressed as
``http://host:port/t/<tenant>/<repo>`` (or a base URL plus
``--tenant tenant/repo``) with a ``--token`` bearer credential.
``--scale`` resizes workloads (1.0 = the benchmark default), ``--seed``
fixes all randomness.
"""

from __future__ import annotations

import argparse
import sys


def _positive_int(value: str) -> int:
    number = int(value)
    if number <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return number


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MLCask reproduction: pipeline version control demos "
        "and experiment drivers",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list the paper's evaluated pipelines")

    demo = sub.add_parser("demo", help="run the Fig. 3 two-branch scenario")
    demo.add_argument("workload", choices=["readmission", "dpm", "sa", "autolearn"])
    demo.add_argument("--scale", type=float, default=0.5)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument(
        "--mode", choices=["pcpr", "pc_only", "none"], default="pcpr",
        help="merge mode (ablations: pc_only = w/o PR, none = w/o PCPR)",
    )

    experiment = sub.add_parser("experiment", help="regenerate a paper figure/table")
    experiment.add_argument(
        "which", choices=["linear", "merge", "search", "distributed"]
    )
    experiment.add_argument("--scale", type=float, default=0.5)
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument("--iterations", type=int, default=10)
    experiment.add_argument("--trials", type=int, default=50)
    experiment.add_argument(
        "--apps", nargs="+", default=["readmission", "dpm", "sa", "autolearn"]
    )

    init = sub.add_parser(
        "init", help="create an on-disk repository seeded with a workload"
    )
    init.add_argument("repo", help="repository directory to create")
    init.add_argument(
        "--workload", choices=["readmission", "dpm", "sa", "autolearn"],
        default="readmission",
    )
    init.add_argument("--scale", type=float, default=0.5)
    init.add_argument("--seed", type=int, default=0)
    init.add_argument(
        "--commits", type=int, default=1,
        help="model-update commits to create after master.0.0",
    )

    run = sub.add_parser(
        "run", help="run a pipeline's branch head against the checkpoint store"
    )
    run.add_argument("repo", help="repository directory (see `repro init`)")
    run.add_argument("--pipeline", default=None)
    run.add_argument("--branch", default="master")
    run.add_argument(
        "--workers", type=_positive_int, default=1,
        help="stage-parallel workers for DAG pipelines (default 1: sequential)",
    )
    _add_rebind_arguments(run)

    merge = sub.add_parser(
        "merge", help="metric-driven merge of one branch into another"
    )
    merge.add_argument("repo", help="repository directory (see `repro init`)")
    merge.add_argument("head_branch", help="branch merged into (HEAD)")
    merge.add_argument("merge_head_branch", help="branch merged from (MERGE_HEAD)")
    merge.add_argument("--pipeline", default=None)
    merge.add_argument(
        "--mode", choices=["pcpr", "pc_only", "none"], default="pcpr",
        help="merge mode (ablations: pc_only = w/o PR, none = w/o PCPR)",
    )
    merge.add_argument(
        "--search", choices=["prioritized", "random", "exhaustive"],
        default="prioritized",
        help="candidate order (default: the paper's prioritized search; "
        "exhaustive enumerates depth-first and is always sequential)",
    )
    merge.add_argument(
        "--budget", type=_positive_int, default=None,
        help="cap on evaluated candidates (default: search everything)",
    )
    merge.add_argument(
        "--time-budget", type=float, default=None,
        help="wall-clock budget in seconds for the ordered searches",
    )
    merge.add_argument(
        "--workers", type=_positive_int, default=1,
        help="candidate-parallel workers (default 1: sequential; "
        "single-flight checkpointing keeps executions at-most-once)",
    )
    _add_rebind_arguments(merge)

    serve = sub.add_parser(
        "serve", help="serve a repository directory over HTTP"
    )
    serve.add_argument("repo", help="repository directory to serve")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8321)
    serve.add_argument(
        "--requests", type=int, default=None,
        help="exit after handling N requests (default: serve forever)",
    )
    serve.add_argument(
        "--max-pack-bytes", type=_positive_int, default=None,
        help="chunk payload window per get_chunks response (default 4 MiB)",
    )
    serve.add_argument(
        "--cache-entries", type=int, default=128,
        help="read-response cache slots, invalidated on push (0 disables)",
    )
    serve.add_argument(
        "--max-request-bytes", type=_positive_int, default=256 * 1024 * 1024,
        help="reject request bodies above this size with HTTP 413 "
        "(default 256 MiB)",
    )
    _add_observability_arguments(serve)

    clone = sub.add_parser("clone", help="clone a remote into a new directory")
    clone.add_argument("source", help="http:// URL or repository directory")
    clone.add_argument("dest", help="directory to create the clone in")
    clone.add_argument(
        "--max-pack-bytes", type=_positive_int, default=None,
        help="chunk payload window per wire message (default 4 MiB)",
    )
    _add_hub_client_arguments(clone)

    push = sub.add_parser("push", help="publish a branch to a remote")
    push.add_argument("repo", help="local repository directory")
    push.add_argument("remote", help="http:// URL or repository directory")
    push.add_argument("--pipeline", default=None)
    push.add_argument("--branch", default="master")
    push.add_argument(
        "--max-pack-bytes", type=_positive_int, default=None,
        help="chunk payload window per wire message (default 4 MiB)",
    )
    _add_hub_client_arguments(push)

    pull = sub.add_parser("pull", help="sync a branch from a remote")
    pull.add_argument("repo", help="local repository directory")
    pull.add_argument("remote", help="http:// URL or repository directory")
    pull.add_argument("--pipeline", default=None)
    pull.add_argument("--branch", default="master")
    pull.add_argument(
        "--max-pack-bytes", type=_positive_int, default=None,
        help="chunk payload window per wire message (default 4 MiB)",
    )
    _add_hub_client_arguments(pull)

    stats = sub.add_parser(
        "stats",
        help="read a server's telemetry (request counts, cache hit rate, "
        "storage bytes) over the wire",
    )
    stats.add_argument("target", help="http:// URL or repository directory")
    stats.add_argument(
        "--json", action="store_true",
        help="emit the raw stats object as one JSON document",
    )
    stats.add_argument(
        "--watch", type=float, default=None, metavar="SECONDS",
        help="re-fetch and re-render every SECONDS seconds until "
        "interrupted (Ctrl-C exits cleanly)",
    )
    _add_hub_client_arguments(stats)

    health = sub.add_parser(
        "health",
        help="read a server's sliding-window health model: readiness, "
        "per-op latency percentiles vs SLO objectives, error-budget "
        "burn, and overload-shedding state",
    )
    health.add_argument("target", help="http:// URL or repository directory")
    health.add_argument(
        "--json", action="store_true",
        help="emit the raw health object as one JSON document",
    )
    _add_hub_client_arguments(health)

    lineage = sub.add_parser(
        "lineage",
        help="query a repository's provenance ledger: the upstream closure "
        "of an output, its consumers, or one traced request's forensics",
    )
    lineage.add_argument("target", help="http:// URL or repository directory")
    lineage.add_argument(
        "ref", nargs="?", default=None,
        help="output ref (full digest or unique prefix); omit with --trace",
    )
    lineage.add_argument(
        "--consumers", action="store_true",
        help="list what consumed REF downstream instead of its upstream "
        "closure",
    )
    lineage.add_argument(
        "--trace", default=None, metavar="TRACE_ID",
        help="reconstruct one traced request: every checkpoint executed or "
        "reused under this trace id, in emission order",
    )
    lineage.add_argument(
        "--json", action="store_true",
        help="emit the raw lineage object as one JSON document",
    )
    _add_hub_client_arguments(lineage)

    impact = sub.add_parser(
        "impact",
        help="what-if analysis: which checkpoints and branch heads a "
        "component change would invalidate",
    )
    impact.add_argument("target", help="http:// URL or repository directory")
    impact.add_argument(
        "component",
        help="component identifier (name or name@version, e.g. mlp@2.0.0)",
    )
    impact.add_argument(
        "--component-version", default=None, metavar="VERSION",
        help="restrict the match to one version of the component",
    )
    impact.add_argument(
        "--json", action="store_true",
        help="emit the raw impact object as one JSON document",
    )
    _add_hub_client_arguments(impact)

    trace = sub.add_parser(
        "trace",
        help="read a server's span buffer: recent traces, one trace's "
        "tree and critical path, or the slow-op capture ring",
    )
    trace.add_argument("target", help="http:// URL or repository directory")
    trace.add_argument(
        "trace_id", nargs="?", default=None,
        help="trace id to analyze (default: summarize recent traces)",
    )
    trace.add_argument(
        "--limit", type=_positive_int, default=None,
        help="cap on returned spans (with TRACE_ID) or trace summaries",
    )
    trace.add_argument(
        "--slow", action="store_true",
        help="include the server's slow-op captures",
    )
    trace.add_argument(
        "--json", action="store_true",
        help="emit the raw trace object as one JSON document",
    )
    _add_hub_client_arguments(trace)

    profile = sub.add_parser(
        "profile",
        help="read a serving process's sampling profiler over HTTP "
        "(GET /debug/profile; the server must run with --profile)",
    )
    profile.add_argument(
        "target", help="http:// base URL of a running serve / hub serve"
    )
    profile.add_argument(
        "--slow", action="store_true",
        help="read GET /debug/slow (the slow-op capture ring) instead",
    )
    profile.add_argument(
        "--json", action="store_true",
        help="emit the raw debug object as one JSON document",
    )
    profile.add_argument(
        "--token", default=None,
        help="bearer token (hubs gate the debug endpoints on a valid "
        "tenant token)",
    )

    gc = sub.add_parser(
        "gc", help="sweep chunks no commit references from a repository directory"
    )
    gc.add_argument("repo", help="repository directory (see `repro init`)")
    gc.add_argument(
        "--keep-checkpoints", action="store_true",
        help="treat archived checkpoint records as live roots too "
        "(default: prune records whose output no commit references)",
    )

    lint = sub.add_parser(
        "lint",
        help="static analysis of the codebase's concurrency, protocol, and "
        "observability invariants (see docs/invariants.md)",
    )
    lint.add_argument(
        "path", nargs="?", default=None,
        help="package directory to analyze (default: the installed repro "
        "package)",
    )
    lint.add_argument(
        "--rule", default=None,
        help="only run these rule ids or prefixes (comma-separated, e.g. "
        "LK001 or LK,OB)",
    )
    lint.add_argument(
        "--json", action="store_true",
        help="emit the structured report as one JSON document",
    )
    lint.add_argument(
        "--baseline", default=None,
        help="baseline file of grandfathered findings "
        "(default: ./lint-baseline.json when present)",
    )
    lint.add_argument(
        "--no-baseline", action="store_true",
        help="report baselined findings too",
    )
    lint.add_argument(
        "--write-baseline", action="store_true",
        help="write every current finding to the baseline file and exit",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="list every rule id with its one-line description",
    )

    hub = sub.add_parser(
        "hub", help="multi-tenant repository hub (many repos, one process)"
    )
    hub_sub = hub.add_subparsers(dest="hub_command", required=True)

    hub_init = hub_sub.add_parser("init", help="create an empty hub directory")
    hub_init.add_argument("root", help="hub directory to create")

    hub_tenant = hub_sub.add_parser(
        "add-tenant", help="register (or reconfigure) a tenant"
    )
    hub_tenant.add_argument("root", help="hub directory")
    hub_tenant.add_argument("name", help="tenant name")
    hub_tenant.add_argument(
        "--token", action="append", required=True, dest="tokens",
        help="bearer token for this tenant (repeatable; replaces prior set)",
    )
    hub_tenant.add_argument(
        "--quota-bytes", type=_positive_int, default=None,
        help="cap on tenant-logical reachable bytes (default: unlimited)",
    )
    hub_tenant.add_argument(
        "--rate", type=float, default=None,
        help="requests per second before throttling (default: unlimited)",
    )
    hub_tenant.add_argument(
        "--burst", type=float, default=None,
        help="token-bucket burst capacity (default: max(1, rate))",
    )

    hub_create = hub_sub.add_parser(
        "create-repo", help="create an empty repository in a tenant namespace"
    )
    hub_create.add_argument("root", help="hub directory")
    hub_create.add_argument("slug", help="tenant/repo")
    hub_create.add_argument("--metric", default=None)
    hub_create.add_argument("--seed", type=int, default=None)

    hub_gc = hub_sub.add_parser(
        "gc", help="sweep a hosted repository's unreferenced content"
    )
    hub_gc.add_argument("root", help="hub directory")
    hub_gc.add_argument("slug", help="tenant/repo")

    hub_serve = hub_sub.add_parser(
        "serve", help="serve every hosted repository over HTTP"
    )
    hub_serve.add_argument("root", help="hub directory")
    hub_serve.add_argument("--host", default="127.0.0.1")
    hub_serve.add_argument("--port", type=int, default=8321)
    hub_serve.add_argument(
        "--requests", type=int, default=None,
        help="exit after handling N requests (default: serve forever)",
    )
    hub_serve.add_argument(
        "--max-loaded-repos", type=_positive_int, default=None,
        help="repositories kept resident before LRU eviction (default 16)",
    )
    hub_serve.add_argument(
        "--max-pack-bytes", type=_positive_int, default=None,
        help="chunk payload window per get_chunks response (default 4 MiB)",
    )
    hub_serve.add_argument(
        "--cache-entries", type=int, default=128,
        help="per-repo read-response cache slots (0 disables)",
    )
    hub_serve.add_argument(
        "--max-request-bytes", type=_positive_int, default=256 * 1024 * 1024,
        help="reject request bodies above this size with HTTP 413 "
        "(default 256 MiB)",
    )
    _add_observability_arguments(hub_serve)
    pull.add_argument(
        "--workload", choices=["readmission", "dpm", "sa", "autolearn"],
        default=None,
        help="rebind component executables from this workload family so a "
        "diverged pull can run the metric-driven merge (use the same "
        "--scale/--seed the repository was built with)",
    )
    pull.add_argument("--scale", type=float, default=0.5)
    pull.add_argument("--seed", type=int, default=0)
    return parser


def _add_hub_client_arguments(parser) -> None:
    """Options the remote verbs need to talk to a multi-tenant hub."""
    parser.add_argument(
        "--token", default=None,
        help="bearer token for a multi-tenant hub remote",
    )
    parser.add_argument(
        "--tenant", default=None, metavar="TENANT/REPO",
        help="address a hub-hosted repository: the remote URL is taken as "
        "the hub base and TENANT/REPO is appended as /t/TENANT/REPO",
    )


def _add_observability_arguments(parser) -> None:
    """Tracing and forensics knobs shared by ``serve`` and ``hub serve``."""
    parser.add_argument(
        "--sample-rate", type=float, default=1.0,
        help="head-sampling probability for new traces, 0..1 (propagated "
        "peer decisions are honoured regardless; default 1.0)",
    )
    parser.add_argument(
        "--export-spans", default=None, metavar="DEST",
        help="export finished spans as JSON lines to a file path or an "
        "http(s) collector URL",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run the wall-clock sampling profiler and expose "
        "GET /debug/profile",
    )
    parser.add_argument(
        "--profile-interval", type=float, default=0.01,
        help="profiler sampling interval in seconds (default 0.01)",
    )
    parser.add_argument(
        "--slow-threshold", type=float, default=None,
        help="default slow-op capture threshold in seconds (built-in "
        "per-op thresholds for push/fetch/chunk ops still apply)",
    )
    parser.add_argument(
        "--slo-config", default=None, metavar="PATH",
        help="JSON file of SLO overrides (per-op p99 objectives, "
        "availability target, burn windows, shedding knobs); default: "
        "the built-in objectives",
    )


def _build_observability(args):
    """The tracer, slow-op ring, and optional profiler/exporter behind the
    shared serve flags; returns ``(tracer, slow_ops, profiler, close)``
    where ``close()`` stops whatever background machinery was started."""
    from .obs import SamplingProfiler, SlowOpCapture, SpanExporter, Tracer, sink_for

    exporter = None
    on_span = None
    if args.export_spans is not None:
        exporter = SpanExporter(sink_for(args.export_spans))
        exporter.start()
        on_span = exporter.export
    tracer = Tracer(sample_rate=args.sample_rate, on_span=on_span)
    if args.slow_threshold is not None:
        slow_ops = SlowOpCapture(default_seconds=args.slow_threshold)
    else:
        slow_ops = SlowOpCapture()
    profiler = None
    if args.profile:
        profiler = SamplingProfiler(interval=args.profile_interval)
        profiler.start()

    def close() -> None:
        if profiler is not None:
            profiler.stop()
        if exporter is not None:
            exporter.stop()

    return tracer, slow_ops, profiler, close


def _load_slo(args):
    """The :class:`~repro.obs.slo.SLOConfig` behind ``--slo-config``
    (the built-in defaults when the flag is absent)."""
    from .errors import MLCaskError
    from .obs import SLOConfig

    if args.slo_config is None:
        return SLOConfig.default()
    try:
        return SLOConfig.load(args.slo_config)
    except (OSError, ValueError) as error:
        # Fail the verb before it binds a port: a server that came up
        # with a half-read SLO would shed against the wrong promises.
        raise MLCaskError(
            f"invalid SLO config {args.slo_config}: {error}"
        ) from error


def _add_rebind_arguments(parser) -> None:
    """Options shared by verbs that must *execute* loaded pipelines: a
    repository directory carries commits, not executables (the paper's
    library-repository separation), so live components are rebound from a
    workload family (fingerprint-verified)."""
    parser.add_argument(
        "--workload", choices=["readmission", "dpm", "sa", "autolearn"],
        default=None,
        help="rebind component executables from this workload family "
        "(use the same --scale/--seed the repository was built with)",
    )
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=0)


def _load_runnable_repo(args, out):
    """Load a repository directory, rebinding workload executables."""
    from .core.repository import MLCask

    repo = MLCask.load_dir(args.repo)
    if args.workload is not None:
        from .workloads import ALL_WORKLOADS

        workload = ALL_WORKLOADS[args.workload](scale=args.scale, seed=args.seed)
        bound = workload.rebind(repo)
        print(
            f"rebound {bound} components from workload {args.workload!r}", file=out
        )
    return repo


def _hint_rebind(error):
    from .errors import RepositoryError

    if "unknown component" in str(error):
        return RepositoryError(
            f"{error}; executing loaded history needs live components — "
            "retry with --workload (and the --scale/--seed the repository "
            "was built with)"
        )
    return error


def _cmd_run(args, out) -> int:
    from .errors import RepositoryError

    repo = _load_runnable_repo(args, out)
    pipeline = _only_pipeline(repo, args.pipeline)
    try:
        report = repo.run_head(pipeline, args.branch, workers=args.workers)
    except RepositoryError as error:
        raise _hint_rebind(error) from error
    for stage_report in report.stage_reports:
        status = "reused" if stage_report.reused else (
            "failed" if stage_report.failed else "executed"
        )
        print(
            f"  {stage_report.stage:12s} {status:8s} "
            f"{stage_report.run_seconds + stage_report.store_seconds:8.3f}s  "
            f"{stage_report.component_id}",
            file=out,
        )
    if report.failed:
        print(
            f"run failed at {report.failure_stage!r}: {report.failure_reason}",
            file=out,
        )
        return 1
    repo.save_dir(args.repo)  # persist newly archived checkpoints
    score = "n/a" if report.score is None else f"{report.score:.4f}"
    print(
        f"ran {pipeline}:{args.branch} with {args.workers} worker(s): "
        f"score {score}, {report.n_executed} executed / "
        f"{report.n_reused} reused, {report.pipeline_seconds:.3f}s pipeline time",
        file=out,
    )
    return 0


def _cmd_merge(args, out) -> int:
    from .errors import RepositoryError

    repo = _load_runnable_repo(args, out)
    pipeline = _only_pipeline(repo, args.pipeline)
    try:
        outcome = repo.merge(
            pipeline,
            args.head_branch,
            args.merge_head_branch,
            mode=args.mode,
            search=args.search,
            budget=args.budget,
            time_budget_seconds=args.time_budget,
            workers=args.workers,
        )
    except RepositoryError as error:
        raise _hint_rebind(error) from error
    repo.save_dir(args.repo)
    print(outcome.summary(), file=out)
    print(f"winner: {outcome.commit.describe()}", file=out)
    return 0


def _cmd_workloads(out) -> int:
    from .workloads import ALL_WORKLOADS

    for name, factory in ALL_WORKLOADS.items():
        workload = factory()
        stages = " -> ".join(["dataset", *workload.stage_names])
        print(f"{name:12s} {stages}  (metric: {workload.metric})", file=out)
    return 0


def _cmd_demo(args, out) -> int:
    from .core.repository import MLCask
    from .workloads import ALL_WORKLOADS, apply_nonlinear_history, nonlinear_script

    workload = ALL_WORKLOADS[args.workload](scale=args.scale, seed=args.seed)
    repo = MLCask(metric=workload.metric, seed=args.seed)
    print(f"building the Fig. 3 history for {workload.name!r} ...", file=out)
    apply_nonlinear_history(repo, nonlinear_script(workload))
    print(repo.log(workload.name, "dev"), file=out)
    print(repo.log(workload.name, "master"), file=out)
    outcome = repo.merge(workload.name, "master", "dev", mode=args.mode)
    print(f"\n{outcome.summary()}", file=out)
    print(f"winner: {outcome.commit.describe()}", file=out)
    print(f"\n{repo.diff(workload.name, outcome.commit.parents[0], 'master')}", file=out)
    return 0


def _cmd_experiment(args, out) -> int:
    if args.which == "linear":
        from .experiments import run_linear_experiment

        result = run_linear_experiment(
            apps=tuple(args.apps),
            n_iterations=args.iterations,
            scale=args.scale,
            seed=args.seed,
        )
        print(result.render_fig5(), file=out)
        print(file=out)
        print(result.render_fig6(), file=out)
        print(file=out)
        print(result.render_fig7(), file=out)
    elif args.which == "merge":
        from .experiments import run_merge_experiment

        result = run_merge_experiment(
            apps=tuple(args.apps), scale=args.scale, seed=args.seed
        )
        print(result.render_fig8(), file=out)
        print(file=out)
        print(result.render_fig9(), file=out)
        print(file=out)
        print(result.render_provenance(), file=out)
        for app in args.apps:
            print(
                f"{app}: speedup {result.speedup(app):.2f}x, "
                f"storage saving {result.storage_saving(app):.2f}x",
                file=out,
            )
    elif args.which == "search":
        from .experiments import run_search_experiment

        result = run_search_experiment(
            apps=tuple(args.apps),
            n_trials=args.trials,
            scale=args.scale,
            seed=args.seed,
        )
        print(result.render_table1(), file=out)
    else:  # distributed
        from .experiments import run_distributed_experiment

        result = run_distributed_experiment(seed=args.seed)
        print(result.render_fig11a(), file=out)
        print(file=out)
        print(result.render_fig11b(), file=out)
    return 0


# ------------------------------------------------------------ remote verbs
def _resolve_remote_target(target: str, tenant: str | None) -> str:
    """Append a ``--tenant tenant/repo`` slug to a hub base URL."""
    from .errors import RemoteError

    if tenant is None:
        return target
    if not target.startswith(("http://", "https://")):
        raise RemoteError(
            "--tenant addresses a hub over HTTP; the remote must be an "
            "http(s) base URL"
        )
    parts = tenant.split("/")
    if len(parts) != 2 or not all(parts):
        raise RemoteError(
            f"--tenant expects TENANT/REPO, got {tenant!r}"
        )
    return f"{target.rstrip('/')}/t/{parts[0]}/{parts[1]}"


def _transport_for(target: str, persist: bool = False, token: str | None = None):
    """A transport to ``target``: HTTP URL or repository-directory path.

    Directory remotes are loaded and served in-process over the same wire
    protocol as HTTP; with ``persist`` the directory is rewritten after
    every state-mutating request (i.e. a received push sticks).
    ``token`` rides as a bearer credential on HTTP remotes (hubs).
    """
    from .core.repository import MLCask
    from .errors import RemoteError
    from .remote.server import RepositoryServer
    from .remote.transport import HttpTransport, LocalTransport

    if target.startswith(("http://", "https://")):
        return HttpTransport(target, token=token)
    if token is not None:
        raise RemoteError("--token only applies to http(s) remotes")
    on_change = (lambda repo: repo.save_dir(target)) if persist else None
    return LocalTransport(
        RepositoryServer(MLCask.load_dir(target), on_change=on_change)
    )


def _only_pipeline(repo, requested: str | None) -> str:
    from .errors import RepositoryError

    if requested is not None:
        return requested
    pipelines = repo.branches.pipelines()
    if len(pipelines) == 1:
        return pipelines[0]
    raise RepositoryError(
        f"--pipeline required (repository has {len(pipelines)} pipelines: "
        f"{', '.join(pipelines) or 'none'})"
    )


def _cmd_init(args, out) -> int:
    from .core.repository import MLCask
    from .workloads import ALL_WORKLOADS

    workload = ALL_WORKLOADS[args.workload](scale=args.scale, seed=args.seed)
    repo = MLCask(metric=workload.metric, seed=args.seed)
    repo.create_pipeline(
        workload.spec, workload.initial_components(), message="initial pipeline"
    )
    for idx in range(1, args.commits + 1):
        repo.commit(
            workload.name,
            {workload.model_stage: workload.model_version(idx)},
            message=f"model update {idx}",
        )
    repo.save_dir(args.repo)
    head = repo.head_commit(workload.name)
    print(
        f"initialized {args.repo}: pipeline {workload.name!r} "
        f"at {head.label} ({len(repo.graph)} commits)",
        file=out,
    )
    return 0


def _cmd_serve(args, out) -> int:
    from .core.repository import MLCask
    from .remote.pack import DEFAULT_MAX_PACK_BYTES
    from .remote.server import serve

    repo = MLCask.load_dir(args.repo)
    tracer, slow_ops, profiler, close_obs = _build_observability(args)
    server = serve(
        repo,
        host=args.host,
        port=args.port,
        on_change=lambda r: r.save_dir(args.repo),
        tracer=tracer,
        slow_ops=slow_ops,
        profiler=profiler,
        max_pack_bytes=(
            args.max_pack_bytes
            if args.max_pack_bytes is not None
            else DEFAULT_MAX_PACK_BYTES
        ),
        cache_entries=args.cache_entries,
        max_request_bytes=args.max_request_bytes,
        slo=_load_slo(args),
        # Bounded serving must return promptly after the Nth request even
        # when clients leave keep-alive sockets open: a short idle timeout
        # lets server_close() join the handler threads without waiting out
        # the default 60s (clients transparently reconnect if they resume).
        # 5s, not shorter: the same timeout governs mid-body reads, and a
        # request stalled past it is dropped *and* charged to the budget.
        idle_timeout=5.0 if args.requests is not None else None,
    )
    print(f"serving {args.repo} at {server.url}/rpc", file=out)
    # One machine-parseable readiness line after the human one: tests and
    # supervisors wait on the event instead of sleeping or scraping prose.
    from .obs.events import emit

    emit(
        "serve.ready",
        stream=out,
        endpoint=f"{server.url}/rpc",
        repo=args.repo,
        commits=len(repo.graph),
        request_budget=args.requests,
        max_request_bytes=args.max_request_bytes,
    )
    try:
        if args.requests is not None:
            # Bounded serving counts handled *requests*, not accepted
            # connections — keep-alive clients multiplex many requests
            # over one socket (handlers stop honouring keep-alive once the
            # budget is spent, see request_limit). The accept timeout lets
            # the loop re-check the count while the last connection is
            # still open, and daemon_threads=False makes server_close()
            # join the handler threads so no response is left in flight.
            server.daemon_threads = False
            server.timeout = 0.2
            server.request_limit = args.requests
            while server.repository_server.requests_handled < args.requests:
                server.handle_request()
        else:
            server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        close_obs()
    return 0


def _cmd_clone(args, out) -> int:
    import os

    from .core.repository import MLCask
    from .errors import RemoteError

    if os.path.exists(args.dest) and (
        not os.path.isdir(args.dest) or os.listdir(args.dest)
    ):
        raise RemoteError(f"destination {args.dest!r} exists and is not empty")
    source = _resolve_remote_target(args.source, args.tenant)
    transport = _transport_for(source, token=args.token)
    try:
        repo = MLCask.clone(transport, max_pack_bytes=args.max_pack_bytes)
    finally:
        transport.close()
    repo.save_dir(args.dest)
    n_refs = sum(
        len([b for b in repo.branches.branches(p) if "/" not in b])
        for p in repo.branches.pipelines()
    )
    print(
        f"cloned {args.source} -> {args.dest}: {len(repo.graph)} commits, "
        f"{n_refs} refs, {transport.bytes_transferred} bytes on the wire",
        file=out,
    )
    return 0


def _cmd_push(args, out) -> int:
    from .core.repository import MLCask

    repo = MLCask.load_dir(args.repo)
    pipeline = _only_pipeline(repo, args.pipeline)
    remote = repo.add_remote(
        "origin",
        _transport_for(
            _resolve_remote_target(args.remote, args.tenant),
            persist=True,
            token=args.token,
        ),
        max_pack_bytes=args.max_pack_bytes,
    )
    try:
        result = remote.push(pipeline, args.branch)
    finally:
        remote.transport.close()
    if result.up_to_date:
        print(f"{pipeline}:{args.branch} already up to date", file=out)
    else:
        print(
            f"pushed {pipeline}:{args.branch}: {result.commits_sent} commits, "
            f"{result.chunks_sent} chunks ({result.chunk_bytes_sent} bytes)",
            file=out,
        )
    return 0


def _cmd_pull(args, out) -> int:
    from .core.repository import MLCask

    repo = MLCask.load_dir(args.repo)
    pipeline = _only_pipeline(repo, args.pipeline)
    remote = repo.add_remote(
        "origin",
        _transport_for(
            _resolve_remote_target(args.remote, args.tenant), token=args.token
        ),
        max_pack_bytes=args.max_pack_bytes,
    )
    if args.workload is not None:
        from .workloads import ALL_WORKLOADS

        # Fetch first so components referenced only by upstream commits
        # are part of the history being rebound.
        remote.fetch(pipeline, [args.branch])
        workload = ALL_WORKLOADS[args.workload](scale=args.scale, seed=args.seed)
        bound = workload.rebind(repo)
        print(f"rebound {bound} components from workload {args.workload!r}", file=out)
    from .errors import RemoteError, RepositoryError

    try:
        result = remote.pull(pipeline, args.branch)
    except RepositoryError as error:
        if "unknown component" in str(error):
            raise RemoteError(
                f"{error}; a diverged pull runs the metric-driven merge, "
                "which needs live components — retry with --workload "
                "(and the --scale/--seed the repository was built with)"
            ) from error
        raise
    finally:
        remote.transport.close()
    repo.save_dir(args.repo)
    line = (
        f"pulled {pipeline}:{args.branch}: {result.action}, "
        f"{result.fetch.commits_received} commits, "
        f"{result.fetch.chunks_received} chunks received"
    )
    if result.outcome is not None:
        line += f"\n{result.outcome.summary()}"
    print(line, file=out)
    return 0


def _cmd_stats(args, out) -> int:
    """The ``stats`` op as a verb: one server's counters, human or JSON;
    ``--watch N`` re-fetches and re-renders every N seconds."""
    import time

    target = _resolve_remote_target(args.target, args.tenant)
    if args.watch is None:
        transport = _transport_for(target, token=args.token)
        try:
            _render_stats_once(args, transport, out)
        finally:
            transport.close()
        return 0
    interval = max(args.watch, 0.1)
    # One transport across iterations: keep-alive instead of a fresh
    # connection per refresh.  Ctrl-C is the documented exit path.
    transport = _transport_for(target, token=args.token)
    try:
        while True:
            _render_stats_once(args, transport, out, stamp=True)
            time.sleep(interval)
    except KeyboardInterrupt:
        pass
    finally:
        transport.close()
    return 0


def _render_stats_once(args, transport, out, stamp: bool = False) -> None:
    import json
    import time

    from .remote.client import Remote

    # repo=None: stats is pure readout, no local repository involved
    # (the same probe shape clone uses for the manifest).
    stats = Remote(repo=None, transport=transport).stats()
    if stamp:
        print(f"--- {time.strftime('%H:%M:%S')} ---", file=out)
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True), file=out)
        return
    cache = stats.get("cache", {})
    storage = stats.get("storage", {})
    repository = stats.get("repository", {})
    engine = stats.get("engine", {})
    tasks = engine.get("scheduler_tasks", {})
    flight = engine.get("single_flight", {})
    lineage = stats.get("lineage", {})
    health = stats.get("health", {})
    if health:
        state = "ready" if health.get("ready") else (
            "NOT READY: " + "; ".join(health.get("reasons", []))
        )
        print(
            f"health: {state} (queue depth {health.get('queue_depth', 0):g}, "
            f"{health.get('window_seconds', 0):g}s window)",
            file=out,
        )
    print(
        f"requests handled: {stats.get('requests_handled', 0)}\n"
        f"cache: {cache.get('hits', 0)} hits, {cache.get('misses', 0)} misses "
        f"(hit rate {cache.get('hit_rate', 0.0):.1%}; "
        f"{cache.get('entries', 0)} entries, {cache.get('bytes', 0)} bytes)\n"
        f"storage: {storage.get('logical_bytes', 0)} logical bytes, "
        f"{storage.get('physical_bytes', 0)} physical, "
        f"{storage.get('read_bytes', 0)} read back\n"
        f"repository: {repository.get('commits', 0)} commits, "
        f"{repository.get('pipelines', 0)} pipelines, "
        f"{repository.get('checkpoints', 0)} checkpoint records\n"
        f"engine: queue depth {engine.get('scheduler_queue_depth', 0):g}, "
        f"{engine.get('scheduler_steals', 0):g} steals; tasks "
        f"{tasks.get('done', 0):g} done / {tasks.get('failed', 0):g} failed "
        f"/ {tasks.get('cancelled', 0):g} cancelled; single-flight "
        f"{flight.get('hit', 0):g} hit / {flight.get('computed', 0):g} "
        f"computed / {flight.get('joined', 0):g} joined\n"
        f"lineage: {lineage.get('records', 0)} records "
        f"({lineage.get('collected', 0)} collected)",
        file=out,
    )


def _cmd_health(args, out) -> int:
    """The ``health`` op as a verb: the sliding-window report, human or
    JSON — readiness, per-op percentiles vs objectives, burn, shedding."""
    import json

    from .remote.client import Remote

    target = _resolve_remote_target(args.target, args.tenant)
    transport = _transport_for(target, token=args.token)
    try:
        report = Remote(repo=None, transport=transport).health()
    finally:
        transport.close()
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True), file=out)
        return 0
    state = "ready" if report["ready"] else (
        "NOT READY: " + "; ".join(report.get("reasons", []))
    )
    burn = report.get("burn", {})
    shedding = report.get("shedding", {})
    slo = report.get("slo", {})
    print(
        f"{state} ({report.get('window_seconds', 0):g}s window, "
        f"queue depth {report.get('queue_depth', 0):g})\n"
        f"error budget: {slo.get('availability', 0.0):.2%} availability "
        f"target; burn fast {burn.get('fast', {}).get('burn', 0.0):.2f}x "
        f"/ slow {burn.get('slow', {}).get('burn', 0.0):.2f}x",
        file=out,
    )
    shed_state = "on" if shedding.get("enabled") else "off"
    active = " ACTIVE" if shedding.get("active") else ""
    print(
        f"shedding: {shed_state}{active}, {shedding.get('total', 0)} shed",
        file=out,
    )
    for op, summary in sorted(report.get("ops", {}).items()):
        if not summary.get("count"):
            continue
        breach = "  << over objective" if summary.get("breach") else ""
        objective = summary.get("objective_p99_seconds")
        objective_text = "-" if objective is None else f"{objective * 1000.0:.0f}"
        print(
            f"  {op:14s} {summary['count']:6d} reqs  "
            f"p50 {summary['p50'] * 1000.0:7.1f} ms  "
            f"p95 {summary['p95'] * 1000.0:7.1f} ms  "
            f"p99 {summary['p99'] * 1000.0:7.1f} ms  "
            f"(objective {objective_text} ms){breach}",
            file=out,
        )
    return 0


def _cmd_lineage(args, out) -> int:
    """Provenance queries as a verb: closure, consumers, or trace forensics."""
    import json

    from .errors import RemoteError
    from .remote.client import Remote

    if (args.ref is None) == (args.trace is None):
        raise RemoteError("give exactly one of REF or --trace TRACE_ID")
    target = _resolve_remote_target(args.target, args.tenant)
    transport = _transport_for(target, token=args.token)
    try:
        remote = Remote(repo=None, transport=transport)
        if args.trace is not None:
            result = remote.lineage_trace(args.trace)
        elif args.consumers:
            result = remote.lineage_consumers(args.ref)
        else:
            result = remote.lineage(args.ref)
    finally:
        transport.close()
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True), file=out)
        return 0
    if args.trace is not None:
        print(
            f"trace {result['trace_id']}: "
            f"{result['executed']} executed, {result['reused']} reused",
            file=out,
        )
        for node in result["nodes"]:
            flag = "x" if node["via"] == "executed" else "r"
            print(
                f"  [{flag}] {node['stage']}: {node['component_id']} "
                f"-> {node['output_ref'][:12]} ({node['wall_seconds']:.3f}s)",
                file=out,
            )
        return 0
    if args.consumers:
        print(
            f"{result['ref'][:12]} feeds {len(result['consumers'])} "
            f"downstream record(s) across {len(result['refs'])} output(s)",
            file=out,
        )
        for record in result["consumers"]:
            print(
                f"  {record['stage']}: {record['component_id']} "
                f"-> {record['output_ref'][:12]} ({record['via']})",
                file=out,
            )
        for commit in result["commits"]:
            kind = "merge" if commit["merge"] else "commit"
            print(
                f"  {kind} {commit['commit_id'][:12]} "
                f"[{commit['pipeline']}:{commit['branch']}] {commit['message']}",
                file=out,
            )
        return 0
    print(
        f"lineage of {result['ref'][:12]}: {len(result['nodes'])} node(s), "
        f"{len(result['edges'])} edge(s)",
        file=out,
    )
    for node in result["nodes"]:
        swept = " [collected]" if node["collected"] else ""
        print(
            f"  {node['ref'][:12]} {node['stage']}: "
            f"{node['component_id']} "
            f"(executed {node['events'] - node['reuses']}x, "
            f"reused {node['reuses']}x){swept}",
            file=out,
        )
    for commit in result["commits"]:
        kind = "merge" if commit["merge"] else "commit"
        print(
            f"  consumed by {kind} {commit['commit_id'][:12]} "
            f"[{commit['pipeline']}:{commit['branch']}] {commit['message']}",
            file=out,
        )
    return 0


def _cmd_impact(args, out) -> int:
    """What-if analysis: the downstream invalidation set of a component."""
    import json

    from .remote.client import Remote

    target = _resolve_remote_target(args.target, args.tenant)
    transport = _transport_for(target, token=args.token)
    try:
        result = Remote(repo=None, transport=transport).impact(
            args.component, version=args.component_version
        )
    finally:
        transport.close()
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True), file=out)
        return 0
    versions = ", ".join(result["matched_versions"]) or "-"
    print(
        f"impact of {result['component']} (versions: {versions}):\n"
        f"  {len(result['outputs'])} direct output(s), "
        f"{len(result['invalidated'])} downstream checkpoint(s) invalidated "
        f"across stages: {', '.join(result['stages']) or '-'}",
        file=out,
    )
    for head in result["branches"]:
        print(f"  would invalidate {head['pipeline']}:{head['branch']}", file=out)
    for commit in result["commits"]:
        kind = "merge" if commit["merge"] else "commit"
        print(
            f"  reaches {kind} {commit['commit_id'][:12]} "
            f"[{commit['pipeline']}:{commit['branch']}]",
            file=out,
        )
    return 0


def _cmd_trace(args, out) -> int:
    """The ``trace`` op as a verb: span buffer, critical path, slow ops."""
    import json

    from .remote.client import Remote

    target = _resolve_remote_target(args.target, args.tenant)
    transport = _transport_for(target, token=args.token)
    try:
        result = Remote(repo=None, transport=transport).trace(
            args.trace_id, limit=args.limit, slow=args.slow
        )
    finally:
        transport.close()
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True), file=out)
        return 0
    if args.trace_id is not None:
        from .obs.critical_path import render_critical_path

        print(render_critical_path(result["critical_path"]), file=out)
    else:
        traces = result.get("traces", [])
        print(f"{len(traces)} recent trace(s)", file=out)
        for summary in traces:
            errors = f", {summary['errors']} error(s)" if summary["errors"] else ""
            print(
                f"  {summary['trace_id']} {summary['root'] or '?'}: "
                f"{summary['spans']} span(s), "
                f"{summary['seconds'] * 1000.0:.1f} ms{errors}",
                file=out,
            )
    for capture in result.get("slow", []):
        print(
            f"  slow {capture['op']}: {capture['seconds']:.3f}s "
            f"(threshold {capture['threshold']:.3f}s, "
            f"trace {capture.get('trace_id') or '-'}, "
            f"{len(capture.get('spans', []))} span(s))",
            file=out,
        )
    return 0


def _cmd_profile(args, out) -> int:
    """Live performance readout of a serving process over plain HTTP."""
    import json
    import urllib.error
    import urllib.request

    from .errors import RemoteError

    if not args.target.startswith(("http://", "https://")):
        raise RemoteError(
            "profile reads a live endpoint; the target must be an "
            "http(s) base URL"
        )
    path = "/debug/slow" if args.slow else "/debug/profile"
    url = args.target.rstrip("/") + path
    request = urllib.request.Request(url)
    if args.token is not None:
        request.add_header("Authorization", f"Bearer {args.token}")
    try:
        with urllib.request.urlopen(request, timeout=10.0) as response:
            body = json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        hint = (
            "; start the server with --profile"
            if error.code == 404 and not args.slow
            else "; pass --token with a valid tenant token"
            if error.code == 403
            else ""
        )
        raise RemoteError(f"{url} answered {error.code}{hint}") from error
    except OSError as error:
        raise RemoteError(f"cannot reach {url}: {error}") from error
    if args.json:
        print(json.dumps(body, indent=2, sort_keys=True), file=out)
        return 0
    if args.slow:
        captures = body.get("slow", [])
        print(f"{len(captures)} slow-op capture(s)", file=out)
        for capture in captures:
            print(
                f"  {capture['op']}: {capture['seconds']:.3f}s "
                f"(threshold {capture['threshold']:.3f}s, "
                f"trace {capture.get('trace_id') or '-'})",
                file=out,
            )
        return 0
    snapshot = body.get("profile", {})
    state = "running" if snapshot.get("running") else "stopped"
    print(
        f"profiler {state}: {snapshot.get('samples', 0)} samples, "
        f"{snapshot.get('unique_stacks', 0)} unique stacks "
        f"(interval {snapshot.get('interval_seconds', 0.0) * 1000.0:.1f} ms, "
        f"{snapshot.get('dropped_stacks', 0)} dropped)",
        file=out,
    )
    folded = body.get("folded", "")
    if folded:
        print(folded, file=out)
    return 0


def _cmd_gc(args, out) -> int:
    from .core.persistence import gc_repository_dir

    report, pruned_records = gc_repository_dir(
        args.repo, keep_checkpoints=args.keep_checkpoints
    )
    print(
        f"gc {args.repo}: swept {report.swept_chunks} chunks "
        f"({report.swept_bytes} bytes), kept {report.live_chunks} live chunks "
        f"across {report.live_blobs} live blobs, "
        f"pruned {pruned_records} checkpoint records",
        file=out,
    )
    return 0


# --------------------------------------------------------------- hub verbs
def _hub_for(args, **kwargs):
    from .hub import RepositoryHub

    return RepositoryHub(args.root, **kwargs)


def _cmd_hub_init(args, out) -> int:
    hub = _hub_for(args)
    print(
        f"initialized hub at {args.root} "
        f"({len(hub.authenticator.tenants())} tenants); next: "
        f"`repro hub add-tenant {args.root} NAME --token SECRET`",
        file=out,
    )
    return 0


def _cmd_hub_add_tenant(args, out) -> int:
    hub = _hub_for(args)
    config = hub.add_tenant(
        args.name,
        tokens=args.tokens,
        quota_bytes=args.quota_bytes,
        rate_per_second=args.rate,
        burst=args.burst,
    )
    quota = "unlimited" if config.quota_bytes is None else str(config.quota_bytes)
    rate = (
        "unlimited"
        if config.rate_per_second is None
        else f"{config.rate_per_second:g}/s"
    )
    print(
        f"tenant {config.name!r}: {len(config.tokens)} token(s), "
        f"quota {quota} bytes, rate {rate}",
        file=out,
    )
    return 0


def _cmd_hub_create_repo(args, out) -> int:
    from .errors import RemoteError

    parts = args.slug.split("/")
    if len(parts) != 2 or not all(parts):
        raise RemoteError(f"expected TENANT/REPO, got {args.slug!r}")
    hub = _hub_for(args)
    hosted = hub.create_repo(parts[0], parts[1], metric=args.metric, seed=args.seed)
    repo = hosted.server.repo
    print(
        f"created {parts[0]}/{parts[1]} "
        f"(metric {repo.metric!r}, seed {repo.seed})",
        file=out,
    )
    return 0


def _cmd_hub_gc(args, out) -> int:
    from .errors import RemoteError

    parts = args.slug.split("/")
    if len(parts) != 2 or not all(parts):
        raise RemoteError(f"expected TENANT/REPO, got {args.slug!r}")
    hub = _hub_for(args)
    report = hub.gc_repo(parts[0], parts[1])
    print(
        f"gc {parts[0]}/{parts[1]}: swept {report.swept_chunks} chunks "
        f"({report.swept_bytes} bytes), kept {report.live_chunks} live "
        f"chunks across {report.live_blobs} live blobs; tenant "
        f"{parts[0]!r} now uses {hub.tenant_usage(parts[0])} bytes",
        file=out,
    )
    return 0


def _cmd_hub_serve(args, out) -> int:
    from .hub import serve_hub

    kwargs = {}
    if args.max_loaded_repos is not None:
        kwargs["max_loaded_repos"] = args.max_loaded_repos
    if args.max_pack_bytes is not None:
        kwargs["max_pack_bytes"] = args.max_pack_bytes
    tracer, slow_ops, profiler, close_obs = _build_observability(args)
    hub = _hub_for(
        args,
        cache_entries=args.cache_entries,
        tracer=tracer,
        slow_ops=slow_ops,
        slo=_load_slo(args),
        **kwargs,
    )
    server = serve_hub(
        hub,
        host=args.host,
        port=args.port,
        max_request_bytes=args.max_request_bytes,
        profiler=profiler,
        # See _cmd_serve: bounded serving needs a short idle timeout so
        # server_close() can join handler threads promptly.
        idle_timeout=5.0 if args.requests is not None else None,
    )
    tenants = ", ".join(c.name for c in hub.authenticator.tenants()) or "none"
    print(
        f"serving hub {args.root} at {server.url}/t/<tenant>/<repo>/rpc "
        f"(tenants: {tenants})",
        file=out,
    )
    from .obs.events import emit

    emit(
        "hub.ready",
        stream=out,
        endpoint=f"{server.url}/t/<tenant>/<repo>/rpc",
        root=args.root,
        tenants=len(hub.authenticator.tenants()),
        repos=sum(
            len(hub.list_repos(c.name)) for c in hub.authenticator.tenants()
        ),
        max_loaded_repos=hub.max_loaded_repos,
        request_budget=args.requests,
        max_request_bytes=args.max_request_bytes,
    )
    try:
        if args.requests is not None:
            server.daemon_threads = False
            server.timeout = 0.2
            server.request_limit = args.requests
            while hub.requests_handled < args.requests:
                server.handle_request()
        else:
            server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        close_obs()
    return 0


def _cmd_hub(args, out) -> int:
    handler = {
        "init": _cmd_hub_init,
        "add-tenant": _cmd_hub_add_tenant,
        "create-repo": _cmd_hub_create_repo,
        "gc": _cmd_hub_gc,
        "serve": _cmd_hub_serve,
    }[args.hub_command]
    return handler(args, out)


def _cmd_lint(args, out) -> int:
    from .analysis.cli import run

    return run(args, out)


def main(argv: list[str] | None = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    from .errors import MLCaskError

    out = out if out is not None else sys.stdout
    args = _build_parser().parse_args(argv)
    if args.command == "workloads":
        return _cmd_workloads(out)
    if args.command == "demo":
        return _cmd_demo(args, out)
    if args.command in (
        "init", "serve", "clone", "push", "pull", "stats", "health",
        "lineage", "impact", "trace", "profile", "run", "merge", "gc",
        "hub", "lint",
    ):
        handler = {
            "init": _cmd_init,
            "serve": _cmd_serve,
            "clone": _cmd_clone,
            "push": _cmd_push,
            "pull": _cmd_pull,
            "stats": _cmd_stats,
            "health": _cmd_health,
            "lineage": _cmd_lineage,
            "impact": _cmd_impact,
            "trace": _cmd_trace,
            "profile": _cmd_profile,
            "run": _cmd_run,
            "merge": _cmd_merge,
            "gc": _cmd_gc,
            "hub": _cmd_hub,
            "lint": _cmd_lint,
        }[args.command]
        try:
            return handler(args, out)
        except MLCaskError as error:
            print(f"error: {error}", file=out)
            return 1
    return _cmd_experiment(args, out)


if __name__ == "__main__":
    raise SystemExit(main())
