"""Lineage queries: the retrospective-audit and what-if APIs.

These functions assemble the ledger's flat event log into answers,
against a repository (they consult the commit graph and branch heads as
well as the ledger — the commits that *consumed* an artifact live in the
graph, which already rides sync, so consumption is never duplicated
into ledger state):

* :func:`lineage_of` — "what fed this artifact?": the full upstream
  closure of a checkpointed output, plus the commits/merges that
  consumed it;
* :func:`consumers_of` — "who read this artifact?": direct downstream
  records and consuming commits;
* :func:`impact_of` — "what breaks if I bump this component?": the
  downstream invalidation set (checkpoints, commits, branch heads) of a
  component's outputs — Kramer's what-if surface;
* :func:`trace_forensics` — "what did this request execute?": every
  record stamped with one trace id, joined back to PR 6 spans;
* :func:`trace_critical_path` — "what bounded this request's wall
  time?": the same trace's *span tree* (client → hub → server → lock →
  storage, joined across the wire by trace-context propagation) run
  through the critical-path analyzer, with the ledger's
  executed-vs-reused wall-time attribution alongside.

All results are plain JSON-able dicts: the ``lineage`` RPC op serves
them verbatim and the CLI renders them, so wire, disk, and terminal
agree field-for-field.
"""

from __future__ import annotations

from ..errors import LineageNotFoundError
from .ledger import LineageLedger, LineageRecord, lineage_record_to_dict


def _ledger_of(repo) -> LineageLedger:
    ledger = getattr(repo, "lineage", None)
    if ledger is None:
        raise LineageNotFoundError("repository has no lineage ledger")
    return ledger


def resolve_output_ref(repo, ref: str) -> str:
    """Accept a full output ref or an unambiguous prefix (commit-id
    ergonomics, same spirit as ``MLCask._resolve_ref``)."""
    outputs = _ledger_of(repo).outputs()
    if ref in outputs:
        return ref
    matches = sorted(o for o in outputs if o.startswith(ref))
    if len(matches) == 1:
        return matches[0]
    if not matches:
        raise LineageNotFoundError(f"no lineage recorded for ref {ref!r}")
    raise LineageNotFoundError(
        f"ambiguous ref prefix {ref!r} ({len(matches)} matches)"
    )


def _producers_by_output(records) -> dict[str, list[LineageRecord]]:
    producers: dict[str, list[LineageRecord]] = {}
    for record in records:
        producers.setdefault(record.output_ref, []).append(record)
    return producers


def _consumers_by_input(records) -> dict[str, list[LineageRecord]]:
    consumers: dict[str, list[LineageRecord]] = {}
    for record in records:
        for parent in record.input_refs:
            consumers.setdefault(parent, []).append(record)
    return consumers


def _node_of(ref: str, producers: list[LineageRecord]) -> dict:
    """One DAG node: an artifact ref plus what produced/adopted it."""
    executed = [r for r in producers if r.via == "executed"]
    head = executed[0] if executed else producers[0]
    return {
        "ref": ref,
        "stage": head.stage,
        "pipeline": head.pipeline,
        "component_id": head.component_id,
        "component_version": head.component_version,
        "params_digest": head.params_digest,
        "events": len(producers),
        "reuses": sum(1 for r in producers if r.via == "reused"),
        "collected": all(r.collected for r in producers),
    }


def _commit_summary(commit) -> dict:
    return {
        "commit_id": commit.commit_id,
        "pipeline": commit.pipeline,
        "branch": commit.branch,
        "label": commit.label,
        "merge": len(commit.parents) > 1,
        "message": commit.message,
    }


def _consuming_commits(repo, refs: set[str]) -> list[dict]:
    """Commits (incl. fast-forward/metric-driven merges) whose recorded
    stage outputs include any of ``refs``, oldest first."""
    hits = [
        commit
        for commit in repo.graph.all_commits()
        if refs.intersection(commit.stage_outputs.values())
    ]
    return [_commit_summary(c) for c in sorted(hits, key=lambda c: c.sequence)]


def lineage_of(repo, ref: str) -> dict:
    """Full upstream closure of ``ref``: every artifact that (transitively)
    fed it, the producing/adopting events, and the commits that consumed
    the artifact itself."""
    target = resolve_output_ref(repo, ref)
    records = _ledger_of(repo).records()
    producers = _producers_by_output(records)

    closure: list[str] = []
    seen = {target}
    queue = [target]
    edges: list[tuple[str, str]] = []
    edge_seen: set[tuple[str, str]] = set()
    while queue:
        current = queue.pop(0)
        closure.append(current)
        for record in producers.get(current, ()):
            for parent in record.input_refs:
                edge = (parent, current)
                if edge not in edge_seen:
                    edge_seen.add(edge)
                    edges.append(edge)
                if parent not in seen:
                    seen.add(parent)
                    queue.append(parent)

    return {
        "ref": target,
        "nodes": [_node_of(r, producers[r]) for r in closure if r in producers],
        "edges": [list(edge) for edge in edges],
        "records": [
            lineage_record_to_dict(record)
            for record in records
            if record.output_ref in seen
        ],
        "commits": _consuming_commits(repo, {target}),
    }


def consumers_of(repo, ref: str) -> dict:
    """Direct downstream readers of ``ref``: records that listed it as an
    input, and commits that recorded it as a stage output."""
    target = resolve_output_ref(repo, ref)
    records = _ledger_of(repo).records()
    consumers = [r for r in records if target in r.input_refs]
    return {
        "ref": target,
        "consumers": [lineage_record_to_dict(r) for r in consumers],
        "refs": sorted({r.output_ref for r in consumers}),
        "commits": _consuming_commits(repo, {target}),
    }


def impact_of(repo, component: str, version: str | None = None) -> dict:
    """What-if analysis: everything downstream of a component's outputs.

    ``component`` is a component name (``"readmission.scaler"``), a full
    identifier (``"readmission.scaler@master.0.1"``), or a stage name
    (``"scaler"``); ``version`` narrows the match to one version.
    Returns the transitive invalidation set: checkpoint refs that would
    have to recompute, the commits recording them, and the branch heads
    that depend on them."""
    records = _ledger_of(repo).records()
    matched = [
        r
        for r in records
        if (
            r.component_id == component
            or r.component_id.split("@", 1)[0] == component
            or r.stage == component
        )
        and (version is None or r.component_version == version)
    ]
    if not matched:
        raise LineageNotFoundError(
            f"no lineage recorded for component {component!r}"
            + (f" version {version!r}" if version else "")
        )

    consumers = _consumers_by_input(records)
    seeds = {r.output_ref for r in matched}
    invalidated: set[str] = set()
    queue = sorted(seeds)
    while queue:
        current = queue.pop(0)
        if current in invalidated:
            continue
        invalidated.add(current)
        for record in consumers.get(current, ()):
            if record.output_ref not in invalidated:
                queue.append(record.output_ref)

    affected_branches = []
    for pipeline in repo.branches.pipelines():
        for branch in repo.branches.branches(pipeline):
            head = repo.graph.get(repo.branches.head(pipeline, branch))
            if invalidated.intersection(head.stage_outputs.values()):
                affected_branches.append({"pipeline": pipeline, "branch": branch})

    downstream = sorted(invalidated - seeds)
    return {
        "component": component,
        "version": version,
        "matched_versions": sorted({r.component_version for r in matched}),
        "outputs": sorted(seeds),
        "invalidated": downstream,
        "stages": sorted(
            {r.stage for r in records if r.output_ref in invalidated}
        ),
        "commits": _consuming_commits(repo, invalidated),
        "branches": affected_branches,
    }


def trace_forensics(repo, trace_id: str) -> dict:
    """Everything one traced request executed or reused, as a DAG whose
    nodes are the *events* of that trace (so node count equals executed
    plus reused checkpoints for the request)."""
    trace_records = _ledger_of(repo).by_trace(trace_id)
    if not trace_records:
        raise LineageNotFoundError(f"no lineage recorded for trace {trace_id!r}")
    produced: dict[str, list[int]] = {}
    for index, record in enumerate(trace_records):
        produced.setdefault(record.output_ref, []).append(index)
    edges = []
    for index, record in enumerate(trace_records):
        for parent_ref in record.input_refs:
            for parent_index in produced.get(parent_ref, ()):
                edges.append([parent_index, index])
    return {
        "trace_id": trace_id,
        "nodes": [lineage_record_to_dict(r) for r in trace_records],
        "edges": edges,
        "executed": sum(1 for r in trace_records if r.via == "executed"),
        "reused": sum(1 for r in trace_records if r.via == "reused"),
    }


def trace_critical_path(
    repo, trace_id: str, spans=None, tracer=None
) -> dict:
    """Performance forensics for one trace: *when* joined to *what*.

    The span tree answers where the wall time went (the critical path,
    per-step self time); the lineage ledger answers what work the time
    bought (executed vs reused stage seconds). ``spans`` supplies the
    finished span dicts directly; otherwise they are read from
    ``tracer`` (default: the installed tracer). Ledger records are
    optional — a trace with spans but no lineage (a plain fetch) still
    analyzes — but a trace with *neither* raises
    :class:`LineageNotFoundError`, typed like every other unknown-trace
    query.
    """
    from ..obs import critical_path as obs_cp
    from ..obs import trace as obs_trace

    if spans is None:
        source = tracer if tracer is not None else obs_trace.default_tracer()
        spans = source.finished()
    selected = [s for s in spans if s.get("trace_id") == trace_id]
    try:
        forensics = trace_forensics(repo, trace_id)
    except LineageNotFoundError:
        forensics = None
    if not selected and forensics is None:
        raise LineageNotFoundError(
            f"no spans or lineage recorded for trace {trace_id!r}"
        )
    result = obs_cp.critical_path(
        selected, lineage_records=(forensics or {}).get("nodes")
    )
    result["trace_id"] = trace_id
    result["forensics"] = forensics
    return result
