"""Append-only lineage ledger: who produced what, from what, and when.

Every checkpoint *event* — a stage executed into the store, or a stage
reused out of it (including single-flight joins) — appends one
:class:`LineageRecord` to the repository's :class:`LineageLedger`. The
ledger is the provenance counterpart of the checkpoint index: the index
says *what is archived*, the ledger says *how it got there* (component
identity and version, the exact upstream artifact refs consumed, the run
seed, wall/CPU cost, and — when a span was active — the trace/span ids
that join the event to the request that caused it).

Capture follows Grafberger's instrumentation angle: lineage falls out of
execution as a side effect, at near-zero cost, and is assembled into a
queryable DAG only on demand (:mod:`repro.provenance.queries`).

Invariants (see ``docs/invariants.md``):

* **append-only** — records are never deleted. GC marks records for
  swept checkpoints ``collected`` instead of dropping them; the audit
  trail of an artifact outlives the artifact.
* exactly two amendments are allowed after append, both monotonic:
  ``commit_id``/``branch`` are back-filled once when a commit adopts the
  run's outputs, and ``collected`` flips False→True when the referenced
  checkpoint is swept. Every other field is immutable.
* records are emitted in **topological stage order per run**, by both
  executors, so the ledger is bit-identical (modulo timing) between
  `Executor` and `ParallelExecutor` for any worker count.

Concurrency: one small mutex guards the record list, the dedup set and
the secondary indexes; ``revision`` increments on every mutation and is
the staleness token response caches key on (the same contract as
:class:`repro.core.checkpoint.CheckpointStore`). Nothing blocking runs
under the lock.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace

from ..obs.trace import current_span

#: ``via`` values a record can carry: the stage ran, or an archived
#: output was adopted (direct lookup hit, single-flight join, or
#: flight-level re-check hit — all reuses from the ledger's viewpoint).
EXECUTED = "executed"
REUSED = "reused"

VIA_VALUES = (EXECUTED, REUSED)


@dataclass(frozen=True)
class LineageRecord:
    """One checkpoint event: a stage's output entering (or being adopted
    from) the archive.

    Timing fields (``wall_seconds``/``cpu_seconds``) and the GC
    annotation (``collected``) are excluded from equality/hash — two
    records are *the same event* if everything else matches, which is
    what sync-import dedup and the executor differential tests compare.
    """

    checkpoint_key: str
    stage: str
    pipeline: str
    component_id: str
    component_fingerprint: str
    component_version: str
    params_digest: str
    input_refs: tuple[str, ...]
    output_ref: str
    seed: int
    trace_id: str
    span_id: str
    tenant: str
    via: str
    wall_seconds: float = field(default=0.0, compare=False)
    cpu_seconds: float = field(default=0.0, compare=False)
    commit_id: str = ""
    branch: str = ""
    collected: bool = field(default=False, compare=False)


def lineage_record_to_dict(record: LineageRecord) -> dict:
    """Dict codec shared by the on-disk ``lineage.json`` and the wire
    (schema-additive ``lineage`` pack key); see ``record_to_dict`` in
    :mod:`repro.core.persistence` for the pattern."""
    return {
        "checkpoint_key": record.checkpoint_key,
        "stage": record.stage,
        "pipeline": record.pipeline,
        "component_id": record.component_id,
        "component_fingerprint": record.component_fingerprint,
        "component_version": record.component_version,
        "params_digest": record.params_digest,
        "input_refs": list(record.input_refs),
        "output_ref": record.output_ref,
        "seed": record.seed,
        "trace_id": record.trace_id,
        "span_id": record.span_id,
        "tenant": record.tenant,
        "via": record.via,
        "wall_seconds": record.wall_seconds,
        "cpu_seconds": record.cpu_seconds,
        "commit_id": record.commit_id,
        "branch": record.branch,
        "collected": record.collected,
    }


def lineage_record_from_dict(entry: dict) -> LineageRecord:
    return LineageRecord(
        checkpoint_key=entry["checkpoint_key"],
        stage=entry["stage"],
        pipeline=entry["pipeline"],
        component_id=entry["component_id"],
        component_fingerprint=entry["component_fingerprint"],
        component_version=entry["component_version"],
        params_digest=entry["params_digest"],
        input_refs=tuple(entry["input_refs"]),
        output_ref=entry["output_ref"],
        seed=entry["seed"],
        trace_id=entry["trace_id"],
        span_id=entry["span_id"],
        tenant=entry["tenant"],
        via=entry["via"],
        wall_seconds=entry.get("wall_seconds", 0.0),
        cpu_seconds=entry.get("cpu_seconds", 0.0),
        commit_id=entry.get("commit_id", ""),
        branch=entry.get("branch", ""),
        collected=bool(entry.get("collected", False)),
    )


class LineageLedger:
    """Per-repository append-only store of :class:`LineageRecord`\\ s.

    Local runs :meth:`append` (never deduplicated — a warm re-run is a
    new reuse event); remote sync :meth:`import_record`\\ s (idempotent,
    so records pushed and pulled back do not double). ``revision`` is
    the cache staleness token, mirroring the checkpoint store.
    """

    def __init__(self, tenant: str = ""):
        self._lock = threading.Lock()
        self._records: list[LineageRecord] = []
        #: identities already held (dataclass eq/hash, timing excluded);
        #: import-side dedup only — local appends always land.
        self._seen: set[LineageRecord] = set()
        self._by_output: dict[str, list[int]] = {}
        self._by_commit: dict[str, list[int]] = {}
        self._by_trace: dict[str, list[int]] = {}
        self.revision = 0
        #: stamped onto records appended by local runs; a hub hosting
        #: this repo sets it so hub-side executions carry their tenant.
        self.tenant = tenant
        #: registry counter child mirroring appends+imports (see
        #: :meth:`bind_registry`); None (the default) mirrors nowhere.
        self._mirror = None

    # ------------------------------------------------------------ metrics
    def bind_registry(self, registry, tenant: str = "-", repo: str = "-"):
        """Mirror record arrivals into ``registry`` as a per-tenant/repo
        ``repro_lineage_records_total`` series (the pattern of
        :meth:`repro.storage.accounting.StorageStats.bind_registry`).
        Binding to the null registry unbinds. Returns ``self``."""
        from ..obs.metrics import NULL_METRIC

        child = registry.counter(
            "repro_lineage_records_total",
            "Lineage records appended or imported into the ledger.",
            labels=("tenant", "repo"),
        ).labels(tenant=str(tenant), repo=str(repo))
        self._mirror = None if child is NULL_METRIC else child
        return self

    # ------------------------------------------------------------- access
    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def records(self) -> tuple[LineageRecord, ...]:
        """Snapshot of every record, append order (oldest first)."""
        with self._lock:
            return tuple(self._records)

    def outputs(self) -> set[str]:
        """Every output ref the ledger has seen produced or adopted."""
        with self._lock:
            return set(self._by_output)

    def rows_for_output(self, ref: str) -> tuple[LineageRecord, ...]:
        with self._lock:
            return tuple(self._records[i] for i in self._by_output.get(ref, ()))

    def by_trace(self, trace_id: str) -> tuple[LineageRecord, ...]:
        """Records stamped with ``trace_id``, append order — one traced
        request's execution forensics."""
        with self._lock:
            return tuple(self._records[i] for i in self._by_trace.get(trace_id, ()))

    def records_for_commits(self, commit_ids) -> list[LineageRecord]:
        """Records back-filled with one of ``commit_ids`` (what rides a
        push/fetch pack alongside those commits), append order."""
        wanted = set(commit_ids)
        with self._lock:
            rows = sorted(
                row for cid in wanted for row in self._by_commit.get(cid, ())
            )
            return [self._records[row] for row in rows]

    def collected_count(self) -> int:
        with self._lock:
            return sum(1 for r in self._records if r.collected)

    # ------------------------------------------------------------ mutation
    def _index_locked(self, row: int, record: LineageRecord) -> None:
        self._seen.add(record)
        self._by_output.setdefault(record.output_ref, []).append(row)
        if record.commit_id:
            self._by_commit.setdefault(record.commit_id, []).append(row)
        if record.trace_id:
            self._by_trace.setdefault(record.trace_id, []).append(row)

    def append(self, record: LineageRecord) -> int:
        """Append one event; returns its row index. Never deduplicates —
        every run's reuse is its own event."""
        with self._lock:
            row = len(self._records)
            self._records.append(record)
            self._index_locked(row, record)
            self.revision += 1
        if self._mirror is not None:
            self._mirror.inc()
        return row

    def record_run(self, instance, report, refs: dict, seed: int = 0) -> tuple[int, ...]:
        """Append one record per non-failed stage of a finished run.

        Called by both executors *after* stage processing, walking
        ``report.stage_reports`` — which both build in topological order
        trimmed to the failure prefix — so ledger order is independent
        of execution interleaving (the bit-identity contract). ``refs``
        maps each stage to its settled output ref; predecessors' refs
        become the record's ``input_refs``. Trace/span ids are read from
        the ambient span of the *calling* thread of control, where both
        executors assemble their reports.
        """
        span = current_span()
        trace_id = (span.trace_id if span is not None else None) or ""
        span_id = (span.span_id if span is not None else None) or ""
        rows = []
        for stage_report in report.stage_reports:
            if stage_report.failed or not stage_report.output_ref:
                continue
            stage = stage_report.stage
            component = instance.component(stage)
            preds = instance.spec.predecessors(stage)
            record = LineageRecord(
                checkpoint_key=stage_report.checkpoint_key,
                stage=stage,
                pipeline=report.pipeline,
                component_id=component.identifier,
                component_fingerprint=component.fingerprint,
                component_version=component.version.full,
                params_digest=component.params_digest,
                input_refs=tuple(refs[p] for p in preds),
                output_ref=stage_report.output_ref,
                seed=seed,
                trace_id=trace_id,
                span_id=span_id,
                tenant=self.tenant,
                via=REUSED if stage_report.reused else EXECUTED,
                wall_seconds=stage_report.run_seconds,
                cpu_seconds=stage_report.cpu_seconds,
            )
            rows.append(self.append(record))
        return tuple(rows)

    def annotate_commit(self, commit_id: str, branch: str, rows) -> None:
        """Back-fill the adopting commit onto the given rows (once: a row
        already bound to a commit is left alone)."""
        with self._lock:
            changed = False
            for row in rows:
                record = self._records[row]
                if record.commit_id:
                    continue
                amended = replace(record, commit_id=commit_id, branch=branch)
                self._records[row] = amended
                self._seen.add(amended)
                self._by_commit.setdefault(commit_id, []).append(row)
                changed = True
            if changed:
                self.revision += 1

    def mark_collected(self, live_refs) -> int:
        """Flag records whose output no longer exists (GC swept it).

        The records themselves are retained — provenance of an artifact
        survives the artifact. Returns how many records were newly
        flagged."""
        with self._lock:
            flagged = 0
            for row, record in enumerate(self._records):
                if record.collected or record.output_ref in live_refs:
                    continue
                self._records[row] = replace(record, collected=True)
                flagged += 1
            if flagged:
                self.revision += 1
        return flagged

    def import_record(self, record: LineageRecord) -> bool:
        """Adopt a record from a peer (push/fetch) or from disk;
        idempotent — returns False when the event is already held."""
        with self._lock:
            if record in self._seen:
                return False
            row = len(self._records)
            self._records.append(record)
            self._index_locked(row, record)
            self.revision += 1
        if self._mirror is not None:
            self._mirror.inc()
        return True

    def import_entries(self, entries) -> int:
        """Import dict-codec entries (the pack/disk form); returns how
        many were new."""
        imported = 0
        for entry in entries:
            if self.import_record(lineage_record_from_dict(entry)):
                imported += 1
        return imported

    # -------------------------------------------------------- persistence
    def to_payload(self) -> dict:
        return {"records": [lineage_record_to_dict(r) for r in self.records()]}

    def load_payload(self, payload: dict) -> int:
        return self.import_entries(payload.get("records", []))
