"""Provenance subsystem: checkpoint-level lineage capture and queries.

The ledger (:mod:`repro.provenance.ledger`) captures one record per
checkpoint event as a side effect of execution; the query layer
(:mod:`repro.provenance.queries`) assembles the records into lineage
DAGs, audit answers, and what-if impact sets on demand. See ROADMAP
item 5 and ``docs/observability.md``.
"""

from .ledger import (
    EXECUTED,
    REUSED,
    LineageLedger,
    LineageRecord,
    lineage_record_from_dict,
    lineage_record_to_dict,
)
from .queries import (
    consumers_of,
    impact_of,
    lineage_of,
    resolve_output_ref,
    trace_forensics,
)

__all__ = [
    "EXECUTED",
    "REUSED",
    "LineageLedger",
    "LineageRecord",
    "lineage_record_from_dict",
    "lineage_record_to_dict",
    "consumers_of",
    "impact_of",
    "lineage_of",
    "resolve_output_ref",
    "trace_forensics",
]
