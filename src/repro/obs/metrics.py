"""Thread-safe metrics registry: counters, gauges, histograms with labels.

The operational-signal half of :mod:`repro.obs`. A
:class:`MetricsRegistry` holds metric *families* (one per metric name);
each family holds one child series per distinct label-value set
(``tenant``/``repo``/``op``...). Everything is guarded by a single
registry lock, so N threads hammering one counter land exact totals and
a scrape (:meth:`MetricsRegistry.render_prometheus`) observes a
consistent cut — never a torn histogram where ``_count`` disagrees with
the bucket sums.

Cardinality is bounded per family: once ``max_label_sets`` distinct
label-value sets exist, further *new* sets collapse into one overflow
series (every label valued :data:`OVERFLOW_VALUE`) instead of growing
the registry without limit — a hub must survive a client that invents a
fresh repo name per request.

Null default: instrumented library code (scheduler, single-flight,
transports, storage accounting) resolves its registry through
:func:`default_registry`, which returns :data:`NULL_REGISTRY` — whose
metrics are shared no-op singletons — unless an operator called
:func:`install`. The uninstrumented hot path therefore costs one
attribute lookup and an empty method call, nothing more. Serving layers
(``serve()``, :class:`~repro.hub.hub.RepositoryHub`) construct a real
registry by default instead: an endpoint that exposes ``GET /metrics``
should have something to say.
"""

from __future__ import annotations

import math
import threading

#: Label value every overflowed series reports under (see the module
#: docstring on cardinality).
OVERFLOW_VALUE = "~overflow"

#: Latency buckets (seconds): sub-millisecond cache hits through
#: multi-second cold fetches.
DEFAULT_SECONDS_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Size buckets (bytes): tiny metadata RPCs through full pack windows.
DEFAULT_BYTES_BUCKETS = (
    256, 1024, 4096, 16384, 65536, 262144,
    1048576, 4194304, 16777216, 67108864,
)


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class _Child:
    """One series: a fixed label-value set plus its state."""

    __slots__ = ("_lock", "label_values")

    def __init__(self, lock: threading.RLock, label_values: tuple[str, ...]):
        self._lock = lock
        self.label_values = label_values


class CounterChild(_Child):
    __slots__ = ("value",)

    def __init__(self, lock, label_values):
        super().__init__(lock, label_values)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self.value += amount


class GaugeChild(_Child):
    __slots__ = ("value",)

    def __init__(self, lock, label_values):
        super().__init__(lock, label_values)
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount


class HistogramChild(_Child):
    __slots__ = ("buckets", "bucket_counts", "count", "sum")

    def __init__(self, lock, label_values, buckets: tuple[float, ...]):
        super().__init__(lock, label_values)
        self.buckets = buckets
        self.bucket_counts = [0] * (len(buckets) + 1)  # + the +Inf bucket
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    return
            self.bucket_counts[-1] += 1


class MetricFamily:
    """All series of one metric name; label-keyed child factory.

    When declared with no labels the family doubles as its own single
    child: ``registry.counter("x").inc()`` works without a ``labels()``
    hop.
    """

    kind = "untyped"

    def __init__(self, registry, name, help_text, label_names, **child_kwargs):
        self.registry = registry
        self.name = name
        self.help = help_text
        self.label_names = tuple(label_names)
        self._child_kwargs = child_kwargs
        self._children: dict[tuple[str, ...], _Child] = {}
        self.overflowed = 0
        if not self.label_names:
            self.labels()  # materialize the single unlabelled series

    def labels(self, **label_values) -> _Child:
        if set(label_values) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(label_values))}"
            )
        key = tuple(str(label_values[n]) for n in self.label_names)
        with self.registry._lock:
            child = self._children.get(key)
            if child is None:
                if (
                    key != ()
                    and len(self._children) >= self.registry.max_label_sets
                ):
                    self.overflowed += 1
                    key = (OVERFLOW_VALUE,) * len(self.label_names)
                    child = self._children.get(key)
                    if child is not None:
                        return child
                child = self._make_child(key)
                self._children[key] = child
            return child

    def _make_child(self, key):
        raise NotImplementedError

    # Unlabelled convenience: delegate to the single child.
    def _single(self) -> _Child:
        if self.label_names:
            raise ValueError(
                f"metric {self.name!r} is labelled {self.label_names}; "
                "resolve a series with .labels(...) first"
            )
        return self._children[()]

    def children(self) -> list[_Child]:
        with self.registry._lock:
            return list(self._children.values())


class CounterFamily(MetricFamily):
    kind = "counter"

    def _make_child(self, key):
        return CounterChild(self.registry._lock, key)

    def inc(self, amount: float = 1.0) -> None:
        self._single().inc(amount)

    @property
    def value(self) -> float:
        return self._single().value


class GaugeFamily(MetricFamily):
    kind = "gauge"

    def _make_child(self, key):
        return GaugeChild(self.registry._lock, key)

    def set(self, value: float) -> None:
        self._single().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._single().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._single().dec(amount)

    @property
    def value(self) -> float:
        return self._single().value


class HistogramFamily(MetricFamily):
    kind = "histogram"

    def _make_child(self, key):
        return HistogramChild(
            self.registry._lock, key, self._child_kwargs["buckets"]
        )

    def observe(self, value: float) -> None:
        self._single().observe(value)


class MetricsRegistry:
    """Registry of metric families; the unit of exposition.

    Declaring the same name twice returns the existing family (so every
    layer can declare what it uses without coordination) — but a
    conflicting redeclaration (different kind or label names) raises,
    because two writers disagreeing about a series' shape is a bug worth
    hearing about.
    """

    def __init__(self, max_label_sets: int = 256):
        self.max_label_sets = max(1, max_label_sets)
        self._lock = threading.RLock()
        self._families: dict[str, MetricFamily] = {}

    def _declare(self, cls, name, help_text, label_names, **kwargs):
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if not isinstance(family, cls) or family.label_names != tuple(
                    label_names
                ):
                    raise ValueError(
                        f"metric {name!r} already declared as "
                        f"{family.kind} with labels {family.label_names}"
                    )
                return family
            family = cls(self, name, help_text, label_names, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name, help_text="", labels=()) -> CounterFamily:
        return self._declare(CounterFamily, name, help_text, labels)

    def gauge(self, name, help_text="", labels=()) -> GaugeFamily:
        return self._declare(GaugeFamily, name, help_text, labels)

    def histogram(
        self, name, help_text="", labels=(), buckets=DEFAULT_SECONDS_BUCKETS
    ) -> HistogramFamily:
        return self._declare(
            HistogramFamily, name, help_text, labels, buckets=tuple(buckets)
        )

    # --------------------------------------------------------- exposition
    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (v0.0.4).

        Rendered under the registry lock: a scrape racing a storm of
        writers sees a consistent cut, and histogram ``_count`` always
        equals the ``+Inf`` bucket.
        """
        out: list[str] = []
        with self._lock:
            for name in sorted(self._families):
                family = self._families[name]
                if family.help:
                    out.append(f"# HELP {name} {family.help}")
                out.append(f"# TYPE {name} {family.kind}")
                for key in sorted(family._children):
                    child = family._children[key]
                    labels = _render_labels(family.label_names, key)
                    if family.kind == "histogram":
                        cumulative = 0
                        bounds = [*child.buckets, math.inf]
                        for bound, n in zip(bounds, child.bucket_counts):
                            cumulative += n
                            le = _render_labels(
                                (*family.label_names, "le"),
                                (*key, _format_value(float(bound))),
                            )
                            out.append(f"{name}_bucket{le} {cumulative}")
                        out.append(f"{name}_sum{labels} {child.sum:.9g}")
                        out.append(f"{name}_count{labels} {child.count}")
                    else:
                        out.append(
                            f"{name}{labels} {_format_value(child.value)}"
                        )
        return "\n".join(out) + "\n" if out else ""

    def snapshot(self) -> dict:
        """Plain-dict copy of every series (for JSON dumps and tests)."""
        result: dict[str, dict] = {}
        with self._lock:
            for name, family in self._families.items():
                series = []
                for key, child in sorted(family._children.items()):
                    labels = dict(zip(family.label_names, key))
                    if family.kind == "histogram":
                        series.append(
                            {
                                "labels": labels,
                                "count": child.count,
                                "sum": child.sum,
                            }
                        )
                    else:
                        series.append({"labels": labels, "value": child.value})
                result[name] = {"type": family.kind, "series": series}
        return result

    def value(self, name: str, **label_values) -> float:
        """The current value of one counter/gauge series (0 if absent)."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return 0.0
            key = tuple(str(label_values[n]) for n in family.label_names)
            child = family._children.get(key)
            return child.value if child is not None else 0.0

    def series(self, name: str) -> list[dict]:
        """Every series of one family, with full per-series state.

        Unlike :meth:`snapshot`, histograms come back with their bucket
        bounds and per-bucket counts — the raw material the health model
        (:mod:`repro.obs.health`) interpolates percentiles from. Copied
        under the registry lock, so a caller never observes a torn
        histogram. Unknown families answer ``[]``.
        """
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return []
            out = []
            for key, child in family._children.items():
                labels = dict(zip(family.label_names, key))
                if family.kind == "histogram":
                    out.append(
                        {
                            "labels": labels,
                            "buckets": child.buckets,
                            "bucket_counts": list(child.bucket_counts),
                            "count": child.count,
                            "sum": child.sum,
                        }
                    )
                else:
                    out.append({"labels": labels, "value": child.value})
            return out


def _render_labels(names, values) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{n}="{_escape_label_value(str(v))}"' for n, v in zip(names, values)
    )
    return "{" + pairs + "}"


# --------------------------------------------------------------- null layer
class _NullMetric:
    """Shared no-op child/family: every mutator is a pass, ``labels()``
    returns itself. One instance serves every uninstrumented call site."""

    __slots__ = ()

    def labels(self, **label_values):
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0


NULL_METRIC = _NullMetric()


class NullRegistry:
    """Registry-shaped no-op; the module default until :func:`install`."""

    max_label_sets = 0

    def counter(self, name, help_text="", labels=()):
        return NULL_METRIC

    def gauge(self, name, help_text="", labels=()):
        return NULL_METRIC

    def histogram(self, name, help_text="", labels=(), buckets=()):
        return NULL_METRIC

    def render_prometheus(self) -> str:
        return ""

    def snapshot(self) -> dict:
        return {}

    def value(self, name, **label_values) -> float:
        return 0.0

    def series(self, name) -> list[dict]:
        return []


NULL_REGISTRY = NullRegistry()

_default: MetricsRegistry | NullRegistry = NULL_REGISTRY


def install(registry: MetricsRegistry):
    """Make ``registry`` the process-wide default (returns it)."""
    global _default
    _default = registry
    return registry


def uninstall() -> None:
    """Restore the no-op default."""
    global _default
    _default = NULL_REGISTRY


def default_registry():
    """The installed registry, or :data:`NULL_REGISTRY` when none is."""
    return _default
