"""Critical-path analysis over finished trace trees.

Input is what :meth:`Tracer.finished`/:meth:`drain` produce — span
dicts sharing a ``trace_id`` — and the question is the performance one:
*which chain of spans bounds this request's wall time?* The analyzer
rebuilds the tree from parent links and walks, at every node, into the
child whose interval ends last: the resulting root-to-leaf chain is the
sequence of operations the request could not finish before, i.e. the
thing to make faster. Per node it reports self time (the node's
duration not covered by its children — work the span did itself, lock
waits included) so a fat parent with thin children reads differently
from a thin wrapper over a fat child.

A trace that spans the wire has *partial* trees on each side: a
server-side span whose parent lives in the client process roots its own
subtree here (the parent id is kept, so a joined view can stitch the
sides back together). The analyzer picks the longest root when asked
for one chain.

For merge-search traces the executed-vs-reused attribution joins the
lineage ledger's records for the same trace: how much recorded stage
wall time was real execution versus checkpoint adoption — Tupleware's
substrate-gap question asked of one request.
"""

from __future__ import annotations


def build_trace_tree(spans: list[dict]) -> list[dict]:
    """Nest spans into trees: each node is ``{span, children}``.

    Returns the roots (parent absent from the span set), children
    ordered by start time. Spans lacking ids are ignored.
    """
    nodes = {
        span["span_id"]: {"span": span, "children": []}
        for span in spans
        if span.get("span_id")
    }
    roots: list[dict] = []
    for node in nodes.values():
        parent = node["span"].get("parent_id")
        if parent is not None and parent in nodes:
            nodes[parent]["children"].append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node["children"].sort(key=lambda n: n["span"].get("start") or 0.0)
    roots.sort(key=lambda n: n["span"].get("start") or 0.0)
    return roots


def _end_of(node: dict) -> float:
    span = node["span"]
    return (span.get("start") or 0.0) + (span.get("seconds") or 0.0)


def _chain_of(root: dict) -> list[dict]:
    """Root-to-leaf chain following, at each step, the child whose
    interval ends last — the blocking chain of the subtree."""
    chain = [root]
    node = root
    while node["children"]:
        node = max(node["children"], key=_end_of)
        chain.append(node)
    return chain


def _path_entry(node: dict, root_start: float) -> dict:
    span = node["span"]
    seconds = span.get("seconds") or 0.0
    child_seconds = sum(
        child["span"].get("seconds") or 0.0 for child in node["children"]
    )
    return {
        "name": span.get("name"),
        "span_id": span.get("span_id"),
        "seconds": seconds,
        "self_seconds": max(0.0, seconds - child_seconds),
        "offset_seconds": max(0.0, (span.get("start") or 0.0) - root_start),
        "status": span.get("status"),
        "attrs": dict(span.get("attrs") or {}),
    }


def attribute_executed_reused(lineage_records: list[dict]) -> dict:
    """Executed-vs-reused wall-time attribution from ledger records
    (dict form, as ``lineage_record_to_dict`` emits them)."""
    executed = [r for r in lineage_records if r.get("via") == "executed"]
    reused = [r for r in lineage_records if r.get("via") == "reused"]

    def _seconds(records):
        return sum(float(r.get("wall_seconds") or 0.0) for r in records)

    return {
        "executed": len(executed),
        "reused": len(reused),
        "executed_seconds": _seconds(executed),
        "reused_seconds": _seconds(reused),
    }


def critical_path(spans: list[dict], lineage_records=None) -> dict:
    """The longest blocking chain of one trace, plus attribution.

    ``spans`` should share one trace id (extra traces are filtered to
    the id of the longest root). ``lineage_records`` (optional, dict
    form) adds the executed-vs-reused breakdown for merge traces.
    """
    roots = build_trace_tree(spans)
    if not roots:
        return {
            "trace_id": None,
            "spans": 0,
            "path": [],
            "total_seconds": 0.0,
            "bounded_by": None,
        }
    root = max(roots, key=lambda n: n["span"].get("seconds") or 0.0)
    trace_id = root["span"].get("trace_id")
    root_start = root["span"].get("start") or 0.0
    chain = _chain_of(root)
    path = [_path_entry(node, root_start) for node in chain]
    bottleneck = max(path, key=lambda entry: entry["self_seconds"])
    result = {
        "trace_id": trace_id,
        "spans": sum(1 for s in spans if s.get("trace_id") == trace_id),
        "roots": [r["span"].get("name") for r in roots],
        "total_seconds": root["span"].get("seconds") or 0.0,
        "path": path,
        "bounded_by": bottleneck["name"],
        "bounded_by_self_seconds": bottleneck["self_seconds"],
    }
    if lineage_records:
        result["attribution"] = attribute_executed_reused(lineage_records)
    return result


def render_critical_path(result: dict) -> str:
    """Human rendering of a :func:`critical_path` result: one line per
    chain step, indented, with total/self milliseconds."""
    lines = [
        f"trace {result.get('trace_id') or '?'}: "
        f"{result.get('spans', 0)} span(s), "
        f"{(result.get('total_seconds') or 0.0) * 1000:.2f} ms total, "
        f"bounded by {result.get('bounded_by') or '?'} "
        f"({(result.get('bounded_by_self_seconds') or 0.0) * 1000:.2f} ms self)"
    ]
    for depth, entry in enumerate(result.get("path", [])):
        lines.append(
            f"{'  ' * depth}{entry['name']}  "
            f"{entry['seconds'] * 1000:.2f} ms "
            f"(self {entry['self_seconds'] * 1000:.2f} ms)"
        )
    attribution = result.get("attribution")
    if attribution:
        lines.append(
            f"stage time: {attribution['executed_seconds'] * 1000:.1f} ms "
            f"executed across {attribution['executed']} stage(s), "
            f"{attribution['reused_seconds'] * 1000:.1f} ms saved-equivalent "
            f"across {attribution['reused']} reuse(s)"
        )
    return "\n".join(lines)


__all__ = [
    "attribute_executed_reused",
    "build_trace_tree",
    "critical_path",
    "render_critical_path",
]
