"""Slow-op capture: a forensic snapshot when an operation blows its
latency budget.

Metrics say *that* an op was slow; a capture says *why*: when a handled
operation exceeds its per-op threshold, the server snapshots

* the finished **span tree** of the request's trace (lock waits, chunk
  imports, admission — the request's own account of its time), and
* the live **thread stacks** of the whole process
  (:func:`repro.obs.profiler.snapshot_stacks` — what everyone else was
  doing, i.e. what the slow op was most likely blocked on),

into a bounded ring (newest kept). Captures surface over
``GET /debug/slow``, the ``trace`` RPC op, and the ``stats`` readout.

The check runs at op *completion* — the only point where the duration
is a fact rather than a watchdog guess — so the thread stacks show the
process as the slow op ended: contention that outlived the op is caught
red-handed, contention that ended earlier shows up in the span tree's
lock spans instead. The two views are deliberately complementary.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from . import profiler as obs_profiler

#: Per-op default latency budgets (seconds). Writes move content and
#: get generous budgets; metadata reads are expected to be instant.
DEFAULT_SLOW_OP_SECONDS = 1.0
DEFAULT_OP_THRESHOLDS = {
    "push": 5.0,
    "put_chunks": 5.0,
    "fetch": 2.0,
    "get_chunks": 2.0,
}


class SlowOpCapture:
    """Bounded ring of forensic snapshots of over-budget operations.

    ``thresholds`` overrides/extends the per-op defaults;
    ``default_seconds`` is the budget for unlisted ops (None disables
    capture for them); ``max_captures`` bounds memory — a misconfigured
    threshold cannot turn the capture ring into a span archive.
    """

    def __init__(
        self,
        thresholds: dict[str, float] | None = None,
        default_seconds: float | None = DEFAULT_SLOW_OP_SECONDS,
        max_captures: int = 32,
        max_spans_per_capture: int = 256,
    ):
        self.thresholds = dict(DEFAULT_OP_THRESHOLDS)
        self.thresholds.update(thresholds or {})
        self.default_seconds = default_seconds
        self.max_spans_per_capture = max_spans_per_capture
        self._lock = threading.Lock()
        self._captures: deque[dict] = deque(maxlen=max(1, max_captures))
        self.observed = 0
        self.captured = 0

    def threshold_for(self, op: str) -> float | None:
        return self.thresholds.get(op, self.default_seconds)

    def observe(
        self,
        op: str,
        seconds: float,
        tracer=None,
        trace_id: str | None = None,
        **context,
    ) -> dict | None:
        """Check one completed op against its budget; capture if slow.

        ``tracer``/``trace_id`` locate the request's finished spans for
        the snapshot; ``context`` (tenant, repo, ...) is recorded
        verbatim. Returns the capture dict, or None when under budget.
        """
        with self._lock:
            self.observed += 1
        threshold = self.threshold_for(op)
        if threshold is None or seconds < threshold:
            return None
        spans: list[dict] = []
        if tracer is not None and trace_id:
            spans = [
                span
                for span in tracer.finished()
                if span.get("trace_id") == trace_id
            ][-self.max_spans_per_capture:]
        capture = {
            "op": op,
            "seconds": seconds,
            "threshold": threshold,
            "ts": time.time(),
            "trace_id": trace_id,
            "spans": spans,
            "stacks": obs_profiler.snapshot_stacks(),
            **context,
        }
        with self._lock:
            self._captures.append(capture)
            self.captured += 1
        return capture

    def captures(self) -> list[dict]:
        """Retained captures, oldest first."""
        with self._lock:
            return list(self._captures)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "observed": self.observed,
                "captured": self.captured,
                "retained": len(self._captures),
                "default_seconds": self.default_seconds,
            }


__all__ = [
    "DEFAULT_OP_THRESHOLDS",
    "DEFAULT_SLOW_OP_SECONDS",
    "SlowOpCapture",
]
