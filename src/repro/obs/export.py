"""Span export: a bounded background pipeline from tracer to collector.

Finished spans are handed to :meth:`SpanExporter.export` (wire it as the
tracer's ``on_span``), filtered by an :class:`ExportPolicy`, queued, and
flushed by one daemon thread as JSON lines — to a file sink, an HTTP
collector endpoint, or any callable. The hot path (a request finishing
a span) pays one policy check and one bounded-deque append; everything
that can block (disk, sockets) happens on the exporter thread.

Keep/drop semantics compose three signals:

* **head sampling** — the span's ``sampled`` flag, decided once at the
  trace root (deterministically from the trace id, see
  :class:`repro.obs.trace.Tracer`) and propagated across the wire, so
  client and server export the same subset;
* **always-sample on error** — a span with ``status="error"`` is kept
  regardless, because the traces worth money are the ones that failed;
* **always-sample on latency** — a span slower than its per-op
  threshold (``slow_op_seconds`` keyed by the span's ``op`` attribute
  or name, with a default) is kept regardless, the export-side twin of
  slow-op capture.

The queue is bounded and *lossy by design*: when the collector cannot
keep up, the oldest queued spans are dropped and counted
(``dropped``) — telemetry backpressure must never become request
backpressure.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from urllib.parse import urlparse


class ExportPolicy:
    """Which finished spans are worth exporting.

    ``slow_op_seconds`` maps an op name (the span's ``op`` attribute,
    falling back to the span name) to its latency threshold;
    ``default_slow_seconds`` applies to everything unlisted (None
    disables the latency override for unlisted ops).
    """

    def __init__(
        self,
        slow_op_seconds: dict[str, float] | None = None,
        default_slow_seconds: float | None = None,
        keep_errors: bool = True,
    ):
        self.slow_op_seconds = dict(slow_op_seconds or {})
        self.default_slow_seconds = default_slow_seconds
        self.keep_errors = keep_errors

    def threshold_for(self, op: str | None) -> float | None:
        if op is not None and op in self.slow_op_seconds:
            return self.slow_op_seconds[op]
        return self.default_slow_seconds

    def keep(self, span: dict) -> bool:
        if span.get("sampled", True):
            return True
        if self.keep_errors and span.get("status") == "error":
            return True
        op = span.get("attrs", {}).get("op") or span.get("name")
        threshold = self.threshold_for(op)
        seconds = span.get("seconds")
        return (
            threshold is not None
            and seconds is not None
            and seconds >= threshold
        )


class FileSpanSink:
    """Appends spans as JSON lines to a file (opened per flush, so the
    file can be rotated away between flushes without a stale handle)."""

    def __init__(self, path: str):
        self.path = path

    def __call__(self, spans: list[dict]) -> None:
        with open(self.path, "a", encoding="utf-8") as fh:
            for span in spans:
                fh.write(json.dumps(span, sort_keys=True) + "\n")


class HttpSpanSink:
    """POSTs each flush batch as one ``application/x-ndjson`` body.

    Stdlib-only (http.client), one short-lived connection per flush —
    exporter traffic is batched and rare, so connection reuse is not
    worth a pooling state machine here. Collector errors raise; the
    exporter counts the batch as dropped and keeps serving.
    """

    def __init__(self, url: str, timeout: float = 5.0):
        parsed = urlparse(url)
        if parsed.scheme not in ("http", "https") or not parsed.netloc:
            raise ValueError(f"collector URL must be http(s)://, got {url!r}")
        self.url = url
        self._parsed = parsed
        self.timeout = timeout

    def __call__(self, spans: list[dict]) -> None:
        import http.client

        body = "\n".join(
            json.dumps(span, sort_keys=True) for span in spans
        ).encode("utf-8")
        cls = (
            http.client.HTTPSConnection
            if self._parsed.scheme == "https"
            else http.client.HTTPConnection
        )
        conn = cls(self._parsed.netloc, timeout=self.timeout)
        try:
            conn.request(
                "POST",
                self._parsed.path or "/",
                body=body,
                headers={"Content-Type": "application/x-ndjson"},
            )
            response = conn.getresponse()
            response.read()
            if response.status >= 400:
                raise OSError(
                    f"collector answered HTTP {response.status} for "
                    f"{len(spans)} spans"
                )
        finally:
            conn.close()


def sink_for(destination: str):
    """A sink from a CLI-shaped destination: an http(s) collector URL or
    a file path (anything else)."""
    if destination.startswith(("http://", "https://")):
        return HttpSpanSink(destination)
    return FileSpanSink(destination)


class SpanExporter:
    """Bounded background exporter; wire ``exporter.export`` as the
    tracer's ``on_span``.

    ``max_queue`` bounds memory between flushes (oldest dropped first);
    ``flush_interval`` paces the background thread. :meth:`flush` drains
    synchronously — tests and process shutdown use it so no span is
    lost to timing.
    """

    def __init__(
        self,
        sink,
        policy: ExportPolicy | None = None,
        max_queue: int = 2048,
        flush_interval: float = 0.5,
    ):
        self.sink = sink
        self.policy = policy if policy is not None else ExportPolicy()
        self.flush_interval = flush_interval
        self._queue: deque[dict] = deque(maxlen=max(1, max_queue))
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.exported = 0
        self.dropped = 0
        self.filtered = 0

    # ------------------------------------------------------------ hot path
    def export(self, span: dict) -> None:
        """Enqueue one finished span (the tracer's ``on_span`` hook)."""
        if not self.policy.keep(span):
            with self._lock:
                self.filtered += 1
            return
        with self._lock:
            if len(self._queue) == self._queue.maxlen:
                # Lossy on purpose: a stalled collector must cost spans,
                # never request latency or unbounded memory.
                self._queue.popleft()
                self.dropped += 1
            self._queue.append(span)
        self._wake.set()

    # ----------------------------------------------------------- lifecycle
    def start(self) -> "SpanExporter":
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-span-exporter", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the background thread and flush what is queued."""
        self._stop.set()
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.flush()

    def _run(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(timeout=self.flush_interval)
            self._wake.clear()
            self.flush()

    def flush(self) -> int:
        """Synchronously ship everything queued; returns spans shipped."""
        with self._lock:
            batch = list(self._queue)
            self._queue.clear()
        if not batch:
            return 0
        try:
            self.sink(batch)
        except Exception:  # noqa: BLE001 - a broken collector must never
            # take the serving process down; the batch is accounted lost.
            with self._lock:
                self.dropped += len(batch)
            return 0
        with self._lock:
            self.exported += len(batch)
        return len(batch)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "exported": self.exported,
                "dropped": self.dropped,
                "filtered": self.filtered,
                "queued": len(self._queue),
            }


__all__ = [
    "ExportPolicy",
    "FileSpanSink",
    "HttpSpanSink",
    "SpanExporter",
    "sink_for",
]
