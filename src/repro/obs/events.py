"""Structured one-line JSON events: the operator-facing log surface.

An *event* is one JSON object on one line — machine-parseable (a test
or supervisor can wait on ``"event": "serve.ready"`` instead of
sleeping) and still readable by a human tailing the stream. Events are
flushed immediately: readiness lines must be visible the moment the
endpoint is bound, even through a pipe's block buffering — the failure
mode that made ``repro serve`` look silent to anything but a terminal.

Used for lifecycle signals (server startup, shutdown) and structured
warnings (a transport replaying onto a fresh socket); high-frequency
per-request signals belong in :mod:`repro.obs.metrics` instead.

Events emitted while a span is open carry that span's ``trace_id`` and
``span_id``, so log lines join to traces (and to lineage records, which
stamp the same ids) without the emitter passing anything through.
"""

from __future__ import annotations

import json
import sys
import time

from .trace import current_span


def emit(event: str, stream=None, **fields) -> dict:
    """Write one structured event line to ``stream`` (default stderr).

    Returns the record (with its ``event`` name and ``ts`` wall-clock
    timestamp) so callers can reuse or assert on it. Fields must be
    JSON-serializable; anything that is not is stringified rather than
    killing the caller — an event line is telemetry, never control flow.
    While a span is active its trace/span ids are stamped on (explicit
    ``trace_id``/``span_id`` fields from the caller win).
    """
    span = current_span()
    if span is not None and span.trace_id is not None:
        fields.setdefault("trace_id", span.trace_id)
        fields.setdefault("span_id", span.span_id)
    record = {"event": event, "ts": round(time.time(), 6), **fields}
    try:
        line = json.dumps(record, sort_keys=True)
    except (TypeError, ValueError):
        line = json.dumps(
            {k: str(v) for k, v in record.items()}, sort_keys=True
        )
    out = stream if stream is not None else sys.stderr
    print(line, file=out, flush=True)
    return record
