"""repro.obs: the unified telemetry subsystem.

Three small, dependency-free pieces:

* :mod:`repro.obs.metrics` — a thread-safe :class:`MetricsRegistry` of
  counters, gauges, and histograms with label sets, rendered in
  Prometheus text format (``GET /metrics`` on both HTTP endpoints) and
  as plain-dict snapshots (the ``stats`` RPC op, benchmark dumps);
* :mod:`repro.obs.trace` — a span :class:`Tracer` whose context
  propagates hub admission → server op → lock wait → chunk I/O, so one
  push yields one correlated trace exportable as JSON events;
* :mod:`repro.obs.events` — structured one-line JSON log events
  (startup readiness, transport reconnect warnings).

Both metrics and tracing follow the same null-default discipline:
library code resolves its sink via ``default_registry()`` /
``default_tracer()``, which return shared no-op singletons unless the
process :func:`installed <repro.obs.metrics.install>` real ones — so an
uninstrumented run pays near-zero overhead, and nothing anywhere needs
an ``if registry is not None`` guard.
"""

from .events import emit
from .metrics import (
    NULL_REGISTRY,
    MetricsRegistry,
    default_registry,
)
from .trace import NULL_TRACER, Span, Tracer, default_tracer

__all__ = [
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "default_registry",
    "default_tracer",
    "emit",
]
