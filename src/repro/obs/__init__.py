"""repro.obs: the unified telemetry subsystem.

Small, dependency-free pieces:

* :mod:`repro.obs.metrics` — a thread-safe :class:`MetricsRegistry` of
  counters, gauges, and histograms with label sets, rendered in
  Prometheus text format (``GET /metrics`` on both HTTP endpoints) and
  as plain-dict snapshots (the ``stats`` RPC op, benchmark dumps);
* :mod:`repro.obs.trace` — a span :class:`Tracer` whose context
  propagates hub admission → server op → lock wait → chunk I/O, so one
  push yields one correlated trace exportable as JSON events, with
  head-based sampling decided deterministically from the trace id;
* :mod:`repro.obs.propagation` — the wire bridge: clients stamp the
  current span into the request envelope (``trace_ctx``), servers adopt
  it, so one trace spans processes;
* :mod:`repro.obs.export` — a bounded background exporter flushing
  finished spans as JSON lines to a file or HTTP collector, honoring
  the sampling decision plus always-on-error / always-on-slow;
* :mod:`repro.obs.profiler` — a wall-clock sampling profiler
  (``sys._current_frames()``, folded-stack output) plus one-shot
  thread-stack snapshots;
* :mod:`repro.obs.slowops` — per-op slow-request capture (span tree +
  live thread stacks when an op blows its latency budget);
* :mod:`repro.obs.critical_path` — trace-tree reconstruction and
  longest-blocking-chain analysis with executed-vs-reused attribution;
* :mod:`repro.obs.events` — structured one-line JSON log events
  (startup readiness, transport reconnect warnings);
* :mod:`repro.obs.slo` / :mod:`repro.obs.health` — the self-aware
  serving pair: declarative per-op latency objectives with error-budget
  burn windows, and the sliding-window :class:`HealthMonitor` that
  derives per-op percentiles, error rate, denial mix, and queue/lock
  pressure from the registry and tracer — feeding ``/healthz`` /
  ``/readyz``, the ``health`` RPC op, and the hub's overload shedding.

Both metrics and tracing follow the same null-default discipline:
library code resolves its sink via ``default_registry()`` /
``default_tracer()``, which return shared no-op singletons unless the
process :func:`installed <repro.obs.metrics.install>` real ones — so an
uninstrumented run pays near-zero overhead, and nothing anywhere needs
an ``if registry is not None`` guard.
"""

from .critical_path import build_trace_tree, critical_path, render_critical_path
from .events import emit
from .export import ExportPolicy, FileSpanSink, HttpSpanSink, SpanExporter, sink_for
from .health import SHED_EXEMPT_OPS, HealthMonitor
from .metrics import (
    NULL_REGISTRY,
    MetricsRegistry,
    default_registry,
)
from .profiler import SamplingProfiler, snapshot_stacks
from .propagation import (
    TRACE_CTX_KEY,
    RemoteSpanContext,
    adopt_remote_context,
    current_trace_context,
    inject,
    parse_trace_context,
)
from .slo import DEFAULT_OP_OBJECTIVES, SLOConfig, SLObjective
from .slowops import SlowOpCapture
from .trace import NULL_TRACER, Span, Tracer, default_tracer

__all__ = [
    "DEFAULT_OP_OBJECTIVES",
    "ExportPolicy",
    "FileSpanSink",
    "HealthMonitor",
    "HttpSpanSink",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "RemoteSpanContext",
    "SHED_EXEMPT_OPS",
    "SLOConfig",
    "SLObjective",
    "SamplingProfiler",
    "SlowOpCapture",
    "Span",
    "SpanExporter",
    "TRACE_CTX_KEY",
    "Tracer",
    "adopt_remote_context",
    "build_trace_tree",
    "critical_path",
    "current_trace_context",
    "default_registry",
    "default_tracer",
    "emit",
    "inject",
    "parse_trace_context",
    "render_critical_path",
    "sink_for",
    "snapshot_stacks",
]
