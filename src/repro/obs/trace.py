"""Lightweight request tracing: spans whose context follows the request.

One traced operation is a tree of :class:`Span`\\ s sharing a
``trace_id``: a hub request opens the root, admission/operation/lock/
storage work open children, and the parent of each new span is whatever
span is *current* on this thread of control when it starts. Currency is
a :mod:`contextvars` variable, so the propagation — hub admission →
server op → lock wait → chunk import — costs one context set/reset per
span and needs no plumbing through call signatures.

Finished spans land in a bounded in-memory buffer as plain dicts (and
optionally stream to an ``on_span`` callback); :meth:`Tracer.drain`
hands them over as structured JSON-ready events, newest last.

The context crosses the wire too: :mod:`repro.obs.propagation` stamps
the current span's ids into a schema-additive ``trace_ctx`` key of the
request envelope, and the server side adopts it — so a client push, the
hub's admission path, and the per-repo server share *one* trace, which
``trace_forensics`` joins back to the lineage ledger. Sampling is
head-based: the root span draws a deterministic keep/drop decision from
its ``trace_id`` against the tracer's ``sample_rate``, children inherit
it, and the decision rides the propagated context so both sides of the
wire agree. The decision never drops spans from the *buffer* (forensics
keep working); it is advice to the export pipeline
(:mod:`repro.obs.export`), which additionally keeps error and slow
spans regardless.

Null default: code resolves its tracer via :func:`default_tracer`,
which returns the no-op :data:`NULL_TRACER` unless :func:`install` was
called. A null span is a shared singleton whose ``__enter__``/
``__exit__`` do nothing, so uninstrumented hot paths pay an attribute
lookup and two empty calls.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
from collections import deque

_current: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


def _new_id() -> str:
    return os.urandom(8).hex()


def current_span() -> "Span | None":
    """The innermost span open on this thread of control, or None.

    Reads the contextvar directly, so it sees spans opened through *any*
    tracer instance — unlike :meth:`NullTracer.current`, which always
    answers None. Event stamping and lineage capture use this: they join
    to whatever trace is live regardless of which tracer owns it.
    """
    return _current.get()


class Span:
    """One timed unit of work; a context manager.

    Attributes are free-form key/values (kept JSON-serializable by
    convention). An exception escaping the ``with`` body marks the span
    ``status="error"`` and records the exception before re-raising.
    """

    __slots__ = (
        "tracer", "name", "attrs", "trace_id", "span_id", "parent_id",
        "start", "seconds", "status", "sampled", "_t0", "_token",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.trace_id: str | None = None
        self.span_id: str | None = None
        self.parent_id: str | None = None
        self.start: float | None = None
        self.seconds: float | None = None
        self.status = "ok"
        self.sampled = True
        self._t0: float | None = None
        self._token = None

    def set(self, **attrs) -> "Span":
        """Attach attributes to a live span; returns the span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        # The parent is whatever is current on this thread of control: a
        # live local Span, or an adopted remote context (a lightweight
        # trace_id/span_id/sampled triple installed by
        # repro.obs.propagation when the request arrived over the wire).
        parent = _current.get()
        if parent is not None:
            self.trace_id = parent.trace_id
            self.parent_id = parent.span_id
            self.sampled = getattr(parent, "sampled", True)
        else:
            self.trace_id = _new_id()
            self.parent_id = None
            self.sampled = self.tracer._sample(self.trace_id)
        self.span_id = _new_id()
        self.start = time.time()
        self._t0 = time.perf_counter()
        self._token = _current.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.seconds = time.perf_counter() - self._t0
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
        _current.reset(self._token)
        self.tracer._finish(self)
        return False

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "seconds": self.seconds,
            "status": self.status,
            "sampled": self.sampled,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Span factory plus a bounded buffer of finished spans.

    ``max_spans`` bounds memory: a long-lived server traced forever
    keeps only the newest spans (the deque drops from the front).
    ``on_span`` (optional) receives each finished span's dict — wire it
    to :func:`repro.obs.events.emit` to stream JSON lines, or to a
    :class:`repro.obs.export.SpanExporter` for background export.

    ``sample_rate`` is the head-based sampling probability ([0, 1],
    default keep-everything). The decision is drawn *deterministically*
    from the trace id (an OpenTelemetry-style trace-id-ratio sampler),
    so every participant in a distributed trace — and every re-examination
    of the same trace — agrees without coordination. Sampling never
    filters the in-memory buffer; it marks spans for the export layer.
    """

    def __init__(self, max_spans: int = 10000, on_span=None,
                 sample_rate: float = 1.0):
        self._lock = threading.Lock()
        self._finished: deque[dict] = deque(maxlen=max(1, max_spans))
        self.on_span = on_span
        self.sample_rate = min(1.0, max(0.0, sample_rate))
        self.spans_recorded = 0

    def _sample(self, trace_id: str) -> bool:
        """Head decision for a new root: keep iff the trace id's leading
        64 bits fall under the rate threshold — deterministic per trace,
        uniformly distributed across traces (ids are os.urandom)."""
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        try:
            draw = int(trace_id[:16], 16)
        except (TypeError, ValueError):
            return True
        return draw < self.sample_rate * float(1 << 64)

    def span(self, name: str, **attrs) -> Span:
        """A new span; enter it with ``with tracer.span("name"): ...``."""
        return Span(self, name, attrs)

    def record(self, name: str, seconds: float, **attrs) -> None:
        """Record an already-elapsed interval as a finished child span.

        For durations measured by code that cannot wrap the interval in
        a ``with`` block (a lock's internal wait, a callback's timing):
        the span parents onto the *current* span and backdates its start
        by ``seconds``.
        """
        parent = _current.get()
        span = Span(self, name, attrs)
        if parent is not None:
            span.trace_id = parent.trace_id
            span.parent_id = parent.span_id
            span.sampled = getattr(parent, "sampled", True)
        else:
            span.trace_id = _new_id()
            span.parent_id = None
            span.sampled = self._sample(span.trace_id)
        span.span_id = _new_id()
        span.start = time.time() - seconds
        span.seconds = seconds
        self._finish(span)

    def current(self) -> Span | None:
        """The span currently open on this thread of control, if any."""
        return _current.get()

    def _finish(self, span: Span) -> None:
        event = span.to_dict()
        with self._lock:
            self._finished.append(event)
            self.spans_recorded += 1
        if self.on_span is not None:
            self.on_span(event)

    def drain(self) -> list[dict]:
        """Remove and return all buffered finished spans, oldest first."""
        with self._lock:
            spans = list(self._finished)
            self._finished.clear()
        return spans

    def finished(self) -> list[dict]:
        """Buffered finished spans, oldest first (without draining)."""
        with self._lock:
            return list(self._finished)


# --------------------------------------------------------------- null layer
class _NullSpan:
    """Shared no-op span: context manager and attribute sink."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs):
        return self


NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer-shaped no-op; the module default until :func:`install`."""

    def span(self, name: str, **attrs):
        return NULL_SPAN

    def record(self, name: str, seconds: float, **attrs) -> None:
        pass

    def current(self):
        return None

    def drain(self) -> list[dict]:
        return []

    def finished(self) -> list[dict]:
        return []


NULL_TRACER = NullTracer()

_default: Tracer | NullTracer = NULL_TRACER


def install(tracer: Tracer):
    """Make ``tracer`` the process-wide default (returns it)."""
    global _default
    _default = tracer
    return tracer


def uninstall() -> None:
    """Restore the no-op default."""
    global _default
    _default = NULL_TRACER


def default_tracer():
    """The installed tracer, or :data:`NULL_TRACER` when none is."""
    return _default
