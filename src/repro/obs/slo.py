"""Declarative service-level objectives for the serving stack.

The policy half of self-aware serving (:mod:`repro.obs.health` is the
measurement half): an :class:`SLOConfig` names, per wire operation, the
latency the server promises (p99 seconds) and, globally, how much
failure the deployment tolerates (the error budget) and when burning
through that budget should flip readiness (fast/slow burn-rate
windows, the multiwindow alerting shape from the SRE workbook).

Two consumers with deliberately different signals:

* **readiness** (``GET /readyz``) flips on error-budget *burn* or queue
  saturation — symptoms that outlast any single request;
* **load shedding** (the hub admission pipeline) triggers on windowed
  per-op latency exceeding its objective (plus queue depth), never on
  burn: shed requests are answered as typed errors, and an error-driven
  shedder would feed its own signal and latch itself on.

Everything here is plain data — JSON-loadable via :meth:`SLOConfig.load`
(the ``--slo-config`` flag on both serve verbs) — so operators tune
objectives without touching code. :data:`DEFAULT_OP_OBJECTIVES` must
cover every op in :data:`repro.remote.protocol.OPS`; the OB006 lint rule
holds that line, so a new RPC cannot ship invisible to the health model.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Default per-op p99 latency objectives (seconds). Writes move chunk
#: content and get generous budgets (aligned with the slow-op capture
#: thresholds in :mod:`repro.obs.slowops`); metadata reads are expected
#: to be near-instant. Keys must cover every member of
#: :data:`repro.remote.protocol.OPS` — the OB006 lint rule checks this
#: dict literal statically, so keep it a literal.
DEFAULT_OP_OBJECTIVES = {
    "manifest": 0.5,
    "known_commits": 0.5,
    "missing_chunks": 0.5,
    "get_chunks": 2.0,
    "put_chunks": 5.0,
    "fetch": 2.0,
    "push": 5.0,
    "stats": 0.5,
    "lineage": 1.0,
    "trace": 1.0,
    "health": 0.5,
}

#: Default availability objective: at most 1% of requests may fail
#: before the error budget is spent.
DEFAULT_AVAILABILITY = 0.99

#: Burn-rate thresholds: readiness flips when the *fast* window burns
#: budget at >= 14.4x the sustainable rate (the classic page-worthy
#: figure: a 30-day budget gone in ~2 days) — the slow window is
#: reported for context and keeps the signal honest against blips.
DEFAULT_FAST_BURN = 14.4
DEFAULT_SLOW_BURN = 6.0


@dataclass(frozen=True)
class SLObjective:
    """One operation's promise: p99 latency under ``p99_seconds``."""

    op: str
    p99_seconds: float

    def to_dict(self) -> dict:
        return {"op": self.op, "p99_seconds": self.p99_seconds}


@dataclass
class SLOConfig:
    """The serving stack's objectives plus the knobs that act on them.

    ``window_seconds``/``tick_seconds`` shape the sliding window the
    health model aggregates over (the shed signal's horizon);
    ``fast_window_seconds``/``slow_window_seconds`` are the burn-rate
    horizons readiness watches. ``max_queue_depth`` is the scheduler
    queue saturation point (0 disables the queue signal);
    ``min_samples`` keeps one slow outlier from tripping the shedder on
    a quiet server. ``retry_after_seconds`` rides every
    :class:`~repro.errors.ServerOverloadedError` as the client's backoff
    hint; ``shed_enabled`` turns admission shedding off wholesale
    (readiness keeps reporting either way).
    """

    objectives: dict[str, SLObjective] = field(default_factory=dict)
    availability: float = DEFAULT_AVAILABILITY
    window_seconds: float = 30.0
    tick_seconds: float = 1.0
    fast_window_seconds: float = 60.0
    slow_window_seconds: float = 600.0
    fast_burn_threshold: float = DEFAULT_FAST_BURN
    slow_burn_threshold: float = DEFAULT_SLOW_BURN
    max_queue_depth: float = 0.0
    min_samples: int = 20
    retry_after_seconds: float = 1.0
    shed_enabled: bool = True

    def __post_init__(self) -> None:
        # Plain ``{op: seconds}`` dicts are accepted wherever objectives
        # go (constructor, JSON config) and normalized here once.
        self.objectives = {
            op: value
            if isinstance(value, SLObjective)
            else SLObjective(op, float(value))
            for op, value in self.objectives.items()
        }
        self.availability = min(1.0, max(0.0, self.availability))
        self.window_seconds = max(1.0, self.window_seconds)
        self.tick_seconds = max(0.05, self.tick_seconds)
        self.fast_window_seconds = max(1.0, self.fast_window_seconds)
        self.slow_window_seconds = max(
            self.fast_window_seconds, self.slow_window_seconds
        )

    @property
    def error_budget(self) -> float:
        """Tolerated failure fraction; floored so burn stays finite."""
        return max(1.0 - self.availability, 1e-6)

    def objective_for(self, op: str) -> SLObjective | None:
        return self.objectives.get(op)

    @classmethod
    def default(cls) -> "SLOConfig":
        """The stock config: every wire op covered at its default p99."""
        return cls(
            objectives={
                op: SLObjective(op, seconds)
                for op, seconds in DEFAULT_OP_OBJECTIVES.items()
            }
        )

    @classmethod
    def from_dict(cls, data: dict) -> "SLOConfig":
        """Build from a JSON-shaped dict; unlisted ops keep defaults.

        Shape (all keys optional)::

            {"objectives": {"push": 2.0, ...},
             "availability": 0.999,
             "window_seconds": 30, "tick_seconds": 1,
             "fast_window_seconds": 60, "slow_window_seconds": 600,
             "fast_burn_threshold": 14.4, "slow_burn_threshold": 6,
             "max_queue_depth": 64, "min_samples": 20,
             "retry_after_seconds": 1.0, "shed_enabled": true}
        """
        if not isinstance(data, dict):
            raise ValueError("SLO config must be a JSON object")
        config = cls.default()
        objectives = data.get("objectives", {})
        if not isinstance(objectives, dict):
            raise ValueError("'objectives' must map op names to seconds")
        for op, seconds in objectives.items():
            if not isinstance(seconds, (int, float)) or seconds <= 0:
                raise ValueError(
                    f"objective for {op!r} must be positive seconds"
                )
            config.objectives[op] = SLObjective(op, float(seconds))
        for name in (
            "availability",
            "window_seconds",
            "tick_seconds",
            "fast_window_seconds",
            "slow_window_seconds",
            "fast_burn_threshold",
            "slow_burn_threshold",
            "max_queue_depth",
            "retry_after_seconds",
        ):
            if name in data:
                value = data[name]
                if not isinstance(value, (int, float)) or isinstance(
                    value, bool
                ):
                    raise ValueError(f"{name!r} must be a number")
                setattr(config, name, float(value))
        if "min_samples" in data:
            value = data["min_samples"]
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError("'min_samples' must be an integer")
            config.min_samples = value
        if "shed_enabled" in data:
            if not isinstance(data["shed_enabled"], bool):
                raise ValueError("'shed_enabled' must be a boolean")
            config.shed_enabled = data["shed_enabled"]
        config.__post_init__()  # re-clamp after overrides
        return config

    @classmethod
    def load(cls, path: str) -> "SLOConfig":
        """Read a JSON config file (the ``--slo-config`` flag)."""
        with open(path, encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def to_dict(self) -> dict:
        return {
            "objectives": {
                op: objective.p99_seconds
                for op, objective in sorted(self.objectives.items())
            },
            "availability": self.availability,
            "window_seconds": self.window_seconds,
            "tick_seconds": self.tick_seconds,
            "fast_window_seconds": self.fast_window_seconds,
            "slow_window_seconds": self.slow_window_seconds,
            "fast_burn_threshold": self.fast_burn_threshold,
            "slow_burn_threshold": self.slow_burn_threshold,
            "max_queue_depth": self.max_queue_depth,
            "min_samples": self.min_samples,
            "retry_after_seconds": self.retry_after_seconds,
            "shed_enabled": self.shed_enabled,
        }


__all__ = [
    "DEFAULT_AVAILABILITY",
    "DEFAULT_FAST_BURN",
    "DEFAULT_OP_OBJECTIVES",
    "DEFAULT_SLOW_BURN",
    "SLObjective",
    "SLOConfig",
]
