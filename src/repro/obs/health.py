"""Sliding-window health model: the serving stack reading its own telemetry.

The measurement half of self-aware serving (:mod:`repro.obs.slo` is the
policy half). A :class:`HealthMonitor` periodically snapshots the
*existing* telemetry streams — the :class:`~repro.obs.metrics.MetricsRegistry`
families the servers already populate (``repro_request_seconds``,
``repro_admission_denied_total``, ``repro_lock_wait_seconds``,
``repro_scheduler_queue_depth``) and the :class:`~repro.obs.trace.Tracer`'s
finished-span buffer — and derives windowed signals from the deltas:
per-op p50/p95/p99 latency (interpolated from histogram-bucket deltas),
error rate, admission-denial mix, lock-wait pressure, and queue depth.
No new instrumentation points: if a server emits metrics, it can be
health-modelled.

Snapshots are ticked *lazily* from the read paths (``health()``,
``ready()``, ``shed_decision()``), rate-limited to the SLO's
``tick_seconds`` — no background thread, so a monitor on an idle server
costs nothing and a monitor under load amortizes one registry copy per
tick across every admission decision in that tick.

Three consumers, deliberately decoupled:

* **liveness** (``GET /healthz``): the process answers — always true if
  the handler runs;
* **readiness** (``GET /readyz``): flips down on fast error-budget burn,
  scheduler-queue saturation, or active shedding; recovers as the
  windows slide clean;
* **shedding** (:meth:`shed_decision`, called by the hub admission
  pipeline *before any repository state is touched*): triggers on
  windowed per-op p99 exceeding its objective or queue saturation —
  never on error burn. Shed requests are answered as typed
  :class:`~repro.errors.ServerOverloadedError`\\ s and land in the
  admission-denial counters, not the request-latency histograms, so the
  shedder's own output cannot feed its input and latch it on.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from .metrics import NULL_REGISTRY
from .slo import SLOConfig
from .trace import NULL_TRACER

#: Ops never shed: the probes an operator (or an automated client
#: backing off) needs precisely when the server is overloaded.
SHED_EXEMPT_OPS = frozenset({"health", "stats", "trace"})

#: Quantiles the window report carries.
_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))

#: Span-name prefix identifying served requests (error-rate source).
#: Hub/client spans are excluded on purpose: a shed request errors its
#: ``hub.request`` span, and counting that into burn would couple the
#: shedder to its own output.
_REQUEST_SPAN_PREFIX = "server."


def _percentile(buckets, deltas, q: float) -> float | None:
    """Quantile from histogram-bucket *deltas*, linearly interpolated.

    ``buckets`` are the finite upper bounds; ``deltas`` has one extra
    trailing +Inf entry. Follows ``histogram_quantile``'s convention for
    the +Inf bucket: answer the largest finite bound (there is no upper
    edge to interpolate toward).
    """
    total = sum(deltas)
    if total <= 0:
        return None
    rank = q * total
    cumulative = 0.0
    for i, count in enumerate(deltas):
        if count <= 0:
            continue
        previous = cumulative
        cumulative += count
        if cumulative < rank:
            continue
        if i >= len(buckets):  # the +Inf bucket
            return float(buckets[-1]) if buckets else None
        lower = float(buckets[i - 1]) if i > 0 else 0.0
        upper = float(buckets[i])
        fraction = (rank - previous) / count
        return lower + (upper - lower) * fraction
    return float(buckets[-1]) if buckets else None


class _Sample:
    """One timestamped cut of the cumulative telemetry counters."""

    __slots__ = ("mono", "wall", "ops", "denied", "lock_wait", "queue_depth")

    def __init__(self, mono, wall, ops, denied, lock_wait, queue_depth):
        self.mono = mono
        self.wall = wall
        self.ops = ops                  # op -> {buckets, counts, count, sum}
        self.denied = denied            # reason -> cumulative total
        self.lock_wait = lock_wait      # {"count": n, "sum": seconds}
        self.queue_depth = queue_depth  # instantaneous gauge


class HealthMonitor:
    """Windowed health/readiness/shedding decisions over live telemetry.

    Thread-safe; every public method may be called concurrently with
    the servers still writing the underlying registry (the registry's
    own lock guarantees each snapshot is a consistent cut).
    """

    def __init__(self, registry=None, slo: SLOConfig | None = None,
                 tracer=None, clock=time.monotonic, wallclock=time.time):
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.slo = slo if slo is not None else SLOConfig.default()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._clock = clock
        self._wallclock = wallclock
        self._lock = threading.Lock()
        self._samples: deque[_Sample] = deque()
        self._last_tick = float("-inf")
        self._last_shed_mono = float("-inf")
        self._shed_total = 0
        self._shed_by_op: dict[str, int] = {}
        # Baseline cut at construction: the first window measures what
        # happened since the monitor (== the server) came up, not the
        # whole cumulative history of a shared registry.
        self._tick(force=True)

    # ------------------------------------------------------------ sampling
    def _collect(self) -> _Sample:
        ops: dict[str, dict] = {}
        for series in self.registry.series("repro_request_seconds"):
            op = series["labels"].get("op", "-")
            agg = ops.get(op)
            if agg is None:
                ops[op] = {
                    "buckets": tuple(series["buckets"]),
                    "counts": list(series["bucket_counts"]),
                    "count": series["count"],
                    "sum": series["sum"],
                }
            else:
                for i, n in enumerate(series["bucket_counts"]):
                    agg["counts"][i] += n
                agg["count"] += series["count"]
                agg["sum"] += series["sum"]
        denied: dict[str, float] = {}
        for series in self.registry.series("repro_admission_denied_total"):
            reason = series["labels"].get("reason", "-")
            denied[reason] = denied.get(reason, 0.0) + series["value"]
        lock_wait = {"count": 0, "sum": 0.0}
        for series in self.registry.series("repro_lock_wait_seconds"):
            lock_wait["count"] += series["count"]
            lock_wait["sum"] += series["sum"]
        queue_depth = sum(
            series["value"]
            for series in self.registry.series("repro_scheduler_queue_depth")
        )
        return _Sample(
            self._clock(), self._wallclock(), ops, denied, lock_wait,
            queue_depth,
        )

    def _tick(self, force: bool = False) -> None:
        """Snapshot the registry if the last cut is older than a tick."""
        now = self._clock()
        with self._lock:
            if not force and now - self._last_tick < self.slo.tick_seconds:
                return
            self._last_tick = now
            self._samples.append(self._collect())
            horizon = self.slo.window_seconds + 2 * self.slo.tick_seconds
            while (
                len(self._samples) > 2
                and now - self._samples[1].mono > horizon
            ):
                self._samples.popleft()

    def _window_edges(self) -> tuple[_Sample, _Sample] | None:
        """(baseline, newest): baseline is the newest sample at least a
        window old, else the oldest available (short-lived monitor)."""
        with self._lock:
            if len(self._samples) < 2:
                return None
            newest = self._samples[-1]
            cutoff = newest.mono - self.slo.window_seconds
            baseline = self._samples[0]
            for sample in self._samples:
                if sample.mono <= cutoff:
                    baseline = sample
                else:
                    break
            if baseline is newest:
                baseline = self._samples[0]
            return baseline, newest

    # ------------------------------------------------------------- windows
    def window(self) -> dict:
        """Deltas over the sliding window, as one JSON-ready dict."""
        self._tick()
        edges = self._window_edges()
        if edges is None:
            return {
                "seconds": 0.0,
                "ops": {},
                "denied": {},
                "lock_wait": {"count": 0, "avg_seconds": 0.0},
                "queue_depth": 0.0,
            }
        baseline, newest = edges
        ops: dict[str, dict] = {}
        for op, current in newest.ops.items():
            before = baseline.ops.get(op)
            deltas = list(current["counts"])
            count = current["count"]
            total = current["sum"]
            if before is not None and before["buckets"] == current["buckets"]:
                for i, n in enumerate(before["counts"]):
                    deltas[i] -= n
                count -= before["count"]
                total -= before["sum"]
            if count <= 0:
                continue
            report = {"count": count, "mean_seconds": total / count}
            for name, q in _QUANTILES:
                value = _percentile(current["buckets"], deltas, q)
                if value is not None:
                    report[name] = value
            ops[op] = report
        denied = {}
        for reason, value in newest.denied.items():
            delta = value - baseline.denied.get(reason, 0.0)
            if delta > 0:
                denied[reason] = delta
        lock_count = newest.lock_wait["count"] - baseline.lock_wait["count"]
        lock_sum = newest.lock_wait["sum"] - baseline.lock_wait["sum"]
        return {
            "seconds": newest.mono - baseline.mono,
            "ops": ops,
            "denied": denied,
            "lock_wait": {
                "count": max(lock_count, 0),
                "avg_seconds": (
                    lock_sum / lock_count if lock_count > 0 else 0.0
                ),
            },
            "queue_depth": newest.queue_depth,
        }

    def _burn_rates(self) -> dict:
        """Error-budget burn over the fast/slow windows, from spans.

        Burn = (error fraction of served requests in the window) divided
        by the budget; 1.0 means "spending exactly what the availability
        objective allows". Only ``server.*`` spans count — see
        :data:`_REQUEST_SPAN_PREFIX`.
        """
        spans = self.tracer.finished()
        now = self._wallclock()
        rates = {}
        for name, horizon in (
            ("fast", self.slo.fast_window_seconds),
            ("slow", self.slo.slow_window_seconds),
        ):
            total = errors = 0
            cutoff = now - horizon
            for span in spans:
                if not str(span.get("name", "")).startswith(
                    _REQUEST_SPAN_PREFIX
                ):
                    continue
                start = span.get("start")
                if start is None or start < cutoff:
                    continue
                total += 1
                if span.get("status") == "error":
                    errors += 1
            rate = errors / total if total else 0.0
            rates[name] = {
                "requests": total,
                "errors": errors,
                "error_rate": rate,
                "burn": rate / self.slo.error_budget,
            }
        return rates

    # ----------------------------------------------------------- decisions
    def alive(self) -> bool:
        """Liveness: the process is running and answering. Always true
        from inside the process — the signal is in *reaching* it."""
        return True

    def ready(self) -> tuple[bool, list[str]]:
        """Readiness and the reasons it is (not) — empty list when ready.

        Flips down on: fast error-budget burn over threshold, scheduler
        queue saturated past the configured depth, or shedding having
        fired within the last window. All three clear themselves as the
        windows slide past the incident.
        """
        self._tick()
        reasons = []
        burn = self._burn_rates()
        fast = burn["fast"]
        if (
            fast["requests"] >= self.slo.min_samples
            and fast["burn"] >= self.slo.fast_burn_threshold
        ):
            reasons.append(
                f"error budget fast burn {fast['burn']:.1f}x >= "
                f"{self.slo.fast_burn_threshold:.1f}x"
            )
        window = self.window()
        if (
            self.slo.max_queue_depth > 0
            and window["queue_depth"] > self.slo.max_queue_depth
        ):
            reasons.append(
                f"scheduler queue depth {window['queue_depth']:.0f} > "
                f"{self.slo.max_queue_depth:.0f}"
            )
        if self._shedding_active():
            reasons.append("overload shedding active")
        return (not reasons, reasons)

    def _shedding_active(self) -> bool:
        return (
            self._clock() - self._last_shed_mono <= self.slo.window_seconds
        )

    def shed_decision(self, op: str) -> float | None:
        """Should an admission of ``op`` be shed right now?

        Returns the ``retry_after`` hint (seconds) to send the client,
        or None to admit. Called by the hub *before* any repository
        state is touched; exempt ops (:data:`SHED_EXEMPT_OPS`) are never
        shed so probes and backoff decisions keep working under load.
        Latency-driven: sheds when the windowed p99 of this op has
        breached its objective across at least ``min_samples`` requests,
        or when the scheduler queue is saturated — never on error burn.
        """
        if not self.slo.shed_enabled or op in SHED_EXEMPT_OPS:
            return None
        self._tick()
        window = self.window()
        if (
            self.slo.max_queue_depth > 0
            and window["queue_depth"] > self.slo.max_queue_depth
        ):
            return self.slo.retry_after_seconds
        objective = self.slo.objective_for(op)
        if objective is None:
            return None
        report = window["ops"].get(op)
        if report is None or report["count"] < self.slo.min_samples:
            return None
        p99 = report.get("p99")
        if p99 is not None and p99 > objective.p99_seconds:
            return self.slo.retry_after_seconds
        return None

    def note_shed(self, op: str) -> None:
        """Record that the admission pipeline shed one ``op`` request."""
        with self._lock:
            self._last_shed_mono = self._clock()
            self._shed_total += 1
            self._shed_by_op[op] = self._shed_by_op.get(op, 0) + 1

    # ------------------------------------------------------------- reports
    def health(self) -> dict:
        """The full health report (the ``health`` RPC's payload).

        JSON-ready; schema-additive consumers should tolerate new keys.
        """
        self._tick()
        window = self.window()
        burn = self._burn_rates()
        ready, reasons = self.ready()
        ops = {}
        for op, report in sorted(window["ops"].items()):
            entry = dict(report)
            objective = self.slo.objective_for(op)
            if objective is not None:
                entry["objective_p99_seconds"] = objective.p99_seconds
                p99 = report.get("p99")
                entry["breach"] = bool(
                    p99 is not None and p99 > objective.p99_seconds
                )
            ops[op] = entry
        with self._lock:
            shed = {
                "active": self._shedding_active(),
                "total": self._shed_total,
                "by_op": dict(self._shed_by_op),
                "enabled": self.slo.shed_enabled,
            }
        return {
            "alive": self.alive(),
            "ready": ready,
            "reasons": reasons,
            "generated_at": self._wallclock(),
            "window_seconds": window["seconds"],
            "ops": ops,
            "denied": window["denied"],
            "lock_wait": window["lock_wait"],
            "queue_depth": window["queue_depth"],
            "burn": burn,
            "shedding": shed,
            "slo": self.slo.to_dict(),
        }


__all__ = ["SHED_EXEMPT_OPS", "HealthMonitor"]
