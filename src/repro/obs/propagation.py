"""Trace-context propagation: joining spans across the wire.

The tracer's contextvar already carries span currency across in-process
boundaries (client → hub → server on one thread of control), but an HTTP
hop lands the request on a handler thread with an empty context — the
server's spans would start a fresh, disjoint trace. This module is the
bridge:

* the **client** stamps the current span's identity into the request
  envelope (:func:`inject` adds a ``trace_ctx`` key to the ``meta``
  dict — schema-additive, no ``PROTOCOL_VERSION`` bump; a legacy peer
  simply ignores the key);
* the **server** parses it back (:func:`parse_trace_context` — strict,
  but *never* raises: a malformed context is telemetry noise, not a
  protocol error) and adopts it (:func:`adopt_remote_context`) as the
  parent for the spans it opens, so ``hub.request`` → ``server.<op>`` →
  ``lock.*`` → ``storage.import`` join the client's trace.

Adoption is **adopt-only**: it installs the remote parent only when no
local span is already current, so an in-process transport (where the
client's span is literally current on the calling thread) keeps its
natural nesting, and adoption can never shadow live local spans. The
propagated ids are correlation data and nothing else — they are *never*
an input to authentication, authorization, rate limiting, or routing
(see docs/invariants.md): a peer lying about its trace id can only
mislabel its own telemetry.

The head-based sampling decision rides along (``sampled``), so both
sides of the wire keep or skip export of the same trace without
coordination.
"""

from __future__ import annotations

import contextlib
import re

from . import trace as obs_trace

#: The request-envelope key the context rides under (in ``meta``).
TRACE_CTX_KEY = "trace_ctx"

#: Span/trace ids are lowercase hex (os.urandom(8).hex() today); accept
#: up to 64 chars so longer ids from future/foreign emitters still join.
_ID_RE = re.compile(r"^[0-9a-f]{1,64}$")


class RemoteSpanContext:
    """A parent that lives on the other side of the wire.

    Duck-typed to what :meth:`Span.__enter__` reads off a parent —
    ``trace_id``, ``span_id``, ``sampled`` — and nothing more: it cannot
    be entered, timed, or finished, because the real span is remote.
    """

    __slots__ = ("trace_id", "span_id", "sampled")

    def __init__(self, trace_id: str, span_id: str, sampled: bool = True):
        self.trace_id = trace_id
        self.span_id = span_id
        self.sampled = sampled

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "sampled": self.sampled,
        }


def current_trace_context() -> dict | None:
    """The wire form of the innermost live span, or None when untraced.

    Works across tracer instances (it reads the shared contextvar) and
    also sees an *adopted* remote context, so a relaying hop forwards
    the original trace rather than minting its own.
    """
    span = obs_trace.current_span()
    if span is None or span.trace_id is None or span.span_id is None:
        return None
    return {
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "sampled": bool(getattr(span, "sampled", True)),
    }


def inject(meta: dict) -> dict:
    """``meta`` with the current trace context stamped in (a copy), or
    ``meta`` unchanged when no span is live — untraced clients put
    nothing extra on the wire, byte-for-byte."""
    context = current_trace_context()
    if context is None:
        return meta
    stamped = dict(meta)
    stamped[TRACE_CTX_KEY] = context
    return stamped


def parse_trace_context(meta) -> RemoteSpanContext | None:
    """The inherited context of a request envelope, or None.

    Strict about shape (both ids must be hex strings, ``sampled`` a
    bool) but *never raises*: an absent key means a legacy peer, a
    malformed one is ignored the same way — propagation is telemetry,
    and telemetry must not be able to fail a request.
    """
    if not isinstance(meta, dict):
        return None
    context = meta.get(TRACE_CTX_KEY)
    if not isinstance(context, dict):
        return None
    trace_id = context.get("trace_id")
    span_id = context.get("span_id")
    if not isinstance(trace_id, str) or not _ID_RE.match(trace_id):
        return None
    if not isinstance(span_id, str) or not _ID_RE.match(span_id):
        return None
    sampled = context.get("sampled", True)
    if not isinstance(sampled, bool):
        return None
    return RemoteSpanContext(trace_id, span_id, sampled)


@contextlib.contextmanager
def adopt_remote_context(context: RemoteSpanContext | None):
    """Make ``context`` the parent for spans opened in the body.

    Adopt-only: when ``context`` is None — or a local span is already
    current on this thread of control (the in-process transport case,
    where the client's own span *is* the right parent and carries the
    same trace) — this is a no-op. Yields whether adoption happened.
    """
    if context is None or obs_trace.current_span() is not None:
        yield False
        return
    token = obs_trace._current.set(context)
    try:
        yield True
    finally:
        obs_trace._current.reset(token)


__all__ = [
    "TRACE_CTX_KEY",
    "RemoteSpanContext",
    "adopt_remote_context",
    "current_trace_context",
    "inject",
    "parse_trace_context",
]
