"""Wall-clock sampling profiler: where the process actually spends time.

A daemon thread wakes every ``interval`` seconds, snapshots every
thread's current Python frame stack via ``sys._current_frames()``, and
folds each stack into a ``module:function`` chain counted in a dict —
the classic folded-stack format every flamegraph renderer consumes
(``a;b;c 42`` per line, :meth:`SamplingProfiler.folded`).

This is a *sampling* profiler on purpose: a tracing profiler
(``sys.setprofile``) would tax every function call on every request
thread; sampling costs one stack walk per interval regardless of
request rate, so it is safe to leave running on a serving hub (the
telemetry benchmark asserts the overhead bound). The trade is
statistical truth — a function must be on-CPU (or blocked) for a few
samples before it shows up — which is exactly right for "what bounds
wall time" forensics.

``snapshot_stacks`` is the one-shot flavour used by slow-op capture:
the live stacks of every thread at the moment an operation blew its
latency budget.
"""

from __future__ import annotations

import sys
import threading
import time
import traceback


def snapshot_stacks(limit: int = 64) -> dict[str, list[str]]:
    """Current Python stacks of every live thread, newest frame last.

    Keys are ``"<thread name> (<ident>)"``; values are rendered
    ``file:line function`` frames. Used by slow-op capture to answer
    "what was everyone doing while this op was slow".
    """
    names = {
        thread.ident: thread.name for thread in threading.enumerate()
    }
    stacks: dict[str, list[str]] = {}
    for ident, frame in sys._current_frames().items():
        label = f"{names.get(ident, 'unknown')} ({ident})"
        stacks[label] = [
            f"{entry.filename}:{entry.lineno} {entry.name}"
            for entry in traceback.extract_stack(frame, limit=limit)
        ]
    return stacks


def _fold(frame, limit: int) -> str:
    """One frame chain as ``mod:outer;mod:inner`` (root first)."""
    parts: list[str] = []
    depth = 0
    while frame is not None and depth < limit:
        code = frame.f_code
        module = frame.f_globals.get("__name__", "?")
        parts.append(f"{module}:{code.co_name}")
        frame = frame.f_back
        depth += 1
    parts.reverse()
    return ";".join(parts)


class SamplingProfiler:
    """Low-overhead wall-clock profiler over ``sys._current_frames()``.

    ``interval`` is the sampling period (default 10 ms ≈ 100 Hz);
    ``max_stacks`` bounds the folded table (beyond it, new unique stacks
    are counted as dropped rather than growing memory); ``max_depth``
    truncates pathological recursion. Start/stop are idempotent; the
    sampler thread excludes itself from its own samples.
    """

    def __init__(
        self,
        interval: float = 0.01,
        max_stacks: int = 50000,
        max_depth: int = 128,
    ):
        self.interval = max(0.001, interval)
        self.max_stacks = max(1, max_stacks)
        self.max_depth = max(2, max_depth)
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.samples = 0
        self.dropped_stacks = 0
        self.started_at: float | None = None

    # ----------------------------------------------------------- lifecycle
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        if not self.running:
            self._stop.clear()
            self.started_at = time.time()
            self._thread = threading.Thread(
                target=self._run, name="repro-profiler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()
            self.samples = 0
            self.dropped_stacks = 0

    def _run(self) -> None:
        own = threading.get_ident()
        while not self._stop.wait(self.interval):
            frames = sys._current_frames()
            with self._lock:
                self.samples += 1
                for ident, frame in frames.items():
                    if ident == own:
                        continue
                    stack = _fold(frame, self.max_depth)
                    if stack in self._counts:
                        self._counts[stack] += 1
                    elif len(self._counts) < self.max_stacks:
                        self._counts[stack] = 1
                    else:
                        self.dropped_stacks += 1

    # ------------------------------------------------------------- readout
    def folded(self) -> str:
        """The folded-stack table (``stack count`` lines, heaviest
        first) — pipe it straight into flamegraph.pl / speedscope."""
        with self._lock:
            items = sorted(
                self._counts.items(), key=lambda kv: (-kv[1], kv[0])
            )
        return "\n".join(f"{stack} {count}" for stack, count in items)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "running": self.running,
                "interval_seconds": self.interval,
                "samples": self.samples,
                "unique_stacks": len(self._counts),
                "dropped_stacks": self.dropped_stacks,
                "started_at": self.started_at,
            }


__all__ = ["SamplingProfiler", "snapshot_stacks"]
