"""Experiment drivers regenerating every table and figure of section VII."""

from .distributed import (
    DistributedExperimentResult,
    loss_decay_ordering,
    run_distributed_experiment,
)
from .linear import LinearExperimentResult, run_linear_experiment
from .measures import LinearSeries, MergeMeasures
from .merge import MODE_LABELS, MergeExperimentResult, run_merge_experiment
from .parallel import (
    ParallelMergeResult,
    ParallelMergeRow,
    build_delayed_merge_repo,
    run_parallel_merge_experiment,
)
from .prioritized import (
    RankPoint,
    SearchExperimentResult,
    TABLE1_FRACTIONS,
    run_search_experiment,
)
from .report import format_series, format_table

__all__ = [
    "DistributedExperimentResult",
    "loss_decay_ordering",
    "run_distributed_experiment",
    "LinearExperimentResult",
    "run_linear_experiment",
    "LinearSeries",
    "MergeMeasures",
    "MODE_LABELS",
    "MergeExperimentResult",
    "run_merge_experiment",
    "ParallelMergeResult",
    "ParallelMergeRow",
    "build_delayed_merge_repo",
    "run_parallel_merge_experiment",
    "RankPoint",
    "SearchExperimentResult",
    "TABLE1_FRACTIONS",
    "run_search_experiment",
    "format_series",
    "format_table",
]
