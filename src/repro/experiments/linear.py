"""Linear-versioning experiment: regenerates Figs. 5, 6, and 7.

For each application, the same deterministic 10-iteration update schedule
(pre-processing updates w.p. 0.4, model updates w.p. 0.6, designed
incompatibility at the last iteration) is replayed against ModelDB,
MLflow, and MLCask. The outputs are:

* Fig. 5 — cumulative total time per iteration, per system;
* Fig. 6 — whole-run time composition (storage / pre-processing / model
  training), per system;
* Fig. 7 — cumulative storage size (CSS) per iteration, per system.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baselines import ALL_SYSTEMS
from ..workloads import ALL_WORKLOADS, linear_script
from .measures import LinearSeries
from .report import format_series, format_table

DEFAULT_APPS = ("readmission", "dpm", "sa", "autolearn")
DEFAULT_SYSTEMS = ("modeldb", "mlflow", "mlcask")


@dataclass
class LinearExperimentResult:
    """All series for all (application, system) pairs."""

    n_iterations: int
    series: dict = field(default_factory=dict)  # app -> system -> LinearSeries

    def fig5_series(self, app: str) -> dict:
        """system -> cumulative total time per iteration."""
        return {
            system: series.total_seconds
            for system, series in self.series[app].items()
        }

    def fig6_composition(self, app: str) -> dict:
        """system -> {storage, preprocessing, training} totals."""
        return {
            system: series.composition
            for system, series in self.series[app].items()
        }

    def fig7_series(self, app: str) -> dict:
        """system -> CSS (MB) per iteration."""
        return {
            system: [b / 1e6 for b in series.storage_bytes]
            for system, series in self.series[app].items()
        }

    # ------------------------------------------------------------ rendering
    def render_fig5(self) -> str:
        blocks = []
        for app in self.series:
            blocks.append(
                format_series(
                    self.fig5_series(app),
                    title=f"Fig 5 ({app}): cumulative total time (s) per iteration",
                )
            )
        return "\n\n".join(blocks)

    def render_fig6(self) -> str:
        blocks = []
        for app in self.series:
            composition = self.fig6_composition(app)
            rows = [
                [
                    system,
                    round(parts["storage"], 3),
                    round(parts["preprocessing"], 3),
                    round(parts["training"], 3),
                ]
                for system, parts in composition.items()
            ]
            blocks.append(
                format_table(
                    ["system", "storage_s", "preprocessing_s", "training_s"],
                    rows,
                    title=f"Fig 6 ({app}): pipeline time composition",
                )
            )
        return "\n\n".join(blocks)

    def render_fig7(self) -> str:
        blocks = []
        for app in self.series:
            blocks.append(
                format_series(
                    self.fig7_series(app),
                    title=f"Fig 7 ({app}): cumulative storage size (MB) per iteration",
                )
            )
        return "\n\n".join(blocks)

    def storage_saving_ratio(self, app: str) -> float:
        """ModelDB CSS over MLCask CSS at the final iteration."""
        modeldb = self.series[app]["modeldb"].final_storage_bytes
        mlcask = self.series[app]["mlcask"].final_storage_bytes
        return modeldb / max(mlcask, 1)


def run_linear_experiment(
    apps=DEFAULT_APPS,
    systems=DEFAULT_SYSTEMS,
    n_iterations: int = 10,
    scale: float = 1.0,
    seed: int = 0,
) -> LinearExperimentResult:
    """Replay the update schedule on every system for every application."""
    result = LinearExperimentResult(n_iterations=n_iterations)
    for app in apps:
        result.series[app] = {}
        for system_name in systems:
            workload = ALL_WORKLOADS[app](scale=scale, seed=seed)
            steps = linear_script(workload, n_iterations=n_iterations, seed=seed)
            system = ALL_SYSTEMS[system_name](workload, seed=seed)
            series = LinearSeries(system=system_name)
            cumulative = 0.0
            for step in steps:
                record = system.run_iteration(step.iteration, step.updates)
                cumulative += record.total_seconds
                series.iterations.append(step.iteration)
                series.total_seconds.append(cumulative)
                series.storage_bytes.append(record.storage_bytes)
                series.preprocessing_seconds.append(record.preprocessing_seconds)
                series.training_seconds.append(record.training_seconds)
                series.storage_seconds.append(record.storage_seconds)
                series.scores.append(record.score)
                series.n_executed.append(record.n_executed)
                if record.skipped_incompatible:
                    series.flags.append("skipped")
                elif record.failed:
                    series.flags.append("failed")
                else:
                    series.flags.append("ok")
            result.series[app][system_name] = series
    return result
