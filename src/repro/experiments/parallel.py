"""Engine-backed merge experiment: multi-worker search wall-clock speedup.

The paper's PR/PCPR optimizations reduce *which* components a merge runs;
the parallel engine (ISSUE 3) additionally runs candidate pipelines
*concurrently*. This driver measures that second axis: one multi-leaf
merge scenario searched with 1, 2, and 4 workers, reporting wall-clock,
speedup over sequential, and — the part that makes the speedup safe — a
full equivalence check that every worker count found identical candidate
scores, identical stage output refs, and the same winner.

Component cost is *simulated service delay* (``time.sleep``, which
releases the GIL) rather than numpy compute: like the cost-model
benchmarks elsewhere in this repo, it stands in for the I/O- and
training-bound stages of the paper's real pipelines while keeping the
experiment deterministic and runnable on any box — including single-core
CI, where GIL-bound compute would show no thread speedup at all.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.component import DatasetComponent, LibraryComponent
from ..core.repository import MLCask
from ..core.semver import SemVer
from ..data.table import Table
from .report import format_table

_RAW = "pmerge/raw_v0"
_CLEAN = "pmerge/clean_v0"
_FEAT = "pmerge/feat_v0"


def _delayed_dataset(n_rows: int) -> DatasetComponent:
    def loader(rng, _n=n_rows):
        base = np.arange(_n, dtype=np.float64)
        return Table({"f0": base, "f1": base * 0.25, "label": (base % 2).astype(np.int64)})

    return DatasetComponent(
        name="pmerge.dataset",
        version=SemVer("master", 0, 0),
        loader=loader,
        output_schema=_RAW,
        content_key="pmerge-day0",
    )


def _clean_fn(table, params, rng):
    time.sleep(params["delay"])
    return table.with_column("f0", table["f0"] + params["idx"] * 0.001)


def _extract_fn(table, params, rng):
    time.sleep(params["delay"])
    return {
        "X": table.numeric_matrix(["f0", "f1"]) + params["idx"] * 0.001,
        "y": table["label"],
    }


def _model_fn(payload, params, rng):
    time.sleep(params["delay"])
    return {"metrics": {"accuracy": params["quality"]}, "params": {}}


def _version(stage: str, idx: int, delay: float, branch: str, quality: float = 0.0):
    fns = {"clean": _clean_fn, "extract": _extract_fn, "model": _model_fn}
    params = {"idx": idx, "delay": delay}
    schemas = {"clean": (_RAW, _CLEAN), "extract": (_CLEAN, _FEAT), "model": (_FEAT, "pmerge/model")}
    if stage == "model":
        params["quality"] = quality
    in_schema, out_schema = schemas[stage]
    return LibraryComponent(
        name=f"pmerge.{stage}",
        version=SemVer(branch, 0, idx),
        fn=fns[stage],
        params=params,
        input_schema=in_schema,
        output_schema=out_schema,
        is_model=stage == "model",
    )


def build_delayed_merge_repo(
    n_clean: int = 2,
    n_extract: int = 3,
    n_model: int = 4,
    stage_seconds: float = 0.03,
    model_seconds: float = 0.06,
    n_rows: int = 64,
    seed: int = 0,
) -> MLCask:
    """A two-branch history whose merge search tree has
    ``n_clean * n_extract * n_model`` leaves, every component carrying a
    simulated compute delay.

    History commits use ``run=False`` — no checkpoints, no history
    scores — so the merge starts cold and every candidate's cost is live,
    the worst case the parallel engine exists for. Model qualities are a
    deterministic function of the version triple, so every worker count
    must find the same winner.
    """
    repo = MLCask(metric="accuracy", seed=seed)
    spec_components = {
        "dataset": _delayed_dataset(n_rows),
        "clean": _version("clean", 0, stage_seconds, "master"),
        "extract": _version("extract", 0, stage_seconds, "master"),
        "model": _version("model", 0, model_seconds, "master", quality=_quality(0, 0, 0)),
    }
    from ..core.pipeline import PipelineSpec

    spec = PipelineSpec.chain("pmerge", ["dataset", "clean", "extract", "model"])
    repo.create_pipeline(spec, spec_components, run=False)
    repo.branch("pmerge", "dev", "master")
    for e in range(1, n_extract):
        repo.commit(
            "pmerge",
            {"extract": _version("extract", e, stage_seconds, "dev")},
            branch="dev",
            run=False,
        )
    for m in range(1, n_model):
        repo.commit(
            "pmerge",
            {"model": _version("model", m, model_seconds, "dev", quality=_quality(0, 0, m))},
            branch="dev",
            run=False,
        )
    for c in range(1, n_clean):
        repo.commit(
            "pmerge",
            {"clean": _version("clean", c, stage_seconds, "master")},
            branch="master",
            run=False,
        )
    return repo


def _quality(c: int, e: int, m: int) -> float:
    """Deterministic model quality per (clean, extract, model) triple —
    injective enough that ties cannot hide a wrong winner."""
    return round(0.5 + 0.04 * m + 0.013 * e + 0.007 * c, 6)


@dataclass
class ParallelMergeRow:
    workers: int
    seconds: float
    speedup: float
    evaluated: int
    executed: int
    reused: int
    winner_score: float


@dataclass
class ParallelMergeResult:
    leaves: int
    rows: list[ParallelMergeRow] = field(default_factory=list)
    #: workers -> {path_key: score} (the equivalence evidence)
    scores: dict[int, dict[str, float | None]] = field(default_factory=dict)
    #: workers -> {path_key: {stage: output_ref}}
    output_refs: dict[int, dict[str, dict[str, str]]] = field(default_factory=dict)

    @property
    def equivalent(self) -> bool:
        """Every worker count produced identical scores and output refs."""
        baselines = None
        for workers in sorted(self.scores):
            current = (self.scores[workers], self.output_refs[workers])
            if baselines is None:
                baselines = current
            elif current != baselines:
                return False
        return baselines is not None

    def speedup_at(self, workers: int) -> float:
        for row in self.rows:
            if row.workers == workers:
                return row.speedup
        raise KeyError(f"no row for {workers} workers")

    def render_table(self) -> str:
        rows = [
            (
                row.workers,
                f"{row.seconds:.3f}",
                f"{row.speedup:.2f}x",
                row.evaluated,
                row.executed,
                row.reused,
                f"{row.winner_score:.4f}",
            )
            for row in self.rows
        ]
        table = format_table(
            ["workers", "seconds", "speedup", "evaluated", "executed", "reused", "winner"],
            rows,
            title=f"Parallel merge search ({self.leaves} candidate leaves)",
        )
        verdict = "identical" if self.equivalent else "DIVERGENT"
        return f"{table}\nscores/output refs across worker counts: {verdict}"


def run_parallel_merge_experiment(
    workers: tuple[int, ...] = (1, 2, 4),
    n_clean: int = 2,
    n_extract: int = 3,
    n_model: int = 4,
    stage_seconds: float = 0.03,
    model_seconds: float = 0.06,
    budget: int | None = None,
    seed: int = 0,
) -> ParallelMergeResult:
    """Time the same prioritized merge search at each worker count.

    Each run gets a freshly built (cold) repository so no checkpoints
    leak between configurations; ``workers=1`` takes the sequential
    :func:`~repro.core.merge.prioritized.run_ordered_search` path and is
    the speedup baseline.
    """
    result = ParallelMergeResult(leaves=n_clean * n_extract * n_model)
    baseline_seconds = None
    for n_workers in workers:
        repo = build_delayed_merge_repo(
            n_clean=n_clean,
            n_extract=n_extract,
            n_model=n_model,
            stage_seconds=stage_seconds,
            model_seconds=model_seconds,
            seed=seed,
        )
        start = time.perf_counter()
        outcome = repo.merge(
            "pmerge",
            "master",
            "dev",
            mode="pcpr",
            search="prioritized",
            budget=budget,
            workers=n_workers,
            seed=seed,
        )
        elapsed = time.perf_counter() - start
        if baseline_seconds is None:
            baseline_seconds = elapsed
        result.rows.append(
            ParallelMergeRow(
                workers=n_workers,
                seconds=elapsed,
                speedup=baseline_seconds / elapsed if elapsed > 0 else float("inf"),
                evaluated=outcome.candidates_evaluated,
                executed=outcome.components_executed,
                reused=outcome.components_reused,
                winner_score=outcome.commit.score,
            )
        )
        result.scores[n_workers] = {
            e.path_key: e.score for e in outcome.evaluations
        }
        result.output_refs[n_workers] = {
            e.path_key: dict(e.report.stage_outputs)
            for e in outcome.evaluations
            if e.report is not None and not e.report.failed
        }
    return result
