"""Non-linear versioning (merge) experiment: regenerates Figs. 8 and 9.

For each application, a Fig. 3-shaped two-branch history is built and the
dev branch is merged into master three times (on identical fresh
repositories): with full MLCask (PC + PR), without PR, and without PCPR.
Measured per system: CPT, CSS, CET, CST (Fig. 8) and the pipeline time
composition during the merge (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.repository import MLCask
from ..workloads import ALL_WORKLOADS, apply_nonlinear_history, nonlinear_script
from .measures import MergeMeasures
from .report import format_table

DEFAULT_APPS = ("readmission", "dpm", "sa", "autolearn")

#: merge mode -> display name used in the paper's legends
MODE_LABELS = {
    "pcpr": "MLCask",
    "pc_only": "MLCask w/o PR",
    "none": "MLCask w/o PCPR",
}


@dataclass
class MergeExperimentResult:
    measures: dict = field(default_factory=dict)  # app -> mode -> MergeMeasures

    def fig8_rows(self, app: str) -> list[list]:
        rows = []
        for mode, label in MODE_LABELS.items():
            m = self.measures[app][mode]
            rows.append([
                label,
                round(m.cpt_seconds, 3),
                round(m.css_bytes / 1e6, 3),
                round(m.cet_seconds, 3),
                round(m.cst_seconds, 3),
            ])
        return rows

    def render_fig8(self) -> str:
        blocks = []
        for app in self.measures:
            blocks.append(
                format_table(
                    ["system", "CPT_s", "CSS_MB", "CET_s", "CST_s"],
                    self.fig8_rows(app),
                    title=f"Fig 8 ({app}): non-linear versioning performance",
                )
            )
        return "\n\n".join(blocks)

    def render_fig9(self) -> str:
        blocks = []
        for app in self.measures:
            rows = []
            for mode, label in MODE_LABELS.items():
                m = self.measures[app][mode]
                rows.append([
                    label,
                    round(m.cst_seconds, 3),
                    round(m.preprocessing_seconds, 3),
                    round(m.training_seconds, 3),
                ])
            blocks.append(
                format_table(
                    ["system", "storage_s", "preprocessing_s", "training_s"],
                    rows,
                    title=f"Fig 9 ({app}): time composition during merge",
                )
            )
        return "\n\n".join(blocks)

    def render_provenance(self) -> str:
        """Per-app provenance summary of the full-MLCask merge: ledger
        size and the winning model's upstream closure."""
        rows = []
        for app in self.measures:
            m = self.measures[app].get("pcpr")
            if m is None:
                continue
            rows.append([
                app,
                m.lineage_records,
                m.winner_lineage_nodes,
                m.components_executed,
                m.components_reused,
            ])
        return format_table(
            ["app", "ledger_records", "winner_closure", "executed", "reused"],
            rows,
            title="Provenance: lineage captured during the merge search",
        )

    def speedup(self, app: str) -> float:
        """CPT of w/o PCPR over CPT of full MLCask (the paper's headline
        'up to 7.8x faster' comparison)."""
        baseline = self.measures[app]["none"].cpt_seconds
        mlcask = self.measures[app]["pcpr"].cpt_seconds
        return baseline / max(mlcask, 1e-9)

    def storage_saving(self, app: str) -> float:
        baseline = self.measures[app]["none"].css_bytes
        mlcask = self.measures[app]["pcpr"].css_bytes
        return baseline / max(mlcask, 1)


def _measure_merge(app: str, mode: str, scale: float, seed: int) -> MergeMeasures:
    workload = ALL_WORKLOADS[app](scale=scale, seed=seed)
    repo = MLCask(metric=workload.metric, seed=seed)
    apply_nonlinear_history(repo, nonlinear_script(workload))

    if mode == "pcpr":
        store_before = repo.checkpoints.stats.physical_bytes
    outcome = repo.merge(workload.name, "master", "dev", mode=mode)

    measures = MergeMeasures(system=MODE_LABELS[mode])
    measures.cet_seconds = outcome.execution_seconds
    measures.cst_seconds = outcome.storage_seconds
    measures.candidates_total = outcome.candidates_total
    measures.candidates_evaluated = outcome.candidates_evaluated
    measures.components_executed = outcome.components_executed
    measures.components_reused = outcome.components_reused
    measures.winner_score = outcome.commit.score

    reports = [e.report for e in outcome.evaluations if e.report is not None]
    measures.preprocessing_seconds = sum(r.preprocessing_seconds for r in reports)
    measures.training_seconds = sum(r.training_seconds for r in reports)

    if mode == "pcpr":
        # Storage grown on the shared deduplicating engine during the merge.
        measures.css_bytes = repo.checkpoints.stats.physical_bytes - store_before
        # Provenance: the merge's full audit trail, and the upstream
        # closure of the winning model (what an auditor replays).
        measures.lineage_records = len(repo.lineage)
        winner_ref = outcome.commit.stage_outputs.get(workload.model_stage)
        if winner_ref is not None and repo.lineage.rows_for_output(winner_ref):
            measures.winner_lineage_nodes = len(
                repo.lineage_of(winner_ref)["nodes"]
            )
    else:
        # Ablations archived every candidate's outputs into fresh folders;
        # count what those folders hold.
        for evaluation in outcome.evaluations:
            if evaluation.report is None:
                continue
            for stage_report in evaluation.report.stage_reports:
                if stage_report.executed:
                    measures.css_bytes += stage_report.output_bytes
    return measures


def run_merge_experiment(
    apps=DEFAULT_APPS,
    modes=tuple(MODE_LABELS),
    scale: float = 1.0,
    seed: int = 0,
) -> MergeExperimentResult:
    result = MergeExperimentResult()
    for app in apps:
        result.measures[app] = {}
        for mode in modes:
            result.measures[app][mode] = _measure_merge(app, mode, scale, seed)
    return result
