"""Distributed-training experiment: regenerates Fig. 11 (section VII-F).

Fig. 11(a): training-loss-vs-time curves for 1/2/4/8 workers of
synchronous data-parallel SGD (simulated clock, real gradient math; the
paper used ResNet18 on physical GPUs — see DESIGN.md for the
substitution).

Fig. 11(b): the analytic pipeline-time speedup ``1/((1-p)+p/k)`` over a
grid of training-time fractions ``p`` and training speedups ``k``; the
paper highlights that p>0.9 with k=8 cuts pipeline time below a quarter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.synthetic.readmission import make_readmission
from ..ml.distributed import DistributedTrainer, pipeline_speedup
from ..ml.mlp import MLPClassifier
from ..ml.preprocess import StandardScaler
from .report import format_series, format_table

DEFAULT_WORKER_COUNTS = (1, 2, 4, 8)
DEFAULT_P_VALUES = (0.1, 0.3, 0.5, 0.7, 0.9, 0.95)
DEFAULT_K_VALUES = (1, 2, 4, 8)


@dataclass
class DistributedExperimentResult:
    traces: dict = field(default_factory=dict)  # n_workers -> TrainingTrace
    speedup_grid: dict = field(default_factory=dict)  # (p, k) -> speedup
    time_grid: list = field(default_factory=list)

    def render_fig11a(self) -> str:
        series = {}
        for n_workers, trace in self.traces.items():
            series[f"{n_workers}gpu"] = [
                trace.loss_at_time(t) for t in self.time_grid
            ]
        return format_series(
            series,
            x_values=[round(t, 3) for t in self.time_grid],
            title="Fig 11a: training loss vs simulated time (s)",
            x_label="time_s",
            precision=4,
        )

    def render_fig11b(self) -> str:
        rows = []
        for p in DEFAULT_P_VALUES:
            row = [p]
            for k in DEFAULT_K_VALUES:
                row.append(round(self.speedup_grid[(p, k)], 3))
            rows.append(row)
        return format_table(
            ["p \\ k", *[str(k) for k in DEFAULT_K_VALUES]],
            rows,
            title="Fig 11b: pipeline speedup = 1/((1-p)+p/k)",
        )


def run_distributed_experiment(
    worker_counts=DEFAULT_WORKER_COUNTS,
    n_steps: int = 150,
    n_samples: int = 800,
    seed: int = 0,
) -> DistributedExperimentResult:
    """Train the same seeded model under each worker count."""
    table = make_readmission(n_patients=n_samples, seed=seed)
    X = StandardScaler().fit_transform(
        table.numeric_matrix([
            "age", "gender", "n_prior_admissions", "length_of_stay",
            "lab_creatinine", "lab_hba1c", "charlson_index",
        ])
    )
    y = table["readmitted_30d"].astype(np.int64)

    result = DistributedExperimentResult()
    # Calibrate a shared per-batch compute time so every worker count sees
    # the same workload cost (only parallelism differs).
    probe_model = MLPClassifier(hidden_sizes=(64, 32), seed=seed)
    probe = DistributedTrainer(probe_model, n_workers=1, seed=seed)
    probe_trace = probe.train(X, y, n_steps=3, global_batch=64)
    per_batch = probe_trace.times[0]

    max_time = 0.0
    for n_workers in worker_counts:
        model = MLPClassifier(hidden_sizes=(64, 32), seed=seed)
        trainer = DistributedTrainer(model, n_workers=n_workers, seed=seed)
        trace = trainer.train(
            X, y, n_steps=n_steps, global_batch=64, compute_time_per_batch=per_batch
        )
        result.traces[n_workers] = trace
        max_time = max(max_time, trace.times[-1])

    result.time_grid = list(np.linspace(max_time / 20, max_time, 20))
    for p in DEFAULT_P_VALUES:
        for k in DEFAULT_K_VALUES:
            result.speedup_grid[(p, k)] = pipeline_speedup(p, k)
    return result


def loss_decay_ordering(result: DistributedExperimentResult) -> list[int]:
    """Worker counts ordered by loss at the earliest shared grid time —
    used by tests to assert 'more GPUs, faster decay'."""
    t = result.time_grid[max(2, len(result.time_grid) // 4)]
    return sorted(
        result.traces,
        key=lambda n: result.traces[n].loss_at_time(t),
        reverse=True,
    )
