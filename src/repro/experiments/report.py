"""ASCII rendering for experiment outputs (tables and series).

The benchmark harness prints the same rows/series the paper's figures and
tables report; these helpers keep that output consistent and readable.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """Fixed-width table with a rule under the header."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[float]],
    x_values: Sequence | None = None,
    title: str = "",
    x_label: str = "iteration",
    precision: int = 3,
) -> str:
    """Tabulate several named series against a shared x axis."""
    names = list(series)
    length = max(len(s) for s in series.values())
    xs = list(x_values) if x_values is not None else list(range(1, length + 1))
    headers = [x_label, *names]
    rows = []
    for i in range(length):
        row = [xs[i]]
        for name in names:
            values = series[name]
            row.append(round(values[i], precision) if i < len(values) else "")
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_ratio(label: str, numerator: float, denominator: float) -> str:
    if denominator <= 0:
        return f"{label}: n/a"
    return f"{label}: {numerator / denominator:.2f}x"


def indent(text: str, prefix: str = "  ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())
