"""Prioritized pipeline search experiment: regenerates Fig. 10 and Table I.

Procedure (paper section VII-E): every candidate of the merge search tree
is scored once (via a full PC+PR merge), then 100 trials of each search
method replay the search order over the known scores — "for both search
methods, we denote the process of searching for all the N pipeline
candidates ... as one trial. We perform 100 trials for both search
methods."

Fig. 10: for each search rank (1st-searched, 2nd-searched, ...), the
average end time and average/variance of the candidate score across
trials. Table I: the percentage of trials in which the *optimal* pipeline
has been found within the first 20/40/60/80/100% of searches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..core.merge.prioritized import SearchSimulator
from ..core.merge.search_space import build_merge_scope
from ..core.merge.compatibility import build_compatibility_lut, prune_incompatible
from ..core.repository import MLCask
from ..workloads import ALL_WORKLOADS, apply_nonlinear_history, nonlinear_script
from .report import format_table

DEFAULT_APPS = ("readmission", "dpm", "sa", "autolearn")
TABLE1_FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)


@dataclass
class RankPoint:
    """One Fig. 10 point: statistics at a fixed search rank."""

    rank: int
    mean_end_time: float
    mean_score: float
    var_score: float


@dataclass
class SearchExperimentResult:
    n_trials: int
    points: dict = field(default_factory=dict)  # app -> method -> [RankPoint]
    table1: dict = field(default_factory=dict)  # app -> method -> {frac: pct}
    n_candidates: dict = field(default_factory=dict)  # app -> N

    def render_fig10(self) -> str:
        blocks = []
        for app in self.points:
            rows = []
            for method in ("random", "prioritized"):
                for point in self.points[app][method]:
                    rows.append([
                        method,
                        point.rank + 1,
                        round(point.mean_end_time, 4),
                        round(point.mean_score, 4),
                        round(point.var_score, 6),
                    ])
            blocks.append(
                format_table(
                    ["method", "rank", "avg_end_time_s", "avg_score", "var_score"],
                    rows,
                    title=(
                        f"Fig 10 ({app}): prioritized vs random search, "
                        f"{self.n_trials} trials, N={self.n_candidates[app]}"
                    ),
                )
            )
        return "\n\n".join(blocks)

    def render_table1(self) -> str:
        rows = []
        for app in self.table1:
            for method in ("random", "prioritized"):
                percentages = self.table1[app][method]
                rows.append([
                    app,
                    method,
                    *(f"{percentages[frac]:.0f}%" for frac in TABLE1_FRACTIONS),
                ])
        return format_table(
            ["application", "method", "20%", "40%", "60%", "80%", "100%"],
            rows,
            title="Table I: % of trials with the optimal pipeline found",
        )


def _collect_candidate_data(app: str, scale: float, seed: int):
    """Run the real PC+PR merge once; harvest scores, costs, and scope."""
    workload = ALL_WORKLOADS[app](scale=scale, seed=seed)
    repo = MLCask(metric=workload.metric, seed=seed)
    apply_nonlinear_history(repo, nonlinear_script(workload))

    head = repo.head_commit(workload.name, "master")
    merge_head = repo.head_commit(workload.name, "dev")
    scope = build_merge_scope(
        repo.graph, repo.registry, repo.spec(workload.name), head, merge_head
    )

    outcome = repo.merge(workload.name, "master", "dev", mode="pcpr")
    leaf_scores = {
        e.path_key: e.score for e in outcome.evaluations if e.score is not None
    }
    component_costs: dict[str, list[float]] = {}
    for record in repo.checkpoints.records():
        component_costs.setdefault(record.component_id, []).append(record.run_seconds)
    mean_costs = {
        identifier: float(np.mean(values))
        for identifier, values in component_costs.items()
    }
    return scope, leaf_scores, mean_costs


def run_search_experiment(
    apps=DEFAULT_APPS,
    n_trials: int = 100,
    scale: float = 1.0,
    seed: int = 0,
) -> SearchExperimentResult:
    result = SearchExperimentResult(n_trials=n_trials)
    for app in apps:
        scope, leaf_scores, costs = _collect_candidate_data(app, scale, seed)
        lut = build_compatibility_lut(scope)
        simulator = SearchSimulator(
            scope,
            leaf_scores,
            costs,
            mark_history=True,
            prune=lambda root, _lut=lut: prune_incompatible(root, _lut),
        )
        # "Optimal pipeline found" means reaching a candidate achieving the
        # maximum score; with small test sets scores tie, and any tied-best
        # candidate is an optimal pipeline.
        best_score = max(leaf_scores.values())
        epsilon = 1e-9
        result.points[app] = {}
        result.table1[app] = {}
        n_candidates = len(leaf_scores)
        result.n_candidates[app] = n_candidates

        for method in ("random", "prioritized"):
            trials = simulator.run_trials(method, n_trials, seed=seed + 1)
            points: list[RankPoint] = []
            for rank in range(n_candidates):
                end_times = [t.steps[rank].end_time for t in trials if rank < len(t.steps)]
                scores = [t.steps[rank].score for t in trials if rank < len(t.steps)]
                points.append(
                    RankPoint(
                        rank=rank,
                        mean_end_time=float(np.mean(end_times)),
                        mean_score=float(np.mean(scores)),
                        var_score=float(np.var(scores)),
                    )
                )
            result.points[app][method] = points

            percentages = {}
            for fraction in TABLE1_FRACTIONS:
                threshold = max(1, math.ceil(fraction * n_candidates))
                found = 0
                for trial in trials:
                    first_optimal = next(
                        (
                            step.rank
                            for step in trial.steps
                            if step.score >= best_score - epsilon
                        ),
                        None,
                    )
                    if first_optimal is not None and first_optimal < threshold:
                        found += 1
                percentages[fraction] = 100.0 * found / len(trials)
            result.table1[app][method] = percentages
    return result
