"""Evaluation measures (paper section VII-B).

"The evaluation metrics to measure the performance are cumulative
execution time (CET), cumulative storage time (CST), cumulative pipeline
time (CPT), and cumulative storage size (CSS). Execution time is the time
consumption of running the computational components while storage time is
the time needed for data preparation and transfer. Storage size refers to
the total data storage used ... Pipeline time refers to the sum of
execution time and storage time."
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MergeMeasures:
    """The four cumulative metrics plus composition, for one merge run."""

    system: str
    cet_seconds: float = 0.0  # cumulative execution time
    cst_seconds: float = 0.0  # cumulative storage time
    css_bytes: int = 0  # cumulative storage size
    preprocessing_seconds: float = 0.0
    training_seconds: float = 0.0
    candidates_total: int = 0
    candidates_evaluated: int = 0
    components_executed: int = 0
    components_reused: int = 0
    winner_score: float | None = None
    # Provenance accounting (full MLCask only; the ablation arms run on
    # throwaway folder stores with no ledger attached).
    lineage_records: int = 0
    winner_lineage_nodes: int = 0

    @property
    def cpt_seconds(self) -> float:
        """Cumulative pipeline time = execution + storage."""
        return self.cet_seconds + self.cst_seconds

    def as_row(self) -> dict:
        return {
            "system": self.system,
            "CPT_s": round(self.cpt_seconds, 4),
            "CSS_MB": round(self.css_bytes / 1e6, 4),
            "CET_s": round(self.cet_seconds, 4),
            "CST_s": round(self.cst_seconds, 4),
            "preproc_s": round(self.preprocessing_seconds, 4),
            "training_s": round(self.training_seconds, 4),
            "evaluated": self.candidates_evaluated,
            "executed": self.components_executed,
            "reused": self.components_reused,
        }


@dataclass
class LinearSeries:
    """Per-iteration series for one (application, system) pair."""

    system: str
    iterations: list[int] = field(default_factory=list)
    total_seconds: list[float] = field(default_factory=list)  # cumulative
    storage_bytes: list[int] = field(default_factory=list)  # CSS per iter
    preprocessing_seconds: list[float] = field(default_factory=list)
    training_seconds: list[float] = field(default_factory=list)
    storage_seconds: list[float] = field(default_factory=list)
    scores: list = field(default_factory=list)
    flags: list[str] = field(default_factory=list)  # ok / failed / skipped
    n_executed: list[int] = field(default_factory=list)  # stages run per iter

    @property
    def final_total_seconds(self) -> float:
        return self.total_seconds[-1] if self.total_seconds else 0.0

    @property
    def final_storage_bytes(self) -> int:
        return self.storage_bytes[-1] if self.storage_bytes else 0

    @property
    def composition(self) -> dict:
        """Whole-run time composition (the Fig. 6 stacked bars)."""
        return {
            "storage": sum(self.storage_seconds),
            "preprocessing": sum(self.preprocessing_seconds),
            "training": sum(self.training_seconds),
        }

    @property
    def total_executed(self) -> int:
        """Total component executions across the run — the deterministic
        counter behind the Fig. 5 time ordering."""
        return sum(self.n_executed)
