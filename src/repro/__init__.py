"""repro: a from-scratch reproduction of MLCask (ICDE 2021).

MLCask is a Git-like end-to-end ML life-cycle management system with
non-linear version control semantics for collaborative data analytics
pipelines. This package implements the full system described in the paper
— semantic component versioning, branch/merge on pipelines, the
metric-driven merge with PC/PR search-tree pruning, prioritized pipeline
search — together with every substrate its evaluation depends on: a
ForkBase-like deduplicating storage engine, a pipeline executor with
checkpoint reuse, numpy-only ML components, the four evaluated workloads
on synthetic data, and the ModelDB/MLflow baseline policies.

Quickstart::

    from repro import MLCask, PipelineSpec
    from repro.workloads import readmission_workload

    workload = readmission_workload()
    repo = MLCask(metric="accuracy")
    repo.create_pipeline(workload.spec, workload.initial_components())
    repo.branch(workload.name, "dev")
    repo.commit(workload.name, {"model": workload.component("model", 1)}, branch="dev")
    outcome = repo.merge(workload.name, "master", "dev")
    print(outcome.commit.describe())
"""

from .core import (
    ANY_SCHEMA,
    Component,
    ComponentRegistry,
    DatasetComponent,
    ExecutionContext,
    Executor,
    LibraryComponent,
    MergeOutcome,
    MLCask,
    PipelineCommit,
    PipelineInstance,
    PipelineSpec,
    RunReport,
    SemVer,
)
from .data import Table
from .errors import (
    IncompatibleComponentsError,
    MergeError,
    MLCaskError,
    NoCandidateError,
    PipelineError,
    RepositoryError,
    StorageError,
    VersionError,
)

__version__ = "1.1.0"

__all__ = [
    "ANY_SCHEMA",
    "Component",
    "ComponentRegistry",
    "DatasetComponent",
    "ExecutionContext",
    "Executor",
    "LibraryComponent",
    "MergeOutcome",
    "MLCask",
    "PipelineCommit",
    "PipelineInstance",
    "PipelineSpec",
    "RunReport",
    "SemVer",
    "Table",
    "IncompatibleComponentsError",
    "MergeError",
    "MLCaskError",
    "NoCandidateError",
    "PipelineError",
    "RepositoryError",
    "StorageError",
    "VersionError",
    "__version__",
]
