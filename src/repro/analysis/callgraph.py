"""Lock-acquisition events and a resolvable call graph.

The walker turns every function into a flat event stream the rule
packs consume:

* :class:`AcqEvent` — a lock acquisition (``with self._lock:``,
  ``with self._rwlock.write_locked():``, ``with self._tenant_lock(t):``,
  or a ``with`` over a project ``@contextmanager`` that holds locks at
  its ``yield``), annotated with the locks already held.
* :class:`CallEvent` — every call expression, annotated with the locks
  held at the call site and, where syntactically resolvable, the callee
  (self-methods through base classes, module-level functions, and
  ``from``-imported names within the analyzed tree).

Resolution is deliberately syntactic: no imports are executed, locals
are not typed. Identity of a lock is its attribute path on its class
(``repro.hub.hub.RepositoryHub._lock``); a lock-map helper's whole
family is one identity (``...RepositoryHub._tenant_lock()``). What the
analyzer cannot resolve it ignores — rules err toward silence, and the
naming contract in :mod:`repro.analysis.conventions` is what keeps the
interesting idioms resolvable.

Context managers are analyzed at their ``yield``: the walk runs in a
small fixpoint so a helper like ``RepositoryServer._locked`` (whose
acquisition is a variable holding either RWLock side) propagates its
held-at-yield set to every ``with self._locked(mode):`` caller.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from . import conventions
from .model import SourceFile


@dataclass(frozen=True)
class Lock:
    ident: str  #: canonical identity, e.g. ``repro.hub.hub.RepositoryHub._lock``
    kind: str  #: mutex | condition | rwlock | map

    def short(self) -> str:
        parts = self.ident.split(".")
        return ".".join(parts[-2:]) if len(parts) > 1 else self.ident


@dataclass(frozen=True)
class Held:
    lock: Lock
    mode: str
    line: int  #: where it was acquired


@dataclass
class AcqEvent:
    lock: Lock
    mode: str
    line: int
    held: tuple[Held, ...]


@dataclass
class CallEvent:
    line: int
    held: tuple[Held, ...]
    resolved: str | None  #: FunctionInfo key of the callee, if known
    dotted: str | None  #: dotted source text of the callee (``time.sleep``)
    attr: str | None  #: trailing attribute name (``wait``, ``request``)
    receiver: str | None  #: canonical receiver identity, when computable


@dataclass
class FunctionInfo:
    key: str  #: ``module[.Class].name``
    module: str
    cls: str | None
    name: str
    node: ast.FunctionDef
    file: SourceFile
    is_ctxmgr: bool = False
    acquisitions: list[AcqEvent] = field(default_factory=list)
    calls: list[CallEvent] = field(default_factory=list)
    #: locks held at ``yield`` points (context managers only)
    yield_held: list[tuple[Lock, str]] = field(default_factory=list)

    @property
    def symbol(self) -> str:
        return f"{self.cls}.{self.name}" if self.cls else self.name


@dataclass
class ClassInfo:
    qual: str  #: ``module.Class``
    module: str
    name: str
    bases: list[ast.expr]
    methods: set[str] = field(default_factory=set)


def _attr_chain(expr: ast.expr) -> list[str] | None:
    """``self.a.b`` -> ``["self", "a", "b"]``; None when the base is
    not a plain name (call results, subscripts)."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


class Program:
    """Every analyzed file plus the function/class/import indexes."""

    def __init__(self, files: list[SourceFile]):
        self.files = files
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: per-module import aliases: local name -> dotted target
        self.imports: dict[str, dict[str, str]] = {}
        self._index()
        self._walk_all()

    # ------------------------------------------------------------ indexing
    def _index(self) -> None:
        for file in self.files:
            aliases: dict[str, str] = {}
            self.imports[file.module] = aliases
            is_pkg = file.path.name == "__init__.py"
            package = file.module if is_pkg else file.module.rpartition(".")[0]
            for node in ast.walk(file.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        aliases[alias.asname or alias.name.split(".")[0]] = (
                            alias.name if alias.asname else alias.name.split(".")[0]
                        )
                elif isinstance(node, ast.ImportFrom):
                    base = self._resolve_from(package, node)
                    if base is None:
                        continue
                    for alias in node.names:
                        if alias.name == "*":
                            continue
                        target = f"{base}.{alias.name}" if base else alias.name
                        aliases[alias.asname or alias.name] = target
            for node in file.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._add_function(file, node, cls=None)
                elif isinstance(node, ast.ClassDef):
                    qual = f"{file.module}.{node.name}"
                    info = ClassInfo(qual, file.module, node.name, list(node.bases))
                    self.classes[qual] = info
                    for sub in node.body:
                        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                            info.methods.add(sub.name)
                            self._add_function(file, sub, cls=node.name)

    @staticmethod
    def _resolve_from(package: str, node: ast.ImportFrom) -> str | None:
        if node.level == 0:
            return node.module
        parts = package.split(".")
        if node.level - 1 >= len(parts):
            return None
        if node.level > 1:
            parts = parts[: -(node.level - 1)]
        base = ".".join(parts)
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
        return base

    def _add_function(self, file: SourceFile, node, cls: str | None) -> None:
        key = (
            f"{file.module}.{cls}.{node.name}" if cls else f"{file.module}.{node.name}"
        )
        is_ctxmgr = any(
            (isinstance(dec, ast.Name) and dec.id == "contextmanager")
            or (isinstance(dec, ast.Attribute) and dec.attr == "contextmanager")
            for dec in node.decorator_list
        )
        self.functions[key] = FunctionInfo(
            key=key,
            module=file.module,
            cls=cls,
            name=node.name,
            node=node,
            file=file,
            is_ctxmgr=is_ctxmgr,
        )

    # ---------------------------------------------------------- resolution
    def resolve_method(self, class_qual: str, name: str, depth: int = 0) -> str | None:
        """Find ``name`` on ``class_qual`` or its (resolvable) bases."""
        if depth > 6:
            return None
        info = self.classes.get(class_qual)
        if info is None:
            return None
        if name in info.methods:
            return f"{class_qual}.{name}"
        for base in info.bases:
            base_qual = self._resolve_class_expr(info.module, base)
            if base_qual is not None:
                found = self.resolve_method(base_qual, name, depth + 1)
                if found is not None:
                    return found
        return None

    def _resolve_class_expr(self, module: str, expr: ast.expr) -> str | None:
        chain = _attr_chain(expr)
        if chain is None:
            return None
        aliases = self.imports.get(module, {})
        if len(chain) == 1:
            name = chain[0]
            if f"{module}.{name}" in self.classes:
                return f"{module}.{name}"
            target = aliases.get(name)
            return target if target in self.classes else None
        base = aliases.get(chain[0])
        if base is None:
            return None
        qual = ".".join([base, *chain[1:]])
        return qual if qual in self.classes else None

    def resolve_call(self, fn: FunctionInfo, func: ast.expr) -> str | None:
        """The FunctionInfo key a call expression dispatches to, if the
        target is within the analyzed tree; None otherwise."""
        aliases = self.imports.get(fn.module, {})
        if isinstance(func, ast.Name):
            key = f"{fn.module}.{func.id}"
            if key in self.functions:
                return key
            if key in self.classes:
                return self.resolve_method(key, "__init__")
            target = aliases.get(func.id)
            if target is not None:
                if target in self.functions:
                    return target
                if target in self.classes:
                    return self.resolve_method(target, "__init__")
            return None
        if isinstance(func, ast.Attribute):
            chain = _attr_chain(func)
            if chain is None:
                return None
            if chain[0] == "self" and len(chain) == 2 and fn.cls is not None:
                return self.resolve_method(f"{fn.module}.{fn.cls}", chain[1])
            target = aliases.get(chain[0])
            if target is not None and len(chain) >= 2:
                qual = ".".join([target, *chain[1:]])
                if qual in self.functions:
                    return qual
                owner = ".".join([target, *chain[1:-1]])
                if owner in self.classes:
                    return self.resolve_method(owner, chain[-1])
        return None

    # ------------------------------------------------------------- walking
    def _walk_all(self) -> None:
        # Context managers propagate held-at-yield sets to their
        # callers, so run to a (small, monotone) fixpoint.
        for _ in range(4):
            previous = {
                key: list(fn.yield_held) for key, fn in self.functions.items()
            }
            for fn in self.functions.values():
                walker = _FunctionWalker(self, fn)
                walker.run()
            if all(
                previous[key] == fn.yield_held
                for key, fn in self.functions.items()
            ):
                break


class _FunctionWalker:
    """One pass over one function body, tracking the held-lock stack."""

    def __init__(self, program: Program, fn: FunctionInfo):
        self.program = program
        self.fn = fn
        self.held: list[Held] = []
        self.var_acqs: dict[str, list[tuple[Lock, str]]] = {}

    def run(self) -> None:
        self.fn.acquisitions = []
        self.fn.calls = []
        self.fn.yield_held = []
        self._prescan_assignments(self.fn.node.body)
        self._visit_stmts(self.fn.node.body)

    # -------------------------------------------------- acquisition shapes
    def _lock_from_chain(self, chain: list[str], kind: str) -> Lock:
        if chain[0] == "self" and self.fn.cls is not None:
            ident = ".".join([self.fn.module, self.fn.cls, *chain[1:]])
        else:
            # function-local or module-level object; scope the identity
            # to the function so unrelated locals never alias.
            ident = ".".join([self.fn.key, *chain])
        return Lock(ident=ident, kind=kind)

    def acquisitions_of(self, expr: ast.expr) -> list[tuple[Lock, str]] | None:
        """The locks a ``with`` context expression acquires, or None if
        the expression is not a recognized lock idiom."""
        if isinstance(expr, ast.IfExp):
            body = self.acquisitions_of(expr.body)
            orelse = self.acquisitions_of(expr.orelse)
            if body is None or orelse is None:
                return None
            if (
                len(body) == 1
                and len(orelse) == 1
                and body[0][0] == orelse[0][0]
                and body[0][1] != orelse[0][1]
            ):
                return [(body[0][0], conventions.MODE_MIXED)]
            merged = list(body)
            for pair in orelse:
                if pair not in merged:
                    merged.append(pair)
            return merged
        if isinstance(expr, ast.Name):
            mapped = self.var_acqs.get(expr.id)
            if mapped is not None:
                return mapped
            kind = conventions.lock_kind_of_attr(expr.id.lower())
            if kind is not None:
                return [(self._lock_from_chain([expr.id], kind), conventions.MODE_EXCLUSIVE)]
            return None
        if isinstance(expr, ast.Attribute):
            chain = _attr_chain(expr)
            if chain is None or len(chain) < 2:
                return None
            kind = conventions.lock_kind_of_attr(chain[-1].lower())
            if kind is None:
                return None
            return [(self._lock_from_chain(chain, kind), conventions.MODE_EXCLUSIVE)]
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Attribute):
                if func.attr in (
                    conventions.RWLOCK_SHARED,
                    conventions.RWLOCK_EXCLUSIVE,
                ):
                    chain = _attr_chain(func.value)
                    if chain is not None:
                        mode = (
                            conventions.MODE_SHARED
                            if func.attr == conventions.RWLOCK_SHARED
                            else conventions.MODE_EXCLUSIVE
                        )
                        lock = self._lock_from_chain(chain, conventions.KIND_RWLOCK)
                        return [(lock, mode)]
                chain = _attr_chain(func)
                if (
                    chain is not None
                    and chain[0] == "self"
                    and len(chain) == 2
                    and conventions.is_lock_map_helper(chain[1])
                ):
                    lock = Lock(
                        ident=".".join(
                            [self.fn.module, self.fn.cls or self.fn.name, chain[1]]
                        )
                        + "()",
                        kind=conventions.KIND_MAP,
                    )
                    return [(lock, conventions.MODE_EXCLUSIVE)]
            resolved = self.program.resolve_call(self.fn, func)
            if resolved is not None:
                callee = self.program.functions.get(resolved)
                if callee is not None and callee.is_ctxmgr and callee.yield_held:
                    return list(callee.yield_held)
        return None

    def _prescan_assignments(self, body: list[ast.stmt]) -> None:
        for node in ast.walk(ast.Module(body=body, type_ignores=[])):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    acqs = self.acquisitions_of(node.value)
                    if acqs is not None:
                        self.var_acqs[target.id] = acqs

    # ----------------------------------------------------------- traversal
    def _visit_stmts(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._visit_stmt(stmt)

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are analyzed as their own functions
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._visit_with(stmt)
            return
        for expr in ast.iter_child_nodes(stmt):
            if isinstance(expr, ast.expr):
                self._visit_expr(expr)
        for attr in ("body", "orelse", "finalbody"):
            inner = getattr(stmt, attr, None)
            if inner:
                self._visit_stmts(inner)
        for handler in getattr(stmt, "handlers", ()):
            self._visit_stmts(handler.body)

    def _visit_with(self, stmt: ast.With | ast.AsyncWith) -> None:
        acquired = 0
        for item in stmt.items:
            acqs = self.acquisitions_of(item.context_expr)
            # The context expression runs before anything is acquired
            # by *this* item, but after earlier items; record its calls
            # (a lock-map helper or @contextmanager body executes here
            # with the current held set).
            self._visit_expr(item.context_expr)
            if acqs is None:
                continue
            for lock, mode in acqs:
                line = item.context_expr.lineno
                self.fn.acquisitions.append(
                    AcqEvent(lock=lock, mode=mode, line=line, held=tuple(self.held))
                )
                self.held.append(Held(lock=lock, mode=mode, line=line))
                acquired += 1
        self._visit_stmts(stmt.body)
        for _ in range(acquired):
            self.held.pop()

    def _visit_expr(self, expr: ast.expr) -> None:
        if isinstance(expr, ast.Lambda):
            return  # deferred execution; held set at call time is unknown
        if isinstance(expr, (ast.Yield, ast.YieldFrom)):
            snapshot = [(held.lock, held.mode) for held in self.held]
            for pair in snapshot:
                if pair not in self.fn.yield_held:
                    self.fn.yield_held.append(pair)
        if isinstance(expr, ast.Call):
            self._record_call(expr)
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._visit_expr(child)
            elif isinstance(child, (ast.comprehension,)):
                self._visit_expr(child.iter)
                for cond in child.ifs:
                    self._visit_expr(cond)

    def _record_call(self, call: ast.Call) -> None:
        func = call.func
        dotted = None
        attr = None
        receiver = None
        chain = _attr_chain(func)
        if chain is not None:
            dotted = ".".join(chain)
        if isinstance(func, ast.Attribute):
            attr = func.attr
            receiver_chain = _attr_chain(func.value)
            if receiver_chain is not None:
                receiver = self._lock_from_chain(
                    receiver_chain, conventions.KIND_MUTEX
                ).ident
        resolved = self.program.resolve_call(self.fn, func)
        self.fn.calls.append(
            CallEvent(
                line=call.lineno,
                held=tuple(self.held),
                resolved=resolved,
                dotted=dotted,
                attr=attr,
                receiver=receiver,
            )
        )
