"""Observability rules (OB*).

OB001  metric family name breaks the naming convention: missing the
       ``repro_`` prefix, bad characters, a counter without ``_total``,
       a non-counter with ``_total``, or a reserved Prometheus suffix.
OB002  the same family name declared with a conflicting kind or label
       set at two sites (the registry raises at runtime — the lint
       catches it before a request has to).
OB003  a ``tracer.span(...)`` result that is neither entered with
       ``with`` nor stored in a variable that is — the span would
       never close, corrupting the trace tree for the whole request.
OB004  a ``LineageRecord(...)`` construction site that omits one of the
       required provenance fields (or passes them positionally) — the
       dataclass defaults would accept the call and silently emit a
       record unanchored in the lineage DAG.
OB005  broken trace continuity: a wire-handler function (remote server,
       hub) that decodes a request and opens a span without first
       adopting the propagated trace context — every such request would
       root a disjoint trace — or a span attribute written via
       ``.set(...)`` after the span's ``with`` block closed, mutating an
       already-exported span dict.
OB006  an op in the protocol ``OPS`` table invisible to the health
       model: no default latency objective in ``DEFAULT_OP_OBJECTIVES``
       (or an objective for an op that left the table), or the per-op
       request-latency histogram children are not resolved by iterating
       ``OPS`` — either way a new RPC could ship with no SLO and no
       sliding-window percentiles, so it could never trip readiness or
       load shedding. Silent when the analyzed tree has no protocol
       module (same discovery rule as the PT pack).
"""

from __future__ import annotations

import ast

from . import conventions
from .callgraph import Program
from .model import Finding, SourceFile, enclosing_symbol

_KINDS = ("counter", "gauge", "histogram")


def _label_names(call: ast.Call) -> tuple[str, ...] | None:
    candidates: list[ast.expr] = []
    if len(call.args) >= 3:
        candidates.append(call.args[2])
    for keyword in call.keywords:
        if keyword.arg == "labels":
            candidates.append(keyword.value)
    for node in candidates:
        if isinstance(node, (ast.Tuple, ast.List)):
            labels = []
            for elt in node.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    labels.append(elt.value)
                else:
                    return None
            return tuple(labels)
    return None


def _declarations(file: SourceFile):
    """(name, kind, labels|None, line) for every family declaration."""
    for node in ast.walk(file.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _KINDS
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            # Anchor on the name literal's line: that is what the
            # finding is about, and where a suppression comment sits.
            yield (
                node.args[0].value,
                node.func.attr,
                _label_names(node),
                node.args[0].lineno,
            )


def _check_names(program: Program) -> list[Finding]:
    findings: list[Finding] = []
    for file in program.files:
        for name, kind, _, line in _declarations(file):
            problems: list[str] = []
            if not conventions.METRIC_NAME_RE.match(name):
                problems.append("must match repro_<lower_snake>")
            if kind == "counter" and not name.endswith(conventions.COUNTER_SUFFIX):
                problems.append("counters must end with _total")
            if kind != "counter" and name.endswith(conventions.COUNTER_SUFFIX):
                problems.append(f"only counters may end with _total (is a {kind})")
            for suffix in conventions.RESERVED_SUFFIXES:
                if name.endswith(suffix):
                    problems.append(f"{suffix} is reserved for exposition")
            if problems:
                findings.append(
                    Finding(
                        rule="OB001",
                        path=file.rel_path,
                        line=line,
                        symbol=enclosing_symbol(file.tree, line),
                        message=f"metric name {name!r}: " + "; ".join(problems),
                        hint="see the metric naming contract in analysis/conventions.py",
                    )
                )
    return findings


def _check_conflicts(program: Program) -> list[Finding]:
    findings: list[Finding] = []
    seen: dict[str, tuple[str, tuple[str, ...] | None, str, int]] = {}
    for file in program.files:
        for name, kind, labels, line in _declarations(file):
            previous = seen.get(name)
            if previous is None:
                seen[name] = (kind, labels, file.rel_path, line)
                continue
            prev_kind, prev_labels, prev_path, prev_line = previous
            conflict = None
            if kind != prev_kind:
                conflict = f"declared as {prev_kind} at {prev_path}:{prev_line}"
            elif (
                labels is not None
                and prev_labels is not None
                and set(labels) != set(prev_labels)
            ):
                conflict = (
                    f"declared with labels {sorted(prev_labels)} at "
                    f"{prev_path}:{prev_line}, here {sorted(labels)}"
                )
            if conflict is not None:
                findings.append(
                    Finding(
                        rule="OB002",
                        path=file.rel_path,
                        line=line,
                        symbol=enclosing_symbol(file.tree, line),
                        message=(
                            f"metric {name!r} redeclared as {kind}; {conflict}"
                        ),
                        hint=(
                            "a family has one kind and one label set; reuse "
                            "the existing declaration or rename the metric"
                        ),
                    )
                )
    return findings


def _check_spans(program: Program) -> list[Finding]:
    findings: list[Finding] = []
    for file in program.files:
        with_contexts: set[int] = set()
        with_names: set[str] = set()
        for node in ast.walk(file.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_contexts.add(id(item.context_expr))
                    if isinstance(item.context_expr, ast.Name):
                        with_names.add(item.context_expr.id)
        for node in ast.walk(file.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "span"
            ):
                continue
            if id(node) in with_contexts:
                continue
            parent_ok = False
            for candidate in ast.walk(file.tree):
                if (
                    isinstance(candidate, ast.Assign)
                    and candidate.value is node
                    and len(candidate.targets) == 1
                    and isinstance(candidate.targets[0], ast.Name)
                    and candidate.targets[0].id in with_names
                ):
                    parent_ok = True
                    break
            if parent_ok:
                continue
            findings.append(
                Finding(
                    rule="OB003",
                    path=file.rel_path,
                    line=node.lineno,
                    symbol=enclosing_symbol(file.tree, node.lineno),
                    message=(
                        "span opened but never entered: tracer.span(...) must "
                        "be used as a context manager so it closes on all paths"
                    ),
                    hint="write `with tracer.span(...):` (or enter the variable)",
                )
            )
    return findings


def _check_lineage_fields(program: Program) -> list[Finding]:
    findings: list[Finding] = []
    required = set(conventions.LINEAGE_REQUIRED_FIELDS)
    for file in program.files:
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None
            )
            if name != "LineageRecord":
                continue
            if any(keyword.arg is None for keyword in node.keywords):
                # **kwargs construction (the dict-codec path): field
                # presence is a runtime fact the AST cannot see.
                continue
            passed = {keyword.arg for keyword in node.keywords}
            missing = sorted(required - passed)
            problems: list[str] = []
            if node.args:
                problems.append(
                    "fields must be passed as keywords, not positionally"
                )
            if missing:
                problems.append(
                    "missing required provenance fields: " + ", ".join(missing)
                )
            if problems:
                findings.append(
                    Finding(
                        rule="OB004",
                        path=file.rel_path,
                        line=node.lineno,
                        symbol=enclosing_symbol(file.tree, node.lineno),
                        message="LineageRecord(...): " + "; ".join(problems),
                        hint=(
                            "every construction site names the full schema "
                            "(conventions.LINEAGE_REQUIRED_FIELDS); defaults "
                            "exist only for the back-filled amendments"
                        ),
                    )
                )
    return findings


#: Files whose functions handle raw wire payloads: the only places a
#: request's propagated trace context is available to adopt.
_HANDLER_FILES = ("remote/server.py",)
_HANDLER_DIR_PREFIXES = ("hub/",)


def _is_handler_file(rel_path: str) -> bool:
    # rel_path leads with the analyzed package's directory name
    # ("repro/remote/server.py"); the handler set is package-internal.
    _, _, inner = rel_path.partition("/")
    return inner in _HANDLER_FILES or inner.startswith(_HANDLER_DIR_PREFIXES)


def _call_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _check_handler_adoption(program: Program) -> list[Finding]:
    """OB005a: a handler function that decodes a request and opens a span
    must adopt the propagated trace context (lexically) in between —
    otherwise every remote request roots a disjoint trace and the
    cross-process join (PR 8's ``trace_forensics``) silently degrades."""
    findings: list[Finding] = []
    for file in program.files:
        if not _is_handler_file(file.rel_path):
            continue
        for func in ast.walk(file.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            span_lines: list[int] = []
            decode_lines: list[int] = []
            adopt_lines: list[int] = []
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                name = _call_name(node)
                if name == "span":
                    span_lines.append(node.lineno)
                elif name == "decode_message":
                    decode_lines.append(node.lineno)
                elif name == "adopt_remote_context":
                    adopt_lines.append(node.lineno)
            if not span_lines or not decode_lines:
                continue
            first_span = min(span_lines)
            if any(line <= first_span for line in adopt_lines):
                continue
            findings.append(
                Finding(
                    rule="OB005",
                    path=file.rel_path,
                    line=first_span,
                    symbol=enclosing_symbol(file.tree, first_span),
                    message=(
                        "handler decodes a request but opens its span "
                        "without adopting the propagated trace context — "
                        "remote requests would root disjoint traces"
                    ),
                    hint=(
                        "parse_trace_context(meta) + `with "
                        "adopt_remote_context(...):` before tracer.span "
                        "(see remote/server.py handle_bytes)"
                    ),
                )
            )
    return findings


def _check_late_attr_writes(program: Program) -> list[Finding]:
    """OB005b: ``span.set(...)`` on a statement *after* the ``with`` block
    that bound the span — the span already finished (and may already be
    exported), so the write is lost or races the exporter."""
    findings: list[Finding] = []

    def visit_block(file: SourceFile, statements: list[ast.stmt]) -> None:
        closed: set[str] = set()
        for statement in statements:
            if closed:
                for node in ast.walk(statement):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "set"
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id in closed
                    ):
                        findings.append(
                            Finding(
                                rule="OB005",
                                path=file.rel_path,
                                line=node.lineno,
                                symbol=enclosing_symbol(
                                    file.tree, node.lineno
                                ),
                                message=(
                                    f"span attribute written after the span "
                                    f"closed: "
                                    f"{node.func.value.id}.set(...) follows "
                                    f"the `with` block that finished it"
                                ),
                                hint="move the .set(...) inside the with block",
                            )
                        )
            for child in (
                getattr(statement, "body", None),
                getattr(statement, "orelse", None),
                getattr(statement, "finalbody", None),
            ):
                if isinstance(child, list) and child:
                    visit_block(file, child)
            for handler in getattr(statement, "handlers", []) or []:
                visit_block(file, handler.body)
            if isinstance(statement, (ast.With, ast.AsyncWith)):
                for item in statement.items:
                    context = item.context_expr
                    if (
                        isinstance(context, ast.Call)
                        and isinstance(context.func, ast.Attribute)
                        and context.func.attr == "span"
                        and isinstance(item.optional_vars, ast.Name)
                    ):
                        closed.add(item.optional_vars.id)

    # Recursing through `body`/`orelse`/`finalbody`/`handlers` from the
    # module body reaches every nested block (functions and classes carry
    # their statements in `body` too), each exactly once.
    for file in program.files:
        visit_block(file, file.tree.body)
    return findings


def _module_assign(file: SourceFile, name: str) -> ast.Assign | None:
    for node in file.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return node
    return None


def _find_protocol_ops(program: Program) -> tuple[dict[str, int], SourceFile] | None:
    """The op table, discovered structurally like the PT pack: the
    protocol module is whichever file assigns both OPS and WRITE_OPS."""
    for file in program.files:
        ops_node = _module_assign(file, "OPS")
        if ops_node is None or _module_assign(file, "WRITE_OPS") is None:
            continue
        if not isinstance(ops_node.value, (ast.Tuple, ast.List)):
            continue
        ops: dict[str, int] = {}
        for elt in ops_node.value.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                ops[elt.value] = elt.lineno
        return ops, file
    return None


def _check_slo_coverage(program: Program) -> list[Finding]:
    """OB006a: DEFAULT_OP_OBJECTIVES must key every protocol op (and
    nothing else) — an op without a default objective has no latency
    promise for the health model to enforce."""
    found = _find_protocol_ops(program)
    if found is None:
        return []
    ops, _ = found
    findings: list[Finding] = []
    for file in program.files:
        node = _module_assign(file, "DEFAULT_OP_OBJECTIVES")
        if node is None or not isinstance(node.value, ast.Dict):
            continue
        keyed: dict[str, int] = {}
        for key in node.value.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                keyed[key.value] = key.lineno
        for op in sorted(set(ops) - set(keyed)):
            findings.append(
                Finding(
                    rule="OB006",
                    path=file.rel_path,
                    line=node.lineno,
                    symbol=enclosing_symbol(file.tree, node.lineno),
                    message=(
                        f"op {op!r} is in the protocol OPS table but has "
                        "no default latency objective — the health model "
                        "cannot judge or shed what it has no promise for"
                    ),
                    hint="add the op to DEFAULT_OP_OBJECTIVES (obs/slo.py)",
                )
            )
        for op in sorted(set(keyed) - set(ops)):
            findings.append(
                Finding(
                    rule="OB006",
                    path=file.rel_path,
                    line=keyed[op],
                    symbol=enclosing_symbol(file.tree, keyed[op]),
                    message=(
                        f"default objective for op {op!r} which is not in "
                        "the protocol OPS table (renamed or removed op?)"
                    ),
                    hint="keep DEFAULT_OP_OBJECTIVES keys aligned with OPS",
                )
            )
    return findings


def _ops_covering_names(file: SourceFile) -> set[str]:
    """Names whose value enumerates (at least) every protocol op:
    ``OPS`` itself plus any ``x = (*OPS, ...)``-shaped alias."""
    names = {"OPS"}
    grew = True
    while grew:
        grew = False
        for node in ast.walk(file.tree):
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id not in names
                and isinstance(node.value, (ast.Tuple, ast.List))
            ):
                continue
            for elt in node.value.elts:
                if (
                    isinstance(elt, ast.Starred)
                    and isinstance(elt.value, ast.Name)
                    and elt.value.id in names
                ):
                    names.add(node.targets[0].id)
                    grew = True
    return names


def _check_histogram_coverage(program: Program) -> list[Finding]:
    """OB006b: a request-latency histogram with an ``op`` label must
    resolve per-op children by iterating the OPS table — an explicit
    subset would leave new ops without sliding-window percentiles."""
    if _find_protocol_ops(program) is None:
        return []
    findings: list[Finding] = []
    for file in program.files:
        latency_vars: dict[str, int] = {}
        for node in ast.walk(file.tree):
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Attribute)
                and node.value.func.attr == "histogram"
                and node.value.args
                and isinstance(node.value.args[0], ast.Constant)
                and isinstance(node.value.args[0].value, str)
            ):
                continue
            name = node.value.args[0].value
            labels = _label_names(node.value) or ()
            if name.endswith("_seconds") and "op" in labels:
                latency_vars[node.targets[0].id] = node.lineno
        if not latency_vars:
            continue
        covering = _ops_covering_names(file)
        for var, line in latency_vars.items():
            covered = False
            for node in ast.walk(file.tree):
                if not (
                    isinstance(node, ast.DictComp)
                    and isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Attribute)
                    and node.value.func.attr == "labels"
                    and isinstance(node.value.func.value, ast.Name)
                    and node.value.func.value.id == var
                ):
                    continue
                for generator in node.generators:
                    if (
                        isinstance(generator.iter, ast.Name)
                        and generator.iter.id in covering
                    ):
                        covered = True
            if not covered:
                findings.append(
                    Finding(
                        rule="OB006",
                        path=file.rel_path,
                        line=line,
                        symbol=enclosing_symbol(file.tree, line),
                        message=(
                            "per-op latency histogram children are not "
                            "resolved by iterating the protocol OPS table — "
                            "a new op would serve without percentiles"
                        ),
                        hint=(
                            "build the child map with a comprehension over "
                            "OPS (or an `(*OPS, ...)` alias), as "
                            "remote/server.py does for repro_request_seconds"
                        ),
                    )
                )
    return findings


def check(program: Program) -> list[Finding]:
    return (
        _check_names(program)
        + _check_conflicts(program)
        + _check_spans(program)
        + _check_lineage_fields(program)
        + _check_handler_adoption(program)
        + _check_late_attr_writes(program)
        + _check_slo_coverage(program)
        + _check_histogram_coverage(program)
    )


__all__ = ["check"]
