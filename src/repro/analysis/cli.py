"""The ``repro lint`` verb (argument wiring lives in :mod:`repro.cli`)."""

from __future__ import annotations

import sys
from pathlib import Path

from .model import Baseline
from .report import RULES, run_lint

#: Baseline filename looked up at the analysis root's repo (cwd) by default.
DEFAULT_BASELINE = "lint-baseline.json"


def default_root() -> Path:
    """The installed ``repro`` package directory (lint's default target)."""
    import repro

    return Path(repro.__file__).resolve().parent


def run(args, out=sys.stdout) -> int:
    """Handler behind ``repro lint``; returns the process exit code."""
    if getattr(args, "list_rules", False):
        for rule_id in sorted(RULES):
            print(f"{rule_id}  {RULES[rule_id]}", file=out)
        return 0

    root = Path(args.path) if getattr(args, "path", None) else default_root()
    if not root.is_dir():
        print(f"error: not a directory: {root}", file=out)
        return 2

    rules = None
    if getattr(args, "rule", None):
        rules = [part.strip() for part in args.rule.split(",") if part.strip()]
        unknown = [
            rule
            for rule in rules
            if not any(known.startswith(rule) for known in RULES)
        ]
        if unknown:
            print(f"error: unknown rule(s): {', '.join(unknown)}", file=out)
            return 2

    baseline_path = (
        Path(args.baseline)
        if getattr(args, "baseline", None)
        else Path(DEFAULT_BASELINE)
    )
    baseline = None
    if not getattr(args, "no_baseline", False):
        baseline = Baseline.load(baseline_path)

    if getattr(args, "write_baseline", False):
        raw = run_lint(root, baseline=None, rules=rules)
        Baseline.write(
            baseline_path, raw.findings, justification="grandfathered at baseline"
        )
        print(
            f"wrote {len(raw.findings)} finding(s) to {baseline_path}",
            file=out,
        )
        return 0

    result = run_lint(root, baseline=baseline, rules=rules)
    if getattr(args, "json", False):
        print(result.render_json(), file=out)
    else:
        print(result.render_text(), file=out)
    return 0 if result.ok else 1
