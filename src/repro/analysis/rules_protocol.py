"""Protocol/schema drift rules (PT*).

The op table in ``remote/protocol.py`` is the single authority for the
wire protocol; these rules cross-reference every other party against it
so an op added (or renamed) on one side without the matching server
handler, request validation, read/write classification, or typed-error
registration fails the lint instead of failing a peer at runtime.

PT001  op listed in ``OPS`` with no ``_op_<name>`` handler method.
PT002  ``_op_<name>`` handler for an op not listed in ``OPS``.
PT003  handler reads request ``meta`` but ``validate_request`` has no
       arm for its op (unvalidated input reaches the handler).
PT004  op classification set (``WRITE_OPS``, ``CACHEABLE_OPS``,
       ``PREFLIGHT_OPS``, ...) names an op outside ``OPS``.
PT005  client call site sends an op not listed in ``OPS``.
PT006  handler for a non-``WRITE_OPS`` op calls a mutating repository
       operation (would run under the shared lock side).
PT007  error class used in hub admission denials that is neither in
       ``TYPED_ERRORS`` nor special-cased by ``raise_remote_error``
       (the denial would reach clients untyped).
PT008  protocol module does not pin an integer ``PROTOCOL_VERSION``.

Discovery is structural, not path-based: the *protocol module* is
whichever analyzed module assigns both ``OPS`` and ``WRITE_OPS``; a
*handler class* is any class with ``_op_*`` methods. Absent a protocol
module, the pack is silent (the tree under analysis has no protocol).
"""

from __future__ import annotations

import ast
import re

from .callgraph import Program
from .model import Finding, SourceFile, enclosing_symbol

#: Module-level names that classify ops and must stay within OPS.
_OP_SET_RE = re.compile(r"^[A-Z][A-Z_]*OPS$")

#: Repository mutations a read-side handler must never perform.
_MUTATING_ATTRS = frozenset(
    {
        "import_content",
        "import_commits",
        "import_specs",
        "import_record",
        "import_chunk",
        "set_head",
        "prune",
        "discard",
    }
)

_HANDLER_PREFIX = "_op_"


def _str_elements(node: ast.expr) -> list[tuple[str, int]] | None:
    """String constants of a tuple/list/set/frozenset(...) literal."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("frozenset", "set", "tuple") and node.args:
            return _str_elements(node.args[0])
        return None
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        out = []
        for elt in node.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                out.append((elt.value, elt.lineno))
            else:
                return None
        return out
    return None


def _module_assign(file: SourceFile, name: str) -> ast.Assign | None:
    for node in file.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return node
    return None


class _ProtocolFacts:
    """Everything extracted from the protocol module."""

    def __init__(self, file: SourceFile):
        self.file = file
        ops_node = _module_assign(file, "OPS")
        self.ops: dict[str, int] = {}
        self.ops_line = ops_node.lineno if ops_node else 1
        if ops_node is not None:
            for value, line in _str_elements(ops_node.value) or []:
                self.ops[value] = line
        self.typed_errors: set[str] = set()
        typed = _module_assign(file, "TYPED_ERRORS")
        if typed is not None:
            for node in ast.walk(typed.value):
                if isinstance(node, ast.Name) and node.id[:1].isupper():
                    self.typed_errors.add(node.id)
        self.special_cased: set[str] = set()
        self.has_version = False
        for node in file.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id == "PROTOCOL_VERSION"
                        and isinstance(node.value, ast.Constant)
                        and isinstance(node.value.value, int)
                    ):
                        self.has_version = True
            if isinstance(node, ast.FunctionDef) and node.name == "raise_remote_error":
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Compare):
                        for comparator in sub.comparators:
                            if isinstance(comparator, ast.Constant) and isinstance(
                                comparator.value, str
                            ):
                                self.special_cased.add(comparator.value)


def _find_protocol(program: Program) -> _ProtocolFacts | None:
    for file in program.files:
        if (
            _module_assign(file, "OPS") is not None
            and _module_assign(file, "WRITE_OPS") is not None
        ):
            return _ProtocolFacts(file)
    return None


def _handler_classes(program: Program) -> dict[str, list]:
    """op name -> [(FunctionInfo, reads_meta)] over every handler class."""
    handlers: dict[str, list] = {}
    for fn in program.functions.values():
        if fn.cls is None or not fn.name.startswith(_HANDLER_PREFIX):
            continue
        op = fn.name[len(_HANDLER_PREFIX) :]
        args = fn.node.args.args
        meta_param = args[1].arg if len(args) > 1 else None
        reads_meta = False
        if meta_param is not None:
            for node in ast.walk(fn.node):
                if (
                    isinstance(node, ast.Name)
                    and node.id == meta_param
                    and isinstance(node.ctx, ast.Load)
                ):
                    reads_meta = True
                    break
        handlers.setdefault(op, []).append((fn, reads_meta))
    return handlers


def _validated_ops(program: Program, ops: set[str]) -> set[str]:
    validated: set[str] = set()
    for fn in program.functions.values():
        if fn.name != "validate_request":
            continue
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and node.value in ops
            ):
                validated.add(node.value)
    return validated


def _client_op_literals(file: SourceFile) -> list[tuple[str, int]]:
    """Every ``{"op": "<x>"}`` literal and ``...["op"] = "<x>"`` assignment."""
    out: list[tuple[str, int]] = []
    for node in ast.walk(file.tree):
        if isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if (
                    isinstance(key, ast.Constant)
                    and key.value == "op"
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ):
                    out.append((value.value, value.lineno))
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and target.slice.value == "op"
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, str)
                ):
                    out.append((node.value.value, node.lineno))
    return out


def check(program: Program) -> list[Finding]:
    facts = _find_protocol(program)
    if facts is None or not facts.ops:
        return []
    findings: list[Finding] = []
    ops = set(facts.ops)
    handlers = _handler_classes(program)

    # PT008 -----------------------------------------------------------------
    if not facts.has_version:
        findings.append(
            Finding(
                rule="PT008",
                path=facts.file.rel_path,
                line=facts.ops_line,
                symbol="<module>",
                message="protocol module does not pin an integer PROTOCOL_VERSION",
                hint="declare PROTOCOL_VERSION so peers can refuse mismatches loudly",
            )
        )

    # PT001 / PT002 ---------------------------------------------------------
    if handlers:
        for op, line in facts.ops.items():
            if op not in handlers:
                findings.append(
                    Finding(
                        rule="PT001",
                        path=facts.file.rel_path,
                        line=line,
                        symbol="<module>",
                        message=f"op {op!r} is in OPS but no _op_{op} handler exists",
                        hint=f"add _op_{op} to the server class or drop the op",
                    )
                )
        for op, sites in handlers.items():
            if op not in ops:
                fn = sites[0][0]
                findings.append(
                    Finding(
                        rule="PT002",
                        path=fn.file.rel_path,
                        line=fn.node.lineno,
                        symbol=fn.symbol,
                        message=(
                            f"handler _op_{op} exists but {op!r} is not in OPS; "
                            "clients can never reach it and validation skips it"
                        ),
                        hint="add the op to OPS (and validate_request) or remove it",
                    )
                )

    # PT003 -----------------------------------------------------------------
    validated = _validated_ops(program, ops)
    for op, sites in handlers.items():
        if op not in ops:
            continue  # already PT002
        for fn, reads_meta in sites:
            if reads_meta and op not in validated:
                findings.append(
                    Finding(
                        rule="PT003",
                        path=fn.file.rel_path,
                        line=fn.node.lineno,
                        symbol=fn.symbol,
                        message=(
                            f"handler _op_{op} reads request meta but "
                            f"validate_request has no arm for {op!r}"
                        ),
                        hint="add a validate_request arm checking the fields read",
                    )
                )

    # PT004 -----------------------------------------------------------------
    for file in program.files:
        for node in file.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (
                    isinstance(target, ast.Name)
                    and _OP_SET_RE.match(target.id)
                    and target.id != "OPS"
                ):
                    continue
                for value, line in _str_elements(node.value) or []:
                    if value not in ops:
                        findings.append(
                            Finding(
                                rule="PT004",
                                path=file.rel_path,
                                line=line,
                                symbol="<module>",
                                message=(
                                    f"{target.id} classifies op {value!r} "
                                    "which is not in OPS"
                                ),
                                hint="classification sets must stay within OPS",
                            )
                        )

    # PT005 -----------------------------------------------------------------
    for file in program.files:
        if file is facts.file:
            continue
        for value, line in _client_op_literals(file):
            if value not in ops:
                findings.append(
                    Finding(
                        rule="PT005",
                        path=file.rel_path,
                        line=line,
                        symbol=enclosing_symbol(file.tree, line),
                        message=f"request sends op {value!r} which is not in OPS",
                        hint="add the op to OPS and the server before using it",
                    )
                )

    # PT006 -----------------------------------------------------------------
    write_ops: set[str] = set()
    write_node = _module_assign(facts.file, "WRITE_OPS")
    if write_node is not None:
        write_ops = {v for v, _ in _str_elements(write_node.value) or []}
    for op, sites in handlers.items():
        if op in write_ops or op not in ops:
            continue
        for fn, _ in sites:
            for node in ast.walk(fn.node):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATING_ATTRS
                ):
                    findings.append(
                        Finding(
                            rule="PT006",
                            path=fn.file.rel_path,
                            line=node.lineno,
                            symbol=fn.symbol,
                            message=(
                                f"read-classified op {op!r} calls mutating "
                                f"{node.func.attr}() (runs under the shared "
                                "lock side)"
                            ),
                            hint="add the op to WRITE_OPS or drop the mutation",
                        )
                    )

    # PT007 -----------------------------------------------------------------
    known = facts.typed_errors | facts.special_cased | {"RemoteError"}
    for file in program.files:
        node = _module_assign(file, "_DENIAL_REASONS")
        if node is None:
            continue
        for sub in ast.walk(node.value):
            if isinstance(sub, ast.Name) and sub.id[:1].isupper():
                if sub.id not in known:
                    findings.append(
                        Finding(
                            rule="PT007",
                            path=file.rel_path,
                            line=sub.lineno,
                            symbol="<module>",
                            message=(
                                f"denial error {sub.id} is not in TYPED_ERRORS "
                                "and not special-cased by raise_remote_error; "
                                "clients would see it untyped"
                            ),
                            hint="register the class in protocol.TYPED_ERRORS",
                        )
                    )
    return findings


__all__ = ["check"]
