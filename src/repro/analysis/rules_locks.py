"""Lock-discipline rules (LK*).

LK001  lock-order inversion: two locks acquired in both orders anywhere
       in the (resolvable) call graph — a potential deadlock.
LK002  blocking call under a mutex: file/socket I/O, sleeps, or the
       project's persistence helpers reached while a plain mutex or
       condition is held. RWLock sides and lock-map members are exempt
       by design (see :mod:`repro.analysis.conventions`).
LK003  exclusive acquisition nested inside a shared hold of the same
       reader-writer lock (self-deadlock under writer preference).
LK004  ``.wait()`` on something other than the held lock while a lock
       is held (waiting on an Event under a mutex starves every other
       user of that mutex).
"""

from __future__ import annotations

from . import conventions
from .callgraph import CallEvent, FunctionInfo, Lock, Program
from .model import Finding

#: Lock kinds LK002/LK004 consider "service-wide mutual exclusion".
_BLOCKING_SENSITIVE_KINDS = (conventions.KIND_MUTEX, conventions.KIND_CONDITION)


def _is_blocking_call(event: CallEvent) -> str | None:
    """A human-readable description of why a call blocks, or None."""
    if event.dotted is not None:
        if event.dotted in conventions.BLOCKING_CALLS:
            return event.dotted
        parts = event.dotted.split(".")
        for width in (2, 3):
            tail = ".".join(parts[-width:])
            if tail in conventions.BLOCKING_DOTTED:
                return tail
        if parts[-1] in conventions.BLOCKING_CALLS and len(parts) == 1:
            return parts[-1]
    if event.attr is not None and event.attr in conventions.BLOCKING_ATTRS:
        return f".{event.attr}()"
    return None


class _GraphFacts:
    """Memoized transitive facts over the call graph."""

    def __init__(self, program: Program):
        self.program = program
        self._acquires: dict[str, dict[Lock, tuple[int, tuple[str, ...]]]] = {}
        self._blocks: dict[str, list[tuple[str, int, tuple[str, ...]]]] = {}

    def transitive_acquires(
        self, key: str, _stack: frozenset[str] = frozenset()
    ) -> dict[Lock, tuple[int, tuple[str, ...]]]:
        """Locks a call to ``key`` may acquire, with one witness
        (line in ``key``, call chain of symbols) each."""
        if key in self._acquires:
            return self._acquires[key]
        if key in _stack:
            return {}
        fn = self.program.functions.get(key)
        if fn is None:
            return {}
        out: dict[Lock, tuple[int, tuple[str, ...]]] = {}
        for event in fn.acquisitions:
            out.setdefault(event.lock, (event.line, (fn.symbol,)))
        stack = _stack | {key}
        for call in fn.calls:
            if call.resolved is None or call.resolved == key:
                continue
            for lock, (_, chain) in self.transitive_acquires(
                call.resolved, stack
            ).items():
                out.setdefault(lock, (call.line, (fn.symbol, *chain)))
        self._acquires[key] = out
        return out

    def may_block(
        self, key: str, _stack: frozenset[str] = frozenset()
    ) -> list[tuple[str, int, tuple[str, ...]]]:
        """Blocking operations a call to ``key`` may reach:
        ``(description, line in key, call chain)``."""
        if key in self._blocks:
            return self._blocks[key]
        if key in _stack:
            return []
        fn = self.program.functions.get(key)
        if fn is None:
            return []
        out: list[tuple[str, int, tuple[str, ...]]] = []
        for event in fn.calls:
            desc = _is_blocking_call(event)
            if desc is not None:
                out.append((desc, event.line, (fn.symbol,)))
        stack = _stack | {key}
        for call in fn.calls:
            if call.resolved is None or call.resolved == key:
                continue
            for desc, _, chain in self.may_block(call.resolved, stack)[:3]:
                out.append((desc, call.line, (fn.symbol, *chain)))
        self._blocks[key] = out[:8]
        return self._blocks[key]


def _order_edges(
    program: Program, facts: _GraphFacts
) -> dict[tuple[Lock, Lock], tuple[FunctionInfo, int, tuple[str, ...]]]:
    """outer-lock -> inner-lock edges with one witness each."""
    edges: dict[tuple[Lock, Lock], tuple[FunctionInfo, int, tuple[str, ...]]] = {}
    for fn in program.functions.values():
        for event in fn.acquisitions:
            for held in event.held:
                if held.lock != event.lock:
                    edges.setdefault(
                        (held.lock, event.lock), (fn, event.line, (fn.symbol,))
                    )
        for call in fn.calls:
            if call.resolved is None or not call.held:
                continue
            for lock, (_, chain) in facts.transitive_acquires(call.resolved).items():
                for held in call.held:
                    if held.lock != lock:
                        edges.setdefault(
                            (held.lock, lock), (fn, call.line, (fn.symbol, *chain))
                        )
    return edges


def _cycles(edges: dict) -> list[list[Lock]]:
    """Strongly connected components of size > 1 in the lock graph."""
    graph: dict[Lock, set[Lock]] = {}
    for outer, inner in edges:
        graph.setdefault(outer, set()).add(inner)
        graph.setdefault(inner, set())
    index: dict[Lock, int] = {}
    low: dict[Lock, int] = {}
    on_stack: set[Lock] = set()
    stack: list[Lock] = []
    sccs: list[list[Lock]] = []
    counter = [0]

    def strongconnect(node: Lock) -> None:
        index[node] = low[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for succ in graph[node]:
            if succ not in index:
                strongconnect(succ)
                low[node] = min(low[node], low[succ])
            elif succ in on_stack:
                low[node] = min(low[node], index[succ])
        if low[node] == index[node]:
            scc: list[Lock] = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                scc.append(member)
                if member == node:
                    break
            if len(scc) > 1:
                sccs.append(sorted(scc, key=lambda lock: lock.ident))

    for node in sorted(graph, key=lambda lock: lock.ident):
        if node not in index:
            strongconnect(node)
    return sccs


def _chain_text(chain: tuple[str, ...]) -> str:
    return " -> ".join(chain)


def check(program: Program) -> list[Finding]:
    facts = _GraphFacts(program)
    findings: list[Finding] = []

    # ---------------------------------------------------- LK001: inversions
    edges = _order_edges(program, facts)
    for scc in _cycles(edges):
        members = set(scc)
        witnesses = []
        for (outer, inner), (fn, line, chain) in sorted(
            edges.items(), key=lambda kv: (kv[1][0].file.rel_path, kv[1][1])
        ):
            if outer in members and inner in members:
                witnesses.append((outer, inner, fn, line, chain))
        if not witnesses:
            continue
        first = witnesses[0]
        names = ", ".join(lock.short() for lock in scc)
        detail = "; ".join(
            f"{outer.short()} -> {inner.short()} at {fn.file.rel_path}:{line}"
            f" ({_chain_text(chain)})"
            for outer, inner, fn, line, chain in witnesses[:4]
        )
        findings.append(
            Finding(
                rule="LK001",
                path=first[2].file.rel_path,
                line=first[3],
                symbol=first[2].symbol,
                message=f"lock-order inversion between {names}: {detail}",
                hint=(
                    "pick one global order for these locks and acquire them in "
                    "that order everywhere, or release the outer lock before "
                    "taking the inner one"
                ),
            )
        )

    for fn in program.functions.values():
        # ------------------------------------------- LK002: blocking calls
        reported: set[int] = set()
        for call in fn.calls:
            sensitive = [
                held
                for held in call.held
                if held.lock.kind in _BLOCKING_SENSITIVE_KINDS
            ]
            if not sensitive:
                continue
            lock_name = sensitive[0].lock.short()
            desc = _is_blocking_call(call)
            if desc is not None and call.attr != "wait" and call.line not in reported:
                reported.add(call.line)
                findings.append(
                    Finding(
                        rule="LK002",
                        path=fn.file.rel_path,
                        line=call.line,
                        symbol=fn.symbol,
                        message=f"blocking call {desc} while holding {lock_name}",
                        hint=(
                            "move the blocking operation outside the lock: "
                            "snapshot state under the lock, do the I/O after "
                            "releasing it (see docs/invariants.md)"
                        ),
                    )
                )
                continue
            if call.resolved is not None and call.line not in reported:
                blocked = facts.may_block(call.resolved)
                if blocked:
                    desc, _, chain = blocked[0]
                    reported.add(call.line)
                    findings.append(
                        Finding(
                            rule="LK002",
                            path=fn.file.rel_path,
                            line=call.line,
                            symbol=fn.symbol,
                            message=(
                                f"call while holding {lock_name} reaches blocking "
                                f"{desc} via {_chain_text((fn.symbol, *chain))}"
                            ),
                            hint=(
                                "move the call outside the lock, or restructure "
                                "the callee so its I/O happens outside"
                            ),
                        )
                    )

        # ------------------------------- LK003: exclusive inside shared RW
        for event in fn.acquisitions:
            if event.mode != conventions.MODE_EXCLUSIVE:
                continue
            for held in event.held:
                if held.lock == event.lock and held.mode in (
                    conventions.MODE_SHARED,
                    conventions.MODE_MIXED,
                ):
                    findings.append(
                        Finding(
                            rule="LK003",
                            path=fn.file.rel_path,
                            line=event.line,
                            symbol=fn.symbol,
                            message=(
                                f"exclusive acquisition of {event.lock.short()} "
                                "nested inside a shared hold of the same lock"
                            ),
                            hint=(
                                "writer preference makes read->write upgrades "
                                "deadlock; acquire write_locked() up front"
                            ),
                        )
                    )

        # ---------------------------------------- LK004: wait under a lock
        for call in fn.calls:
            if call.attr != "wait" or not call.held:
                continue
            held_idents = {held.lock.ident for held in call.held}
            if call.receiver is not None and call.receiver in held_idents:
                continue  # Condition.wait on the held condition: blessed
            sensitive = [
                held
                for held in call.held
                if held.lock.kind in _BLOCKING_SENSITIVE_KINDS
            ]
            if not sensitive:
                continue
            findings.append(
                Finding(
                    rule="LK004",
                    path=fn.file.rel_path,
                    line=call.line,
                    symbol=fn.symbol,
                    message=(
                        f"wait() on {call.dotted or 'an object'} while holding "
                        f"{sensitive[0].lock.short()}"
                    ),
                    hint=(
                        "waiting under a mutex stalls every other holder; "
                        "release the lock first (the single-flight and hub "
                        "pending-event patterns show how)"
                    ),
                )
            )
    return findings


__all__ = ["check"]
