"""Running the rule packs and rendering/baselining the findings."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from . import rules_locks, rules_obs, rules_protocol
from .callgraph import Program
from .model import Baseline, Finding, SourceFile, load_source_tree

#: rule id prefix -> pack, in reporting order.
RULE_PACKS = (
    ("LK", rules_locks.check, "lock discipline"),
    ("PT", rules_protocol.check, "protocol drift"),
    ("OB", rules_obs.check, "observability"),
)

#: Every rule id with a one-line description (``repro lint --list-rules``).
RULES: dict[str, str] = {
    "LK001": "lock-order inversion (potential deadlock)",
    "LK002": "blocking call (file/socket I/O, sleep) under a mutex",
    "LK003": "exclusive acquisition nested inside a shared RWLock hold",
    "LK004": "wait() on a foreign object while holding a lock",
    "PT001": "op in OPS without a server handler",
    "PT002": "server handler for an op missing from OPS",
    "PT003": "handler reads meta without a validate_request arm",
    "PT004": "op classification set names an op outside OPS",
    "PT005": "client call site sends an op outside OPS",
    "PT006": "read-classified handler performs a mutation",
    "PT007": "hub denial error missing typed-error registration",
    "PT008": "protocol module lacks an integer PROTOCOL_VERSION",
    "OB001": "metric family name breaks the repro_* convention",
    "OB002": "metric family redeclared with conflicting kind/labels",
    "OB003": "tracer span opened but never entered",
    "OB004": "lineage record constructed without the full provenance schema",
    "OB005": "trace continuity broken: unadopted wire context or a span "
    "attribute written after the span closed",
    "OB006": "protocol op invisible to the health model: no default SLO "
    "objective or no OPS-driven latency histogram coverage",
}


@dataclass
class LintResult:
    """Outcome of one analysis run, after suppressions and baseline."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    files: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "files": self.files,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def render_text(self) -> str:
        lines = [finding.render() for finding in self.findings]
        summary = (
            f"{len(self.findings)} finding(s) in {self.files} file(s)"
            f" ({self.suppressed} suppressed, {self.baselined} baselined)"
        )
        if lines:
            return "\n".join([*lines, summary])
        return "lint clean: " + summary

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def run_rules(files: list[SourceFile]) -> list[Finding]:
    """All raw findings over already-loaded sources (no filtering)."""
    program = Program(files)
    findings: list[Finding] = []
    for _, pack, _ in RULE_PACKS:
        findings.extend(pack(program))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def run_lint(
    root: Path,
    baseline: Baseline | None = None,
    rules: list[str] | None = None,
    package: str | None = None,
) -> LintResult:
    """Analyze the package at ``root`` and apply suppressions/baseline.

    ``rules`` filters to specific rule ids or prefixes (``LK``,
    ``LK002``); ``baseline`` grandfathers findings by fingerprint.
    """
    files = load_source_tree(root, package=package)
    by_path = {file.rel_path: file for file in files}
    result = LintResult(files=len(files))
    for finding in run_rules(files):
        if rules and not any(finding.rule.startswith(rule) for rule in rules):
            continue
        source = by_path.get(finding.path)
        if source is not None and source.is_suppressed(finding.rule, finding.line):
            result.suppressed += 1
            continue
        if baseline is not None and baseline.contains(finding):
            result.baselined += 1
            continue
        result.findings.append(finding)
    return result
