"""The naming contract between the codebase and the analyzer.

The lock-discipline rules do not guess: the patterns below are the
documented, stable convention the rest of ``src/repro`` promises to
follow (and the analyzer promises to recognize). Code that names a lock
outside this grammar is invisible to the lint — treat an addition here
as an API change, not a tweak.

Lock idioms recognized
----------------------

``with self._lock:`` (and ``_count_lock``, ``_config_lock``, ...)
    Any instance attribute matching :data:`MUTEX_ATTR_RE` entered
    directly as a context manager is a **plain mutex** (``Lock`` /
    ``RLock``). Identity is ``Module.Class.<attr>`` — one lock per
    attribute per class.

``with self._cond:`` / ``with self._work:``
    Attributes matching :data:`CONDITION_ATTR_RE` are **conditions**
    (``threading.Condition``). They count as exclusive mutexes for
    ordering purposes; ``.wait()`` on the condition you hold is the
    one blessed blocking call under it.

``with self._rwlock.read_locked():`` / ``.write_locked():``
    An attribute matching :data:`RWLOCK_ATTR_RE` whose
    :data:`RWLOCK_SHARED` / :data:`RWLOCK_EXCLUSIVE` method is entered
    is a **reader-writer lock** acquired in shared/exclusive mode
    (:class:`repro.remote.server.RWLock` is the one implementation).

``with self._tenant_lock(name):``
    A method matching :data:`LOCK_MAP_RE` is a **lock-map helper**: it
    returns one mutex out of a keyed family (per-tenant, per-digest).
    The whole family shares one identity, ``Module.Class.<method>()``
    — lock-order rules treat any two members as the same rank. The
    helper body itself runs *before* the acquisition, so locks it
    takes internally are not "held" by the caller.

``@contextmanager`` helpers (``_locked(mode)``, ``maintenance()``)
    Project context managers are analyzed at their ``yield``: whatever
    locks are held there are held by every ``with`` over the helper.

Blocking-call vocabulary
------------------------

:data:`BLOCKING_CALLS` / :data:`BLOCKING_ATTRS` name the operations the
LK002 rule considers blocking (file I/O, socket I/O, sleeps, and the
project's own persistence helpers). RWLock sides and lock-map members
are exempt from LK002 by design: the per-repo write lock *is* the
designed exclusion point for persistence, and a lock-map member only
serializes one tenant/digest, not the service.

Metric naming
-------------

Families are ``repro_<noun>[_<noun>...]`` (:data:`METRIC_NAME_RE`);
counters end ``_total``; gauges and histograms must not. A family name
is declared with one kind and one label set, everywhere.
"""

from __future__ import annotations

import re

#: Plain mutex attributes: ``_lock``, ``_count_lock``, ``_config_lock``...
MUTEX_ATTR_RE = re.compile(r"^_(?:[a-z0-9]+_)*lock$")

#: Condition attributes (``threading.Condition``).
CONDITION_ATTR_RE = re.compile(r"^_(?:cond|work)$")

#: Reader-writer lock attributes.
RWLOCK_ATTR_RE = re.compile(r"^_rw(?:lock)?$")

#: RWLock acquisition method names (the contract of
#: :class:`repro.remote.server.RWLock`).
RWLOCK_SHARED = "read_locked"
RWLOCK_EXCLUSIVE = "write_locked"

#: Lock-map helper methods: ``_tenant_lock``, ``_digest_lock``, ... The
#: plain ``_lock`` attribute is matched by MUTEX_ATTR_RE first; this
#: pattern requires a keyed prefix.
LOCK_MAP_RE = re.compile(r"^_[a-z0-9]+(?:_[a-z0-9]+)*_lock$")

#: Lock kinds (the ``kind`` of :class:`repro.analysis.callgraph.Lock`).
KIND_MUTEX = "mutex"
KIND_CONDITION = "condition"
KIND_RWLOCK = "rwlock"
KIND_MAP = "map"

#: Acquisition modes.
MODE_EXCLUSIVE = "exclusive"
MODE_SHARED = "shared"
#: A context manager that acquires one of several modes depending on an
#: argument (``RepositoryServer._locked``): treated as possibly-shared
#: for LK003 and as an ordinary acquisition for LK001.
MODE_MIXED = "mixed"

#: Plain function names considered blocking when called under a mutex.
BLOCKING_CALLS = frozenset(
    {
        "open",
        "write_json_atomic",  # repro.core.persistence — atomic disk write
        "load_repository",  # repro.core.persistence — full repo read
    }
)

#: Dotted calls considered blocking (matched on the trailing parts).
BLOCKING_DOTTED = frozenset(
    {
        "time.sleep",
        "os.makedirs",
        "os.replace",
        "os.rename",
        "os.remove",
        "os.unlink",
        "os.listdir",
        "os.scandir",
        "os.fsync",
        "json.load",
        "json.dump",
        "shutil.rmtree",
        "shutil.copyfile",
    }
)

#: Method/attribute names considered blocking on *any* receiver (socket
#: and HTTP connection verbs, sleeps). Deliberately excludes generic
#: names like ``read``/``write``/``close`` — too many in-memory hits.
BLOCKING_ATTRS = frozenset(
    {
        "sleep",
        "connect",
        "request",
        "getresponse",
        "recv",
        "sendall",
        "accept",
        "makedirs",
        "rmtree",
    }
)

#: Metric family names: ``repro_`` prefix, lower_snake.
METRIC_NAME_RE = re.compile(r"^repro_[a-z][a-z0-9_]*$")

#: Counter families must end with this suffix; other kinds must not.
COUNTER_SUFFIX = "_total"

#: Reserved Prometheus histogram suffixes no family may end with.
RESERVED_SUFFIXES = ("_bucket", "_sum", "_count")

#: Every field a ``LineageRecord`` construction site must pass as a
#: keyword (OB004). The schema's run-time facts — a record missing any
#: of these is unanchored in the lineage DAG, and the dataclass defaults
#: would silently paper over the drop. ``commit_id``/``branch`` are
#: deliberately absent (back-filled once at commit time) as are
#: ``wall_seconds``/``cpu_seconds``/``collected`` (timing and GC
#: amendments, excluded from record identity). Keep in lockstep with
#: :class:`repro.provenance.ledger.LineageRecord`.
LINEAGE_REQUIRED_FIELDS = (
    "checkpoint_key",
    "stage",
    "pipeline",
    "component_id",
    "component_fingerprint",
    "component_version",
    "params_digest",
    "input_refs",
    "output_ref",
    "seed",
    "trace_id",
    "span_id",
    "tenant",
    "via",
)

#: Inline suppression comment: ``# repro-lint: disable=LK002[,OB001] [- reason]``
#: on the finding's line, the line above it, or the enclosing ``def``.
SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9*,\s]+?)(?:\s+-\s*(?P<reason>.*))?$"
)


def lock_kind_of_attr(attr: str) -> str | None:
    """The lock kind a bare ``with self.<attr>:`` denotes, or None."""
    if CONDITION_ATTR_RE.match(attr):
        return KIND_CONDITION
    if MUTEX_ATTR_RE.match(attr):
        return KIND_MUTEX
    return None


def is_lock_map_helper(name: str) -> bool:
    """True for methods like ``_tenant_lock`` (but not the plain
    ``_lock`` attribute, which has no keyed prefix)."""
    return name != "_lock" and LOCK_MAP_RE.match(name) is not None
