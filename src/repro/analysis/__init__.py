"""Static analysis over the repository's own source (``repro lint``).

This package encodes the concurrency and protocol invariants that grew
out of the first six PRs — RWLock writer preference, the hub-global
versus per-tenant lock split, "I/O outside the lock", the op table as
the single protocol authority — as executable lint rules instead of
review lore. It is self-contained: analysis is purely syntactic
(:mod:`ast` + :mod:`tokenize`), never imports the code under analysis,
and has no third-party dependencies.

Layout:

``conventions``
    The *naming contract* the analyzer recognizes (lock attribute
    names, RWLock method names, metric naming). Documented once, here,
    so idiom recognition is contract, not heuristic.
``model``
    Findings, inline suppressions, baselines, source loading.
``callgraph``
    Per-function lock-acquisition events and a resolvable call graph.
``rules_locks`` / ``rules_protocol`` / ``rules_obs``
    The three rule packs (LK*, PT*, OB* rule ids).
``report``
    Text/JSON rendering and baseline application.
``cli``
    The ``repro lint`` verb.
"""

from .model import Baseline, Finding, load_source_tree
from .report import LintResult, run_lint

__all__ = [
    "Baseline",
    "Finding",
    "LintResult",
    "load_source_tree",
    "run_lint",
]
