"""Findings, suppressions, baselines, and source loading.

Everything here is rule-agnostic plumbing: a :class:`Finding` is what a
rule emits; a :class:`SourceFile` is a parsed module plus its
suppression comments; a :class:`Baseline` grandfathers findings by a
stable fingerprint so line drift does not invalidate it.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

from . import conventions

_LINE_REF_RE = re.compile(r"\b(?:line\s+)?\d+\b")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str  #: e.g. ``"LK002"``
    path: str  #: repo-relative, ``/`` separators
    line: int  #: 1-based
    symbol: str  #: enclosing qualname (``Class.method``) or ``"<module>"``
    message: str
    hint: str = ""

    @property
    def fingerprint(self) -> str:
        """Stable identity for baselining: rule + file + symbol + a
        digest of the message with line numbers stripped, so findings
        survive unrelated edits that shift lines."""
        normalized = _LINE_REF_RE.sub("<n>", self.message)
        digest = hashlib.sha256(
            f"{self.rule}|{self.path}|{self.symbol}|{normalized}".encode()
        ).hexdigest()[:12]
        return f"{self.rule}:{Path(self.path).name}:{self.symbol}:{digest}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
            "hint": self.hint,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        text = f"{self.path}:{self.line}: {self.rule} [{self.symbol}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


class SourceFile:
    """One parsed module: AST, module name, and suppression map."""

    def __init__(self, path: Path, rel_path: str, module: str, text: str):
        self.path = path
        self.rel_path = rel_path
        self.module = module
        self.text = text
        self.tree = ast.parse(text, filename=str(path))
        #: line -> set of rule ids (or ``{"*"}``) suppressed on it.
        self.suppressions = _parse_suppressions(text)
        #: line of each ``def`` -> (first body line, last line) so a
        #: suppression on the ``def`` line covers the whole function.
        self.def_spans = _function_spans(self.tree)

    def is_suppressed(self, rule: str, line: int) -> bool:
        """A finding is suppressed by a comment on its own line, on the
        line directly above, or on its enclosing ``def`` line."""
        for candidate in (line, line - 1):
            rules = self.suppressions.get(candidate)
            if rules and ("*" in rules or rule in rules):
                return True
        for def_line, (start, end) in self.def_spans.items():
            if start <= line <= end:
                rules = self.suppressions.get(def_line)
                if rules and ("*" in rules or rule in rules):
                    return True
        return False


def _parse_suppressions(text: str) -> dict[int, set[str]]:
    out: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = conventions.SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            rules = {
                part.strip()
                for part in match.group("rules").split(",")
                if part.strip()
            }
            out.setdefault(tok.start[0], set()).update(rules)
    except tokenize.TokenizeError:
        pass
    return out


def _function_spans(tree: ast.AST) -> dict[int, tuple[int, int]]:
    spans: dict[int, tuple[int, int]] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            end = getattr(node, "end_lineno", node.lineno)
            spans[node.lineno] = (node.lineno, end or node.lineno)
    return spans


def enclosing_symbol(tree: ast.AST, line: int) -> str:
    """``Class.method`` (or function name) containing ``line``, else
    ``"<module>"`` — for findings produced outside the call graph."""
    best = "<module>"
    best_span = None

    def visit(node: ast.AST, prefix: str) -> None:
        nonlocal best, best_span
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                name = f"{prefix}.{child.name}" if prefix else child.name
                end = getattr(child, "end_lineno", child.lineno) or child.lineno
                if child.lineno <= line <= end:
                    if not isinstance(child, ast.ClassDef):
                        span = end - child.lineno
                        if best_span is None or span <= best_span:
                            best, best_span = name, span
                    visit(child, name)
            else:
                visit(child, prefix)

    visit(tree, "")
    return best


def load_source_tree(root: Path, package: str | None = None) -> list[SourceFile]:
    """Parse every ``*.py`` under ``root`` (a package directory).

    Module names are qualified with the package name (``root``'s
    directory name unless ``package`` overrides it), so analyzing
    ``src/repro`` yields modules named ``repro.hub.hub`` etc.
    """
    root = root.resolve()
    prefix = package if package is not None else root.name
    files: list[SourceFile] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root)
        parts = [prefix, *rel.parts]
        if parts[-1] == "__init__.py":
            parts = parts[:-1]
        else:
            parts[-1] = parts[-1][: -len(".py")]
        module = ".".join(parts)
        rel_path = "/".join([prefix, *rel.parts])
        try:
            text = path.read_text(encoding="utf-8")
            files.append(SourceFile(path, rel_path, module, text))
        except (SyntaxError, UnicodeDecodeError):
            continue  # not analyzable; other tooling reports parse errors
    return files


@dataclass
class Baseline:
    """Grandfathered findings, keyed by fingerprint, with justifications."""

    entries: dict[str, dict] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.is_file():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        entries = {
            entry["fingerprint"]: entry for entry in data.get("findings", [])
        }
        return cls(entries=entries)

    def contains(self, finding: Finding) -> bool:
        return finding.fingerprint in self.entries

    @staticmethod
    def write(path: Path, findings: list[Finding], justification: str = "") -> None:
        payload = {
            "comment": (
                "Grandfathered `repro lint` findings. Each entry should carry a "
                "justification; remove entries as the code they cover is fixed. "
                "Regenerate with `repro lint --write-baseline`."
            ),
            "findings": [
                {
                    "fingerprint": finding.fingerprint,
                    "rule": finding.rule,
                    "path": finding.path,
                    "symbol": finding.symbol,
                    "message": finding.message,
                    "justification": justification,
                }
                for finding in sorted(
                    findings, key=lambda f: (f.path, f.rule, f.line)
                )
            ],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
