"""Pipeline components: datasets and libraries (paper Definitions 3-4).

A component is "any computational unit in the ML pipeline, including
datasets, pre-processing methods, and ML models" (section III). A library
component is a transformation ``y = f(x | θ)`` (Definition 3); component
``f_j`` is *compatible* with its predecessor ``f_i`` iff it can process
``f_i``'s output correctly (Definition 4), which the paper reduces to an
output-data-schema check (section IV-B).

Schemas here are opaque tags (strings). Workloads use readable tags like
``"readmission/features_v1"``; dataset components derive theirs from the
data via the paper's schema-hash functions. A library may declare the
wildcard input ``"*"`` meaning it accepts any upstream schema.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..errors import ComponentError
from ..storage.hashing import fingerprint_many, meta_schema_hash
from .metafile import DatasetMetafile, LibraryMetafile
from .semver import SemVer

ANY_SCHEMA = "*"


def _params_fingerprint(params: dict) -> str:
    """Deterministic digest of a hyperparameter dict."""
    parts = []
    for key in sorted(params):
        value = params[key]
        if isinstance(value, (list, tuple)):
            value = ",".join(str(v) for v in value)
        parts.append(f"{key}={value}")
    return meta_schema_hash({"params": "|".join(parts)})


@dataclass(frozen=True)
class Component:
    """Shared identity of every component: name plus semantic version."""

    name: str
    version: SemVer

    @property
    def identifier(self) -> str:
        """``<name, branch@schema.increment>`` identity (paper notation)."""
        return f"{self.name}@{self.version.full}"

    @property
    def display(self) -> str:
        return f"<{self.name}, {self.version}>"

    @property
    def params_digest(self) -> str:
        """Deterministic digest of the component's hyperparameters, or
        ``""`` for parameterless components (datasets). Lineage records
        carry this so an audit can tell two same-version configurations
        apart without re-deriving the full fingerprint."""
        params = getattr(self, "params", None)
        return _params_fingerprint(params) if params else ""


@dataclass(frozen=True)
class DatasetComponent(Component):
    """A dataset: loader callable plus the schema derived from its data.

    ``loader(context)`` must return a serializable payload (usually a
    :class:`repro.data.Table`). ``output_schema`` is the dataset's schema
    hash/tag; ``content_key`` distinguishes different data snapshots with
    the same schema (e.g. successive daily feeds), so the checkpoint store
    can tell them apart.
    """

    loader: Callable[..., Any] = None  # type: ignore[assignment]
    output_schema: str = ""
    content_key: str = ""
    description: str = ""

    def __post_init__(self) -> None:
        if self.loader is None:
            raise ComponentError(f"dataset {self.name!r} needs a loader callable")
        if not self.output_schema:
            raise ComponentError(f"dataset {self.name!r} needs an output schema")

    def materialize(self, rng: np.random.Generator):
        return self.loader(rng)

    @property
    def fingerprint(self) -> str:
        return fingerprint_many([
            "dataset", self.name, self.version.full, self.output_schema, self.content_key,
        ])

    def metafile(self) -> DatasetMetafile:
        return DatasetMetafile(
            name=self.name,
            schema_hash=self.output_schema,
            description=self.description,
        )


@dataclass(frozen=True)
class LibraryComponent(Component):
    """A pre-processing method or model: ``y = fn(x | params)``.

    ``fn(payload, params, rng)`` returns the stage output. Model stages set
    ``is_model=True`` and must return a dict containing a ``"metrics"``
    mapping (metric name -> float); the executor reads the pipeline score
    from there.
    """

    fn: Callable[..., Any] = None  # type: ignore[assignment]
    params: dict = field(default_factory=dict)
    input_schema: str = ANY_SCHEMA
    output_schema: str = ""
    is_model: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if self.fn is None:
            raise ComponentError(f"library {self.name!r} needs a callable")
        if not self.output_schema:
            raise ComponentError(f"library {self.name!r} needs an output schema")

    def accepts(self, producer_schema: str) -> bool:
        """Definition 4 compatibility via schema tags (section IV-B)."""
        return self.input_schema == ANY_SCHEMA or self.input_schema == producer_schema

    def run(self, payload, rng: np.random.Generator):
        output = self.fn(payload, dict(self.params), rng)
        if self.is_model:
            if not isinstance(output, dict) or "metrics" not in output:
                raise ComponentError(
                    f"model component {self.identifier} must return a dict "
                    "with a 'metrics' mapping"
                )
        return output

    @property
    def fingerprint(self) -> str:
        return fingerprint_many([
            "library",
            self.name,
            self.version.full,
            self.input_schema,
            self.output_schema,
            _params_fingerprint(self.params),
        ])

    def metafile(self) -> LibraryMetafile:
        return LibraryMetafile(
            name=self.name,
            entry_point=getattr(self.fn, "__name__", "run"),
            input_schema=self.input_schema,
            output_schema=self.output_schema,
            hyperparameters={k: str(v) for k, v in sorted(self.params.items())},
            description=self.description,
        )

    def evolved(
        self,
        *,
        version: SemVer | None = None,
        fn: Callable[..., Any] | None = None,
        params: dict | None = None,
        input_schema: str | None = None,
        output_schema: str | None = None,
        schema_changed: bool = False,
        branch: str | None = None,
    ) -> "LibraryComponent":
        """Derive the next version of this library (convenience for
        workload version families). If ``version`` is not given, the bump
        follows section IV-B: schema change bumps ``schema``, otherwise
        ``increment``."""
        if version is None:
            base = self.version if branch is None else self.version.on_branch(branch)
            version = base.bump_schema() if schema_changed else base.bump_increment()
        return LibraryComponent(
            name=self.name,
            version=version,
            fn=fn if fn is not None else self.fn,
            params=dict(params) if params is not None else dict(self.params),
            input_schema=input_schema if input_schema is not None else self.input_schema,
            output_schema=output_schema if output_schema is not None else self.output_schema,
            is_model=self.is_model,
            description=self.description,
        )
