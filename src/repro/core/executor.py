"""Pipeline executor: runs instances with checkpoint reuse and timing.

This is the engine under both MLCask and the simulated baselines; what
differs between systems is only the policy knobs:

* ``reuse=True``  + chunked checkpoints  -> MLCask / MLflow behaviour
* ``reuse=False`` + folder checkpoints   -> ModelDB behaviour (rerun all)

The executor produces a :class:`RunReport` whose per-stage timings feed the
paper's evaluation metrics directly: execution time (component compute),
storage time (data preparation/transfer, i.e. time inside the checkpoint
store), and pipeline time (their sum) — section VII-B.

Incompatible adjacent components are detected *at the moment the consumer
is reached*, mirroring how the baselines "run the pipeline until the
compatibility error occurs at the last component" (section VII-C); callers
that want MLCask's behaviour validate statically before running.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..errors import ComponentError
from ..ml.metrics import score_from_metric
from ..storage.hashing import fingerprint_many
from .checkpoint import CheckpointStore
from .component import DatasetComponent, LibraryComponent
from .context import ExecutionContext
from .pipeline import PipelineInstance


@dataclass
class StageReport:
    """What happened at one stage of one run."""

    stage: str
    component_id: str
    executed: bool = False
    reused: bool = False
    failed: bool = False
    is_model: bool = False
    run_seconds: float = 0.0
    store_seconds: float = 0.0
    cpu_seconds: float = 0.0
    output_ref: str = ""
    output_bytes: int = 0
    checkpoint_key: str = ""


@dataclass
class RunReport:
    """Full account of one pipeline run."""

    pipeline: str
    stage_reports: list[StageReport] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    score: float | None = None
    failed: bool = False
    failure_stage: str | None = None
    failure_reason: str | None = None
    #: ledger row indices appended for this run (empty when the executor
    #: has no lineage ledger attached); ``_store_commit`` back-fills the
    #: adopting commit onto exactly these rows.
    lineage_rows: tuple = ()

    @property
    def execution_seconds(self) -> float:
        """Compute time across stages actually executed this run."""
        return sum(r.run_seconds for r in self.stage_reports)

    @property
    def storage_seconds(self) -> float:
        return sum(r.store_seconds for r in self.stage_reports)

    @property
    def pipeline_seconds(self) -> float:
        """Execution plus storage: the paper's 'pipeline time'."""
        return self.execution_seconds + self.storage_seconds

    @property
    def preprocessing_seconds(self) -> float:
        return sum(r.run_seconds for r in self.stage_reports if not r.is_model)

    @property
    def training_seconds(self) -> float:
        return sum(r.run_seconds for r in self.stage_reports if r.is_model)

    def stage(self, name: str) -> StageReport:
        for report in self.stage_reports:
            if report.stage == name:
                return report
        raise KeyError(f"no stage {name!r} in report")

    @property
    def stage_outputs(self) -> dict[str, str]:
        """stage -> archived output reference (for commit records)."""
        return {
            r.stage: r.output_ref for r in self.stage_reports if r.output_ref
        }

    @property
    def n_executed(self) -> int:
        return sum(1 for r in self.stage_reports if r.executed)

    @property
    def n_reused(self) -> int:
        return sum(1 for r in self.stage_reports if r.reused)


class Executor:
    """Runs pipeline instances against a checkpoint store."""

    def __init__(
        self,
        checkpoints: CheckpointStore,
        metric: str = "accuracy",
        reuse: bool = True,
        lineage=None,
    ):
        self.checkpoints = checkpoints
        self.metric = metric
        self.reuse = reuse
        #: optional :class:`repro.provenance.LineageLedger`; when set,
        #: every finished run appends one record per non-failed stage.
        self.lineage = lineage

    # ----------------------------------------------------------------- run
    def run(
        self,
        instance: PipelineInstance,
        context: ExecutionContext | None = None,
    ) -> RunReport:
        """Execute ``instance``; reuse archived outputs where allowed.

        Reused stages cost no compute and (lazily) no load either: a
        checkpointed output is only deserialized when a downstream stage
        actually has to execute on it.
        """
        context = context or ExecutionContext(metric=self.metric)
        report = RunReport(pipeline=instance.spec.name)
        order = instance.spec.topological_order()
        # stage -> (input_ref for checkpointing, lazily-loaded payload)
        refs: dict[str, str] = {}
        payloads: dict[str, object] = {}
        records: dict[str, object] = {}

        for stage in order:
            component = instance.component(stage)
            stage_report = StageReport(
                stage=stage,
                component_id=component.identifier,
                is_model=isinstance(component, LibraryComponent) and component.is_model,
            )
            report.stage_reports.append(stage_report)

            preds = instance.spec.predecessors(stage)
            if isinstance(component, DatasetComponent):
                input_ref = component.fingerprint
            else:
                # Runtime compatibility check (Definition 4): the consumer
                # must accept every producer's output schema.
                incompatible = [
                    p
                    for p in preds
                    if not component.accepts(instance.component(p).output_schema)
                ]
                if incompatible:
                    stage_report.failed = True
                    report.failed = True
                    report.failure_stage = stage
                    break
                input_ref = fingerprint_many(["input", *(refs[p] for p in preds)])

            record = self.checkpoints.lookup(component, input_ref) if self.reuse else None
            if record is not None:
                stage_report.reused = True
                stage_report.output_ref = record.output_ref
                stage_report.output_bytes = record.output_bytes
                stage_report.checkpoint_key = record.key
                refs[stage] = record.output_ref
                records[stage] = record
                if record.metrics:
                    report.metrics = dict(record.metrics)
                continue

            # Materialize inputs first (loading archived payloads only
            # now); load time is storage time, not compute time. A
            # component that *raises* fails the run at this stage (time
            # spent is still charged) rather than crashing the caller —
            # a merge must survive a broken candidate and keep searching.
            rng = context.rng_for(component.fingerprint)
            start = time.perf_counter()  # re-anchored below; set here so the
            # except clause can always charge elapsed time
            try:
                if isinstance(component, DatasetComponent):
                    start = time.perf_counter()
                    cpu_start = time.thread_time()
                    output = component.materialize(rng)
                    stage_report.run_seconds = time.perf_counter() - start
                    stage_report.cpu_seconds = time.thread_time() - cpu_start
                else:
                    load_start = time.perf_counter()
                    inputs = [self._payload_of(p, payloads, records) for p in preds]
                    stage_report.store_seconds += time.perf_counter() - load_start
                    payload = inputs[0] if len(inputs) == 1 else {
                        p: v for p, v in zip(preds, inputs)
                    }
                    start = time.perf_counter()
                    cpu_start = time.thread_time()
                    output = component.run(payload, rng)
                    stage_report.run_seconds = time.perf_counter() - start
                    stage_report.cpu_seconds = time.thread_time() - cpu_start
            except Exception as error:  # noqa: BLE001 - component code is untrusted
                stage_report.run_seconds = time.perf_counter() - start
                stage_report.failed = True
                report.failed = True
                report.failure_stage = stage
                report.failure_reason = f"{type(error).__name__}: {error}"
                break
            stage_report.executed = True

            metrics = None
            if stage_report.is_model:
                metrics = output.get("metrics", {})
                report.metrics = dict(metrics)

            store_start = time.perf_counter()
            saved = self.checkpoints.save(
                component,
                input_ref,
                output,
                run_seconds=stage_report.run_seconds,
                metrics=metrics,
            )
            stage_report.store_seconds += time.perf_counter() - store_start
            stage_report.output_ref = saved.output_ref
            stage_report.output_bytes = saved.output_bytes
            stage_report.checkpoint_key = saved.key
            refs[stage] = saved.output_ref
            payloads[stage] = output

        if not report.failed:
            if not report.metrics:
                raise ComponentError(
                    f"pipeline {instance.spec.name!r} produced no metrics; "
                    "is the sink stage a model component?"
                )
            if self.metric in report.metrics:
                report.score = score_from_metric(self.metric, report.metrics[self.metric])
        if self.lineage is not None:
            report.lineage_rows = self.lineage.record_run(
                instance, report, refs, seed=context.seed
            )
        return report

    def _payload_of(self, stage: str, payloads: dict, records: dict):
        if stage in payloads:
            return payloads[stage]
        record = records.get(stage)
        if record is None:
            raise ComponentError(f"no payload or checkpoint for stage {stage!r}")
        payload = self.checkpoints.load(record)
        payloads[stage] = payload
        return payload
