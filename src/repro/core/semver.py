"""Semantic versions: ``branch@schema.increment`` (paper section IV-B).

A semantic version in MLCask is the identifier ``branch@schema.increment``
where ``branch`` carries the Git-like branch semantics, ``schema`` denotes
the output data schema, and ``increment`` counts minor changes that do not
affect the output schema. The paper's notational conventions are honored:

* components on ``master`` may omit the branch: ``<feature_extract, 0.1>``;
* the initial version of a committed library is ``0.0``;
* commits bump only ``increment`` unless the schema changed, in which case
  ``schema`` bumps and ``increment`` resets to 0;
* pipeline versions use the dotted rendering ``branch.schema.increment``
  (``master.0.2`` in Fig. 3).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import VersionError

MASTER = "master"

_VERSION_RE = re.compile(
    r"^(?:(?P<branch>[A-Za-z0-9_\-]+)@)?(?P<schema>\d+)\.(?P<increment>\d+)$"
)
_DOTTED_RE = re.compile(
    r"^(?P<branch>[A-Za-z0-9_\-]+)\.(?P<schema>\d+)\.(?P<increment>\d+)$"
)


@dataclass(frozen=True)
class SemVer:
    """Immutable ``branch@schema.increment`` identifier."""

    branch: str = MASTER
    schema: int = 0
    increment: int = 0

    def __post_init__(self) -> None:
        if not self.branch:
            raise VersionError("branch name must be non-empty")
        if self.schema < 0 or self.increment < 0:
            raise VersionError(
                f"schema/increment must be non-negative, got {self.schema}.{self.increment}"
            )

    # ------------------------------------------------------------- rendering
    def __str__(self) -> str:
        """Paper notation: branch omitted on master."""
        if self.branch == MASTER:
            return f"{self.schema}.{self.increment}"
        return f"{self.branch}@{self.schema}.{self.increment}"

    @property
    def full(self) -> str:
        """Always-explicit rendering, branch included."""
        return f"{self.branch}@{self.schema}.{self.increment}"

    @property
    def dotted(self) -> str:
        """Pipeline-version rendering: ``master.0.2``."""
        return f"{self.branch}.{self.schema}.{self.increment}"

    @property
    def number(self) -> str:
        """Just ``schema.increment`` (what Figs. 2-4 print inside nodes)."""
        return f"{self.schema}.{self.increment}"

    # --------------------------------------------------------------- parsing
    @classmethod
    def parse(cls, text: str) -> "SemVer":
        """Parse ``branch@schema.increment`` or bare ``schema.increment``."""
        match = _VERSION_RE.match(text.strip())
        if not match:
            raise VersionError(f"cannot parse semantic version {text!r}")
        return cls(
            branch=match.group("branch") or MASTER,
            schema=int(match.group("schema")),
            increment=int(match.group("increment")),
        )

    @classmethod
    def parse_dotted(cls, text: str) -> "SemVer":
        """Parse the pipeline rendering ``branch.schema.increment``."""
        match = _DOTTED_RE.match(text.strip())
        if not match:
            raise VersionError(f"cannot parse dotted version {text!r}")
        return cls(
            branch=match.group("branch"),
            schema=int(match.group("schema")),
            increment=int(match.group("increment")),
        )

    # ---------------------------------------------------------------- bumps
    def bump_increment(self) -> "SemVer":
        """Minor update: output schema unchanged."""
        return SemVer(self.branch, self.schema, self.increment + 1)

    def bump_schema(self) -> "SemVer":
        """Output-schema-changing update; increment resets to 0."""
        return SemVer(self.branch, self.schema + 1, 0)

    def on_branch(self, branch: str) -> "SemVer":
        """Same numbers, different branch (used when merging duplicates
        the MERGE_HEAD tip onto HEAD, section V)."""
        return SemVer(branch, self.schema, self.increment)

    # ------------------------------------------------------------- ordering
    def newer_than(self, other: "SemVer") -> bool:
        """Schema-then-increment comparison, ignoring branch."""
        return (self.schema, self.increment) > (other.schema, other.increment)

    def same_schema(self, other: "SemVer") -> bool:
        return self.schema == other.schema


INITIAL_VERSION = SemVer()  # 0.0 on master, per section IV-B
