"""Pipeline structure: the DAG of Definitions 1-2 plus concrete bindings.

Definition 1: a pipeline with components ``f_i ∈ F`` is a DAG ``G=(F,E)``
whose vertices are components and whose edges are data flows. Definition 2
gives ``suc(f)``/``pre(f)``. The evaluated pipelines are chains (dataset →
pre-processing steps → model), but the spec supports general DAGs with a
single source (the dataset) and a single sink (the model stage).

Two layers:

* :class:`PipelineSpec` — the named stage structure, stable across commits;
* :class:`PipelineInstance` — a spec with each stage bound to a concrete
  component version (what one commit/search-tree path describes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import IncompatibleComponentsError, PipelineError
from .component import Component, DatasetComponent, LibraryComponent


@dataclass(frozen=True)
class PipelineSpec:
    """Stage names plus edges; validated to be a single-source DAG."""

    name: str
    stages: tuple[str, ...]
    edges: tuple[tuple[str, str], ...] = ()

    @classmethod
    def chain(cls, name: str, stages: list[str] | tuple[str, ...]) -> "PipelineSpec":
        """The common case: a linear chain in the given order."""
        stages = tuple(stages)
        edges = tuple(zip(stages[:-1], stages[1:]))
        return cls(name=name, stages=stages, edges=edges)

    def __post_init__(self) -> None:
        if len(self.stages) < 2:
            raise PipelineError("a pipeline needs at least a dataset and one library")
        if len(set(self.stages)) != len(self.stages):
            raise PipelineError(f"duplicate stage names in {self.stages}")
        known = set(self.stages)
        for src, dst in self.edges:
            if src not in known or dst not in known:
                raise PipelineError(f"edge ({src}, {dst}) references unknown stage")
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        order = self.topological_order()
        if len(order) != len(self.stages):
            raise PipelineError(f"pipeline {self.name!r} contains a cycle")

    # ---------------------------------------------------------------- graph
    def predecessors(self, stage: str) -> list[str]:
        """pre(f): stages feeding into ``stage`` (Definition 2)."""
        return [src for src, dst in self.edges if dst == stage]

    def successors(self, stage: str) -> list[str]:
        """suc(f): stages consuming ``stage``'s output (Definition 2)."""
        return [dst for src, dst in self.edges if src == stage]

    def sources(self) -> list[str]:
        has_incoming = {dst for _, dst in self.edges}
        return [s for s in self.stages if s not in has_incoming]

    def sinks(self) -> list[str]:
        has_outgoing = {src for src, _ in self.edges}
        return [s for s in self.stages if s not in has_outgoing]

    def topological_order(self) -> list[str]:
        """Kahn's algorithm, ties broken by declared stage order."""
        indegree = {s: 0 for s in self.stages}
        for _, dst in self.edges:
            indegree[dst] += 1
        declared = {s: i for i, s in enumerate(self.stages)}
        ready = sorted([s for s, d in indegree.items() if d == 0], key=declared.get)
        order: list[str] = []
        while ready:
            stage = ready.pop(0)
            order.append(stage)
            for nxt in self.successors(stage):
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    ready.append(nxt)
            ready.sort(key=declared.get)
        return order

    @property
    def n_stages(self) -> int:
        return len(self.stages)


@dataclass
class PipelineInstance:
    """A spec with concrete components bound to every stage."""

    spec: PipelineSpec
    components: dict[str, Component] = field(default_factory=dict)

    def __post_init__(self) -> None:
        missing = [s for s in self.spec.stages if s not in self.components]
        if missing:
            raise PipelineError(f"stages without components: {missing}")
        extra = [s for s in self.components if s not in self.spec.stages]
        if extra:
            raise PipelineError(f"components bound to unknown stages: {extra}")
        for source in self.spec.sources():
            if not isinstance(self.components[source], DatasetComponent):
                raise PipelineError(
                    f"source stage {source!r} must be a dataset component"
                )
        for stage in self.spec.stages:
            if stage not in self.spec.sources() and not isinstance(
                self.components[stage], LibraryComponent
            ):
                raise PipelineError(f"stage {stage!r} must be a library component")

    def component(self, stage: str) -> Component:
        return self.components[stage]

    def validate_compatibility(self) -> None:
        """Static schema check along every edge; raises on the first
        incompatible pair (what lets MLCask skip doomed runs up front)."""
        for src, dst in self.spec.edges:
            producer = self.components[src]
            consumer = self.components[dst]
            if isinstance(consumer, LibraryComponent):
                if not consumer.accepts(producer.output_schema):
                    raise IncompatibleComponentsError(
                        producer.identifier, consumer.identifier
                    )

    def is_compatible(self) -> bool:
        try:
            self.validate_compatibility()
        except IncompatibleComponentsError:
            return False
        return True

    def signature(self) -> tuple[tuple[str, str], ...]:
        """(stage, component fingerprint) pairs in topological order —
        the identity of this exact pipeline configuration."""
        return tuple(
            (stage, self.components[stage].fingerprint)
            for stage in self.spec.topological_order()
        )

    def describe(self) -> str:
        parts = [
            self.components[stage].display for stage in self.spec.topological_order()
        ]
        return " -> ".join(parts)

    def with_updates(self, updates: dict[str, Component]) -> "PipelineInstance":
        merged = dict(self.components)
        merged.update(updates)
        return PipelineInstance(spec=self.spec, components=merged)
