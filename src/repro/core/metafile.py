"""Metafiles: the declarative descriptions attached to components/pipelines.

Paper section III: a library "consists of a mandatory metafile and several
executables. ... The mandatory metafile describes the entry point, inputs
and outputs, as well as all the essential hyperparameters"; a dataset
"contains a mandatory metafile that describes the encapsulation of data";
a pipeline metafile "describes the entry point of the pipeline and the
order of the pipeline components". Section IV-B: "the update to schema is
explicitly indicated by the library developer in the library metafile."

Metafiles serialize deterministically (sorted JSON) so they dedup cleanly
in the storage engine and version the same way data does.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field


@dataclass(frozen=True)
class LibraryMetafile:
    """Declares a library component: entry point, I/O schemas, hyperparams."""

    name: str
    entry_point: str
    input_schema: str
    output_schema: str
    hyperparameters: dict = field(default_factory=dict)
    description: str = ""

    def to_bytes(self) -> bytes:
        return json.dumps(
            {"kind": "library", **asdict(self)}, sort_keys=True
        ).encode("utf-8")

    @classmethod
    def from_bytes(cls, raw: bytes) -> "LibraryMetafile":
        payload = json.loads(raw.decode("utf-8"))
        payload.pop("kind", None)
        return cls(**payload)


@dataclass(frozen=True)
class DatasetMetafile:
    """Declares a dataset: where it comes from and what schema it carries."""

    name: str
    schema_hash: str
    source: str = "synthetic"
    description: str = ""
    n_rows: int = 0

    def to_bytes(self) -> bytes:
        return json.dumps(
            {"kind": "dataset", **asdict(self)}, sort_keys=True
        ).encode("utf-8")

    @classmethod
    def from_bytes(cls, raw: bytes) -> "DatasetMetafile":
        payload = json.loads(raw.decode("utf-8"))
        payload.pop("kind", None)
        return cls(**payload)


@dataclass(frozen=True)
class PipelineMetafile:
    """Declares a pipeline: entry point plus ordered component references.

    ``components`` maps stage name to ``(component name, version string)``;
    ``outputs`` maps stage name to the archived output's blob digest, filled
    in once the pipeline "is fully processed [and] all its component outputs
    are archived for future reuse, with their references logged into the
    pipeline metafile" (section III).
    """

    name: str
    entry_point: str
    stage_order: tuple[str, ...]
    components: dict = field(default_factory=dict)
    outputs: dict = field(default_factory=dict)

    def to_bytes(self) -> bytes:
        payload = {
            "kind": "pipeline",
            "name": self.name,
            "entry_point": self.entry_point,
            "stage_order": list(self.stage_order),
            "components": self.components,
            "outputs": self.outputs,
        }
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    @classmethod
    def from_bytes(cls, raw: bytes) -> "PipelineMetafile":
        payload = json.loads(raw.decode("utf-8"))
        return cls(
            name=payload["name"],
            entry_point=payload["entry_point"],
            stage_order=tuple(payload["stage_order"]),
            components=payload["components"],
            outputs=payload["outputs"],
        )
