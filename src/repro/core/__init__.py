"""MLCask core: versioning, components, pipelines, execution, merging."""

from .branching import BranchManager
from .checkpoint import (
    CheckpointRecord,
    CheckpointStore,
    ChunkedCheckpointStore,
    FolderCheckpointStore,
    checkpoint_key,
)
from .commit import PipelineCommit, make_commit_id
from .component import ANY_SCHEMA, Component, DatasetComponent, LibraryComponent
from .context import ExecutionContext
from .diff import (
    ComponentDelta,
    attribute_improvement,
    diff_commits,
    render_diff,
    render_log,
)
from .executor import Executor, RunReport, StageReport
from .history import CommitGraph
from .metafile import DatasetMetafile, LibraryMetafile, PipelineMetafile
from .pipeline import PipelineInstance, PipelineSpec
from .repository import ComponentRegistry, MergeOutcome, MLCask
from .semver import INITIAL_VERSION, MASTER, SemVer

__all__ = [
    "BranchManager",
    "CheckpointRecord", "CheckpointStore", "ChunkedCheckpointStore",
    "FolderCheckpointStore", "checkpoint_key",
    "PipelineCommit", "make_commit_id",
    "ANY_SCHEMA", "Component", "DatasetComponent", "LibraryComponent",
    "ExecutionContext",
    "ComponentDelta", "attribute_improvement", "diff_commits",
    "render_diff", "render_log",
    "Executor", "RunReport", "StageReport",
    "CommitGraph",
    "DatasetMetafile", "LibraryMetafile", "PipelineMetafile",
    "PipelineInstance", "PipelineSpec",
    "ComponentRegistry", "MergeOutcome", "MLCask",
    "INITIAL_VERSION", "MASTER", "SemVer",
]
