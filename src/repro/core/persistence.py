"""Repository persistence: save/load the version-control state as JSON.

What persists is the *metadata* half of MLCask — the commit graph, branch
pointers, specs, and per-commit component references. Component
*executables* are Python callables and live in workload code, so loading
re-binds commits to components through a registry the caller provides
(the same separation the paper uses: the library repository stores
executables, the pipeline repository stores references).

Checkpointed outputs are content-addressed; a loaded repository starts
with an empty checkpoint store and repopulates it lazily on the next runs
(every re-execution is deterministic, so the archive converges to the
same content).
"""

from __future__ import annotations

import json
import os

from ..errors import RepositoryError
from .commit import PipelineCommit
from .pipeline import PipelineSpec
from .semver import SemVer

FORMAT_VERSION = 1


def repository_state(repo) -> dict:
    """Serializable snapshot of a repository's version-control state."""
    commits = []
    for commit in repo.graph.all_commits():
        commits.append({
            "commit_id": commit.commit_id,
            "pipeline": commit.pipeline,
            "version": commit.version.dotted,
            "branch": commit.branch,
            "parents": list(commit.parents),
            "component_versions": dict(commit.component_versions),
            "component_fingerprints": dict(commit.component_fingerprints),
            "stage_outputs": dict(commit.stage_outputs),
            "metrics": dict(commit.metrics),
            "score": commit.score,
            "message": commit.message,
            "author": commit.author,
            "sequence": commit.sequence,
        })
    specs = {}
    for name in repo.branches.pipelines():
        spec = repo.spec(name)
        specs[name] = {
            "stages": list(spec.stages),
            "edges": [list(edge) for edge in spec.edges],
        }
    heads = {
        pipeline: {
            branch: repo.branches.head(pipeline, branch)
            for branch in repo.branches.branches(pipeline)
        }
        for pipeline in repo.branches.pipelines()
    }
    counts = {
        pipeline: {
            branch: repo.branches.next_commit_count(pipeline, branch)
            for branch in repo.branches.branches(pipeline)
        }
        for pipeline in repo.branches.pipelines()
    }
    return {
        "format": FORMAT_VERSION,
        "metric": repo.metric,
        "seed": repo.seed,
        "commits": commits,
        "specs": specs,
        "heads": heads,
        "commit_counts": counts,
        "sequence": repo._sequence,
    }


def save_repository(repo, path: str | os.PathLike[str]) -> None:
    """Write the repository state to ``path`` as JSON."""
    state = repository_state(repo)
    with open(os.fspath(path), "w") as fh:
        json.dump(state, fh, indent=2, sort_keys=True)


def load_repository(path: str | os.PathLike[str], registry=None, repo=None):
    """Rebuild a repository from ``path``.

    ``registry`` (a :class:`ComponentRegistry` or any object with a
    compatible ``get``/``register``) supplies the live components the
    commits reference; commits whose components are absent still load (the
    history is intact) but cannot be re-instantiated until the components
    are registered.
    """
    from .repository import MLCask

    with open(os.fspath(path)) as fh:
        state = json.load(fh)
    if state.get("format") != FORMAT_VERSION:
        raise RepositoryError(
            f"unsupported repository format {state.get('format')!r}"
        )

    if repo is None:
        repo = MLCask(metric=state["metric"], seed=state["seed"])
    if registry is not None:
        repo.registry = registry

    for name, spec_state in state["specs"].items():
        spec = PipelineSpec(
            name=name,
            stages=tuple(spec_state["stages"]),
            edges=tuple(tuple(edge) for edge in spec_state["edges"]),
        )
        repo._specs[name] = spec

    for entry in state["commits"]:
        commit = PipelineCommit(
            commit_id=entry["commit_id"],
            pipeline=entry["pipeline"],
            version=SemVer.parse_dotted(entry["version"]),
            branch=entry["branch"],
            parents=tuple(entry["parents"]),
            component_versions=entry["component_versions"],
            component_fingerprints=entry["component_fingerprints"],
            stage_outputs=entry["stage_outputs"],
            metrics=entry["metrics"],
            score=entry["score"],
            message=entry["message"],
            author=entry["author"],
            sequence=entry["sequence"],
        )
        repo.graph.add(commit)

    for pipeline, branches in state["heads"].items():
        for branch, head in branches.items():
            repo.branches.set_head(pipeline, branch, head)
    for pipeline, branches in state["commit_counts"].items():
        for branch, count in branches.items():
            for _ in range(count):
                repo.branches.note_commit(pipeline, branch)
    repo._sequence = state["sequence"]
    return repo
