"""Repository persistence: save/load the version-control state.

What persists is the *metadata* half of MLCask — the commit graph, branch
pointers, specs, and per-commit component references. Component
*executables* are Python callables and live in workload code, so loading
re-binds commits to components through a registry the caller provides
(the same separation the paper uses: the library repository stores
executables, the pipeline repository stores references).

Two layouts are supported:

* a single JSON file (:func:`save_repository` / :func:`load_repository`)
  holding only the version-control state. Checkpointed outputs are
  content-addressed; a repository loaded this way starts with an empty
  checkpoint store and repopulates it lazily on the next runs (every
  re-execution is deterministic, so the archive converges to the same
  content);
* a *repository directory* (:func:`save_repository_dir` /
  :func:`load_repository_dir`) that additionally persists the
  content-addressed store — chunks in a git-style object directory,
  recipes and the checkpoint index as JSON — so a reloaded repository can
  serve clones and reuse archived outputs without re-running anything.
  This is the on-disk format behind the ``repro serve/clone/push/pull``
  CLI verbs.

The per-object dict codecs (:func:`commit_to_dict` & friends) are shared
with the remote-sync wire protocol: a pack travelling over a transport
and a state file resting on disk serialize commits identically.
"""

from __future__ import annotations

import json
import os

from ..errors import RepositoryError
from ..storage.chunk_store import FileChunkStore
from ..storage.object_store import Recipe
from .checkpoint import CheckpointRecord
from .commit import PipelineCommit
from .pipeline import PipelineSpec
from .semver import SemVer

FORMAT_VERSION = 1

STATE_FILE = "state.json"
OBJECTS_DIR = "objects"
RECIPES_FILE = "recipes.json"
CHECKPOINTS_FILE = "checkpoints.json"
LINEAGE_FILE = "lineage.json"


def write_json_atomic(path: str, payload: dict, **dump_kwargs) -> None:
    """Write-to-temp + rename, like the chunk store's object files: a
    crashed writer must never leave a truncated metadata file under its
    real name — loaders would fail on it and the repository (or a whole
    hub) would be unreadable until repaired by hand."""
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(payload, fh, **dump_kwargs)
    os.replace(tmp, path)


# ------------------------------------------------------------- dict codecs
def commit_to_dict(commit: PipelineCommit) -> dict:
    return {
        "commit_id": commit.commit_id,
        "pipeline": commit.pipeline,
        "version": commit.version.dotted,
        "branch": commit.branch,
        "parents": list(commit.parents),
        "component_versions": dict(commit.component_versions),
        "component_fingerprints": dict(commit.component_fingerprints),
        "stage_outputs": dict(commit.stage_outputs),
        "metrics": dict(commit.metrics),
        "score": commit.score,
        "message": commit.message,
        "author": commit.author,
        "sequence": commit.sequence,
    }


def commit_from_dict(entry: dict) -> PipelineCommit:
    return PipelineCommit(
        commit_id=entry["commit_id"],
        pipeline=entry["pipeline"],
        version=SemVer.parse_dotted(entry["version"]),
        branch=entry["branch"],
        parents=tuple(entry["parents"]),
        component_versions=entry["component_versions"],
        component_fingerprints=entry["component_fingerprints"],
        stage_outputs=entry["stage_outputs"],
        metrics=entry["metrics"],
        score=entry["score"],
        message=entry["message"],
        author=entry["author"],
        sequence=entry["sequence"],
    )


def spec_to_dict(spec: PipelineSpec) -> dict:
    return {
        "stages": list(spec.stages),
        "edges": [list(edge) for edge in spec.edges],
    }


def spec_from_dict(name: str, entry: dict) -> PipelineSpec:
    return PipelineSpec(
        name=name,
        stages=tuple(entry["stages"]),
        edges=tuple(tuple(edge) for edge in entry["edges"]),
    )


def recipe_to_dict(recipe: Recipe) -> dict:
    return {
        "blob": recipe.blob_digest,
        "chunks": list(recipe.chunk_digests),
        "size": recipe.size,
    }


def recipe_from_dict(entry: dict) -> Recipe:
    return Recipe(
        blob_digest=entry["blob"],
        chunk_digests=tuple(entry["chunks"]),
        size=entry["size"],
    )


def record_to_dict(record: CheckpointRecord) -> dict:
    return {
        "key": record.key,
        "component_id": record.component_id,
        "output_ref": record.output_ref,
        "output_bytes": record.output_bytes,
        "run_seconds": record.run_seconds,
        "metrics": dict(record.metrics),
    }


def record_from_dict(entry: dict) -> CheckpointRecord:
    return CheckpointRecord(
        key=entry["key"],
        component_id=entry["component_id"],
        output_ref=entry["output_ref"],
        output_bytes=entry["output_bytes"],
        run_seconds=entry["run_seconds"],
        metrics=dict(entry["metrics"]),
    )


# ------------------------------------------------------------- state file
def repository_state(repo) -> dict:
    """Serializable snapshot of a repository's version-control state."""
    commits = [commit_to_dict(c) for c in repo.graph.all_commits()]
    specs = {
        name: spec_to_dict(repo.spec(name)) for name in repo.branches.pipelines()
    }
    heads = {
        pipeline: {
            branch: repo.branches.head(pipeline, branch)
            for branch in repo.branches.branches(pipeline)
        }
        for pipeline in repo.branches.pipelines()
    }
    counts = {
        pipeline: {
            branch: repo.branches.next_commit_count(pipeline, branch)
            for branch in repo.branches.branches(pipeline)
        }
        for pipeline in repo.branches.pipelines()
    }
    return {
        "format": FORMAT_VERSION,
        "metric": repo.metric,
        "seed": repo.seed,
        "commits": commits,
        "specs": specs,
        "heads": heads,
        "commit_counts": counts,
        "sequence": repo._sequence,
    }


def save_repository(repo, path: str | os.PathLike[str]) -> None:
    """Write the repository state to ``path`` as JSON."""
    state = repository_state(repo)
    with open(os.fspath(path), "w") as fh:
        json.dump(state, fh, indent=2, sort_keys=True)


def load_repository(path: str | os.PathLike[str], registry=None, repo=None):
    """Rebuild a repository from ``path``.

    ``registry`` (a :class:`ComponentRegistry` or any object with a
    compatible ``get``/``register``) supplies the live components the
    commits reference; commits whose components are absent still load (the
    history is intact) but cannot be re-instantiated until the components
    are registered.
    """
    from .repository import MLCask

    with open(os.fspath(path)) as fh:
        state = json.load(fh)
    if state.get("format") != FORMAT_VERSION:
        raise RepositoryError(
            f"unsupported repository format {state.get('format')!r}"
        )

    if repo is None:
        repo = MLCask(metric=state["metric"], seed=state["seed"])
    if registry is not None:
        repo.registry = registry

    for name, spec_state in state["specs"].items():
        repo._specs[name] = spec_from_dict(name, spec_state)

    for entry in state["commits"]:
        repo.graph.add(commit_from_dict(entry))

    for pipeline, branches in state["heads"].items():
        for branch, head in branches.items():
            repo.branches.set_head(pipeline, branch, head)
    for pipeline, branches in state["commit_counts"].items():
        for branch, count in branches.items():
            for _ in range(count):
                repo.branches.note_commit(pipeline, branch)
    repo._sequence = state["sequence"]
    return repo


# ------------------------------------------------------ directory layout
def save_repository_dir(repo, path: str | os.PathLike[str]) -> None:
    """Persist state *and* content under a repository directory.

    Layout::

        <dir>/state.json        version-control state (as save_repository)
        <dir>/objects/ab/cdef.. chunks, git-style two-char fan-out
        <dir>/recipes.json      blob digest -> ordered chunk digests
        <dir>/checkpoints.json  checkpoint index (reuse metadata)
        <dir>/lineage.json      append-only provenance ledger
    """
    root = os.fspath(path)
    os.makedirs(root, exist_ok=True)
    save_repository(repo, os.path.join(root, STATE_FILE))

    disk = FileChunkStore(os.path.join(root, OBJECTS_DIR))
    chunks = repo.objects.chunks
    held = set(chunks.digests())
    for digest in held:
        if not disk.contains(digest):
            disk.import_chunk(digest, chunks.get(digest))
    # Mirror deletions too: chunks the repository no longer holds (e.g.
    # swept by gc) must not resurrect from disk on the next load.
    for digest in disk.digests():
        if digest not in held:
            disk.discard(digest)

    with open(os.path.join(root, RECIPES_FILE), "w") as fh:
        json.dump(
            {"recipes": [recipe_to_dict(r) for r in repo.objects.recipes()]},
            fh,
            indent=2,
            sort_keys=True,
        )
    with open(os.path.join(root, CHECKPOINTS_FILE), "w") as fh:
        json.dump(
            {"records": [record_to_dict(r) for r in repo.checkpoints.records()]},
            fh,
            indent=2,
            sort_keys=True,
        )
    with open(os.path.join(root, LINEAGE_FILE), "w") as fh:
        json.dump(repo.lineage.to_payload(), fh, indent=2, sort_keys=True)


def is_repository_dir(path: str | os.PathLike[str]) -> bool:
    return os.path.isfile(os.path.join(os.fspath(path), STATE_FILE))


def gc_repository_dir(
    path: str | os.PathLike[str], keep_checkpoints: bool = False
) -> tuple["GCReport", int]:
    """Sweep a repository *directory* in place, without loading chunks.

    Live roots are computed from the persisted commit graph (every stage
    output a commit references); with ``keep_checkpoints`` the archived
    checkpoint records count as roots too (preserving reuse for outputs
    no commit kept, e.g. losing merge candidates). Everything else —
    chunk files, dead recipes, and (unless kept) orphaned checkpoint
    records — is removed, and the metadata files are rewritten to match.

    Unlike ``MLCask.load_dir() -> repo.gc() -> save_dir()``, this works
    directly against the on-disk :class:`FileChunkStore`, so peak memory
    is the metadata, never the content. Returns ``(report,
    pruned_records)``.
    """
    from ..storage.gc import GCReport, collect_garbage  # noqa: F401
    from ..storage.object_store import ObjectStore

    root = os.fspath(path)
    if not is_repository_dir(root):
        raise RepositoryError(f"not a repository directory: {root}")
    with open(os.path.join(root, STATE_FILE)) as fh:
        state = json.load(fh)

    live: set[str] = set()
    for entry in state.get("commits", []):
        live.update(entry.get("stage_outputs", {}).values())

    record_entries: list[dict] = []
    checkpoints_path = os.path.join(root, CHECKPOINTS_FILE)
    if os.path.isfile(checkpoints_path):
        with open(checkpoints_path) as fh:
            record_entries = json.load(fh)["records"]
    if keep_checkpoints:
        live.update(entry["output_ref"] for entry in record_entries)
    kept_records = [
        entry for entry in record_entries if entry["output_ref"] in live
    ]

    objects = ObjectStore(
        chunk_store=FileChunkStore(os.path.join(root, OBJECTS_DIR))
    )
    recipes_path = os.path.join(root, RECIPES_FILE)
    if os.path.isfile(recipes_path):
        with open(recipes_path) as fh:
            for entry in json.load(fh)["recipes"]:
                objects.add_recipe(recipe_from_dict(entry))

    report = collect_garbage(objects, live)

    # Atomic rewrites: the chunk files are already gone, so a truncated
    # recipes/checkpoints file here would leave the repo unreadable.
    write_json_atomic(
        recipes_path,
        {"recipes": [recipe_to_dict(r) for r in objects.recipes()]},
        indent=2,
        sort_keys=True,
    )
    write_json_atomic(
        checkpoints_path, {"records": kept_records}, indent=2, sort_keys=True
    )

    # The lineage ledger is append-only: rows for swept outputs are kept
    # but flagged collected, so provenance survives the sweep.
    lineage_path = os.path.join(root, LINEAGE_FILE)
    if os.path.isfile(lineage_path):
        with open(lineage_path) as fh:
            lineage_entries = json.load(fh).get("records", [])
        for entry in lineage_entries:
            if entry.get("output_ref") not in live:
                entry["collected"] = True
        write_json_atomic(
            lineage_path,
            {"records": lineage_entries},
            indent=2,
            sort_keys=True,
        )
    return report, len(record_entries) - len(kept_records)


def load_repository_dir(path: str | os.PathLike[str], registry=None):
    """Rebuild a repository (state + content) from a repository directory."""
    root = os.fspath(path)
    if not is_repository_dir(root):
        raise RepositoryError(f"not a repository directory: {root}")
    repo = load_repository(os.path.join(root, STATE_FILE), registry=registry)

    objects_root = os.path.join(root, OBJECTS_DIR)
    if os.path.isdir(objects_root):
        disk = FileChunkStore(objects_root)
        for digest in disk.digests():
            repo.objects.import_chunk(digest, disk.get(digest))

    recipes_path = os.path.join(root, RECIPES_FILE)
    if os.path.isfile(recipes_path):
        with open(recipes_path) as fh:
            for entry in json.load(fh)["recipes"]:
                repo.objects.add_recipe(recipe_from_dict(entry))

    checkpoints_path = os.path.join(root, CHECKPOINTS_FILE)
    if os.path.isfile(checkpoints_path):
        with open(checkpoints_path) as fh:
            for entry in json.load(fh)["records"]:
                repo.checkpoints.import_record(record_from_dict(entry))

    lineage_path = os.path.join(root, LINEAGE_FILE)
    if os.path.isfile(lineage_path):  # absent in pre-ledger directories
        with open(lineage_path) as fh:
            repo.lineage.load_payload(json.load(fh))
    return repo
