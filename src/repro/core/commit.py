"""Pipeline commits: immutable snapshots of a pipeline version.

A commit records which component version sits at every stage, where each
stage's archived output lives, the evaluation metrics of the run, and the
lineage edges (parent commits). Fig. 2/3 of the paper draw exactly these
objects: boxes like ``master.0.1`` holding a component-version table, with
"pipeline sequence" edges (same-branch succession) and "pipeline lineage"
edges (branch/merge parentage).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..storage.hashing import fingerprint_many
from .semver import SemVer


@dataclass(frozen=True)
class PipelineCommit:
    """One immutable pipeline version."""

    commit_id: str
    pipeline: str
    version: SemVer
    branch: str
    parents: tuple[str, ...]
    component_versions: dict = field(compare=False)  # stage -> component identifier
    component_fingerprints: dict = field(compare=False)  # stage -> fingerprint
    stage_outputs: dict = field(default_factory=dict, compare=False)
    metrics: dict = field(default_factory=dict, compare=False)
    score: float | None = None
    message: str = ""
    author: str = ""
    sequence: int = 0  # logical timestamp: total order of commit creation

    @property
    def label(self) -> str:
        """Paper-style label, e.g. ``master.0.2`` or ``Frank-dev.0.1``."""
        return self.version.dotted

    def component_at(self, stage: str) -> str:
        return self.component_versions[stage]

    def describe(self) -> str:
        parts = ", ".join(
            f"{stage}: {identifier}"
            for stage, identifier in self.component_versions.items()
        )
        score = f" score={self.score:.4f}" if self.score is not None else ""
        return f"{self.label} [{parts}]{score}"


def make_commit_id(
    pipeline: str,
    version: SemVer,
    parents: tuple[str, ...],
    component_fingerprints: dict,
) -> str:
    """Content-derived commit id (stable across processes)."""
    parts = ["commit", pipeline, version.dotted, *parents]
    for stage in sorted(component_fingerprints):
        parts.append(f"{stage}={component_fingerprints[stage]}")
    return fingerprint_many(parts)
