"""Commit graph: lineage queries and common-ancestor search.

The merge operation's search space is anchored at "the common ancestor of
HEAD and MERGE_HEAD" (section V); versions before it "are not considered
since they could be outdated or irrelevant". This module provides exactly
those queries over the commit DAG: ancestor sets, the (best) common
ancestor, and the commits lying between an ancestor and a head.
"""

from __future__ import annotations

from collections import deque

from ..errors import CommitNotFoundError, MergeError
from .commit import PipelineCommit


class CommitGraph:
    """Append-only DAG of :class:`PipelineCommit` objects.

    ``revision`` counts mutations — a cheap staleness token consumers
    (e.g. the remote server's response cache) compare instead of hashing
    repository state.
    """

    def __init__(self) -> None:
        self._commits: dict[str, PipelineCommit] = {}
        self.revision = 0

    def add(self, commit: PipelineCommit) -> None:
        if commit.commit_id in self._commits:
            raise MergeError(f"duplicate commit id {commit.commit_id[:12]}")
        for parent in commit.parents:
            if parent not in self._commits:
                raise CommitNotFoundError(parent)
        self._commits[commit.commit_id] = commit
        self.revision += 1

    def get(self, commit_id: str) -> PipelineCommit:
        if commit_id not in self._commits:
            raise CommitNotFoundError(commit_id)
        return self._commits[commit_id]

    def __contains__(self, commit_id: str) -> bool:
        return commit_id in self._commits

    def __len__(self) -> int:
        return len(self._commits)

    def all_commits(self) -> list[PipelineCommit]:
        return sorted(self._commits.values(), key=lambda c: c.sequence)

    # --------------------------------------------------------------- queries
    def ancestors(self, commit_id: str, include_self: bool = True) -> set[str]:
        """Every commit reachable through parent edges."""
        start = self.get(commit_id)  # validates existence
        seen: set[str] = {start.commit_id} if include_self else set()
        queue = deque(start.parents)
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            queue.extend(self.get(current).parents)
        return seen

    def is_ancestor(self, maybe_ancestor: str, descendant: str) -> bool:
        return maybe_ancestor in self.ancestors(descendant)

    def common_ancestor(self, a: str, b: str) -> PipelineCommit:
        """Best common ancestor: the latest-created commit reachable from
        both sides. For two-branch histories this is the branch point; for
        repeated merges it picks the most recent merge base, matching
        git's merge-base behaviour on these shapes."""
        shared = self.ancestors(a) & self.ancestors(b)
        if not shared:
            raise MergeError(
                f"no common ancestor between {a[:12]} and {b[:12]}"
            )
        return max((self._commits[c] for c in shared), key=lambda c: c.sequence)

    def commits_between(
        self, head_id: str, ancestor_id: str, include_ancestor: bool = True
    ) -> list[PipelineCommit]:
        """Commits on the path(s) from ``ancestor`` (inclusive by default)
        up to and including ``head``, in creation order. These are the
        pipeline versions whose components populate the merge search
        space."""
        head_ancestors = self.ancestors(head_id)
        if ancestor_id not in head_ancestors:
            raise MergeError(
                f"{ancestor_id[:12]} is not an ancestor of {head_id[:12]}"
            )
        selected = [
            self._commits[c]
            for c in head_ancestors
            if self.is_ancestor(ancestor_id, c)
        ]
        if not include_ancestor:
            selected = [c for c in selected if c.commit_id != ancestor_id]
        return sorted(selected, key=lambda c: c.sequence)

    def first_parent_chain(self, head_id: str) -> list[PipelineCommit]:
        """Linear history following first parents, head first."""
        chain = []
        cursor: str | None = head_id
        while cursor is not None:
            commit = self.get(cursor)
            chain.append(commit)
            cursor = commit.parents[0] if commit.parents else None
        return chain
