"""Execution context threaded through component runs."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class ExecutionContext:
    """Carries the run's seeded RNG and the metric being optimized.

    Components receive the RNG (never the global numpy state) so that
    identical (component version, input) pairs produce identical outputs —
    a precondition for checkpoint reuse to be semantically safe.
    """

    seed: int = 0
    metric: str = "accuracy"
    extras: dict = field(default_factory=dict)

    def rng_for(self, component_fingerprint: str) -> np.random.Generator:
        """Per-component generator derived from the run seed and the
        component identity, so reordering stages cannot leak randomness
        between components. Uses the fingerprint's own hex digits rather
        than ``hash()``, which is process-salted and would break
        cross-process determinism."""
        stable = int(component_fingerprint[:15] or "0", 16)
        mixed = (self.seed * 1_000_003 + stable) % (2**63)
        return np.random.default_rng(mixed)
