"""Checkpoint stores: archived component outputs keyed for reuse.

Section III: "Once a pipeline is fully processed, all its component outputs
are archived for future reuse." Section VI-B builds the PR pruning on top:
"if a component of the pipeline candidate was executed before, it does not
need to be executed again since its output has already been saved and thus
can be reused."

A checkpoint is keyed by the pair *(component fingerprint, input content
reference)* — the same component version fed the same input bytes always
produces the same archived output, so the key is exactly the reuse
condition. Two persistence backends implement the same interface:

* :class:`ChunkedCheckpointStore` — MLCask's path: outputs go through the
  deduplicating object store (ForkBase-like);
* :class:`FolderCheckpointStore` — the baselines' path: every output is a
  full copy in its own folder.

Concurrency contract: every public operation (``lookup``, ``save``,
``load``, ``import_record``, ``prune``, ``records``, ``len``) is atomic
under one reentrant lock shared by the index, the ``revision`` counter,
and the ``save_seconds``/``load_seconds`` accumulators — so the parallel
engine's workers may share one store freely. The lock is *held across
backend persistence* (``_persist``/``_retrieve``): the backends
(:class:`~repro.storage.object_store.ObjectStore`, folder archives) are
not internally thread-safe, so storage traffic serializes while component
compute — and payload (de)serialization, which happens outside the
lock — runs in parallel. The store only prevents torn state, not
duplicate work — two racing ``save`` calls for one key both persist (the
content-addressed backend dedups the bytes; last index write wins, both
writes being identical records). Computing a key at most once is the
engine's single-flight layer (:mod:`repro.engine.single_flight`), built
on top of this contract.
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..data.serialize import payload_from_bytes, payload_to_bytes
from ..storage.accounting import StorageStats
from ..storage.folder_store import FolderStore
from ..storage.hashing import fingerprint_many
from ..storage.object_store import ObjectStore
from .component import Component


@dataclass(frozen=True)
class CheckpointRecord:
    """One archived component output."""

    key: str
    component_id: str
    output_ref: str
    output_bytes: int
    run_seconds: float
    metrics: dict = field(default_factory=dict, compare=False)


def checkpoint_key(component: Component, input_ref: str) -> str:
    """Reuse key: same component version + params + input content."""
    return fingerprint_many(["checkpoint", component.fingerprint, input_ref])


class CheckpointStore(ABC):
    """Index of checkpoint records over a persistence backend."""

    def __init__(self) -> None:
        self._index: dict[str, CheckpointRecord] = {}
        self.save_seconds = 0.0
        self.load_seconds = 0.0
        # Mutation counter: a staleness token for response caches.
        self.revision = 0
        # Guards the index, revision, timing accumulators, and backend
        # persistence — see the module docstring's concurrency contract.
        # Reentrant so a subclass helper may call public operations.
        self._lock = threading.RLock()

    # ------------------------------------------------------------ interface
    @abstractmethod
    def _persist(self, key: str, data: bytes) -> str:
        """Store bytes; return a retrieval reference."""

    @abstractmethod
    def _retrieve(self, record: CheckpointRecord) -> bytes: ...

    @property
    @abstractmethod
    def stats(self) -> StorageStats: ...

    # ------------------------------------------------------------ operations
    def lookup(self, component: Component, input_ref: str) -> CheckpointRecord | None:
        with self._lock:
            return self._index.get(checkpoint_key(component, input_ref))

    def save(
        self,
        component: Component,
        input_ref: str,
        payload,
        run_seconds: float,
        metrics: dict | None = None,
    ) -> CheckpointRecord:
        key = checkpoint_key(component, input_ref)
        start = time.perf_counter()
        # Serialization is pure CPU on caller-owned data — outside the
        # lock, so concurrent workers don't serialize their encodes.
        data = payload_to_bytes(payload)
        with self._lock:
            output_ref = self._persist(key, data)
            self.save_seconds += time.perf_counter() - start
            record = CheckpointRecord(
                key=key,
                component_id=component.identifier,
                output_ref=output_ref,
                output_bytes=len(data),
                run_seconds=run_seconds,
                metrics=dict(metrics or {}),
            )
            self._index[key] = record
            self.revision += 1
            return record

    def load(self, record: CheckpointRecord):
        start = time.perf_counter()
        with self._lock:
            data = self._retrieve(record)
        # Deserialization outside the lock, like save's encode.
        payload = payload_from_bytes(data)
        with self._lock:
            self.load_seconds += time.perf_counter() - start
        return payload

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def records(self) -> list[CheckpointRecord]:
        with self._lock:
            return list(self._index.values())

    def import_record(self, record: CheckpointRecord) -> bool:
        """Adopt a record replicated from a peer or loaded from disk.

        The key is content-derived (component fingerprint + input
        content), so an imported record enables checkpoint reuse here
        under exactly the conditions it did at its origin. Returns False
        when the key is already indexed.
        """
        with self._lock:
            if record.key in self._index:
                return False
            self._index[record.key] = record
            self.revision += 1
            return True

    def prune(self, live_refs: set[str]) -> int:
        """Drop index entries whose output is no longer held (post-GC);
        returns the number of records removed."""
        with self._lock:
            dead = [
                key
                for key, record in self._index.items()
                if record.output_ref not in live_refs
            ]
            for key in dead:
                del self._index[key]
            if dead:
                self.revision += 1
            return len(dead)


class ChunkedCheckpointStore(CheckpointStore):
    """MLCask's checkpoint path: deduplicating chunked object store."""

    def __init__(self, objects: ObjectStore | None = None):
        super().__init__()
        self.objects = objects if objects is not None else ObjectStore()

    def _persist(self, key: str, data: bytes) -> str:
        return self.objects.put(data)

    def _retrieve(self, record: CheckpointRecord) -> bytes:
        return self.objects.get(record.output_ref)

    @property
    def stats(self) -> StorageStats:
        return self.objects.stats


class FolderCheckpointStore(CheckpointStore):
    """Baselines' checkpoint path: one full folder copy per output."""

    def __init__(self, folders: FolderStore | None = None):
        super().__init__()
        self.folders = folders if folders is not None else FolderStore()
        self._counter = 0

    def _persist(self, key: str, data: bytes) -> str:
        # Each archive lands in its own version folder, like the paper's
        # baselines; the counter mirrors "iteration N's output directory".
        self._counter += 1
        version = f"v{self._counter:06d}"
        self.folders.archive(key, version, data)
        return f"{key}/{version}"

    def _retrieve(self, record: CheckpointRecord) -> bytes:
        namespace, version = record.output_ref.rsplit("/", 1)
        return self.folders.retrieve(namespace, version)

    @property
    def stats(self) -> StorageStats:
        return self.folders.stats
