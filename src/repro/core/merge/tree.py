"""The pipeline search tree: Algorithm 1 of the paper.

Every path from the virtual root to a leaf is one pre-merge pipeline
candidate. Each :class:`TreeNode` records "the reference to a set of child
nodes, its corresponding pipeline component, an execution status flag, and
the reference to the component's output" (section V) — plus the score used
by the prioritized search of section VII-E.

Because "every node has only one parent node ... the nodes sharing the
same parent node also share the same path to the tree root" (section
VI-B): once a node is executed, every candidate through it reuses its
output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..component import Component
from .search_space import MergeScope


@dataclass
class TreeNode:
    """One node of the pipeline search tree."""

    component: Component | None = None  # None only for the virtual root
    stage: str | None = None
    executed: bool = False
    output_ref: str = ""
    score: float | None = None
    children: list["TreeNode"] = field(default_factory=list)
    parent: "TreeNode | None" = field(default=None, repr=False)

    @property
    def is_root(self) -> bool:
        return self.component is None

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def identifier(self) -> str:
        return self.component.identifier if self.component else "<root>"

    def path_from_root(self) -> list["TreeNode"]:
        """Nodes from the first real component down to this node."""
        path: list[TreeNode] = []
        node: TreeNode | None = self
        while node is not None and not node.is_root:
            path.append(node)
            node = node.parent
        path.reverse()
        return path

    def add_child(self, child: "TreeNode") -> "TreeNode":
        child.parent = self
        self.children.append(child)
        return child


def build_search_tree(scope: MergeScope) -> TreeNode:
    """Algorithm 1: level ``i`` holds every version in ``S(f_i)``.

    The virtual root is created pre-executed; then, for each pipeline
    stage in order, every node at the previous level receives one child
    per component version in that stage's search space.
    """
    root = TreeNode(component=None, stage=None, executed=True)
    frontier = [root]
    for stage in scope.stage_order:
        versions = scope.space(stage)
        next_frontier: list[TreeNode] = []
        for node in frontier:
            for component in versions:
                child = node.add_child(
                    TreeNode(component=component, stage=stage, executed=False)
                )
                next_frontier.append(child)
        frontier = next_frontier
    return root


def nodes_at_level(root: TreeNode, level: int) -> list[TreeNode]:
    """All nodes ``level`` edges below the root (root itself is level 0)."""
    frontier = [root]
    for _ in range(level):
        frontier = [child for node in frontier for child in node.children]
    return frontier


def iter_nodes(root: TreeNode):
    """Depth-first iteration over every node including the root."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children))


def leaves(root: TreeNode) -> list[TreeNode]:
    return [node for node in iter_nodes(root) if node.is_leaf and not node.is_root]


def count_candidates(root: TreeNode) -> int:
    """Number of root-to-leaf paths currently in the tree."""
    return len(leaves(root))


def count_feasible_components(root: TreeNode) -> int:
    """Nodes still needing execution (the orange nodes of Fig. 4)."""
    return sum(
        1 for node in iter_nodes(root) if not node.is_root and not node.executed
    )


def candidate_components(leaf: TreeNode) -> dict[str, Component]:
    """stage -> component binding along a leaf's path."""
    return {node.stage: node.component for node in leaf.path_from_root()}
