"""The metric-driven merge operation (paper sections V-VI).

``p_merged = argmax { score(p) : p ∈ P_candidate }``

Pipeline: build the merge scope (search spaces anchored at the common
ancestor), construct the pipeline search tree (Algorithm 1), prune it with
the compatibility LUT (PC) and the history checkpoints (PR) according to
the requested mode, execute the surviving candidates (Algorithm 2 or a
prioritized/random ordered search), and commit the winner on the HEAD
branch with both tips as parents.

Modes reproduce the paper's ablations (section VII-B):

* ``"pcpr"``    — full MLCask: PC + PR, reusable outputs via the chunked store;
* ``"pc_only"`` — "MLCask w/o PR": incompatible candidates pruned up front,
  every surviving pipeline executed from scratch into folder archives;
* ``"none"``    — "MLCask w/o PCPR": every combination executed from
  scratch; incompatibilities surface as runtime failures mid-pipeline.
"""

from __future__ import annotations

from ...errors import MergeError, NoCandidateError
from ..checkpoint import FolderCheckpointStore
from ..context import ExecutionContext
from ..executor import Executor
from ..pipeline import PipelineInstance
from .compatibility import build_compatibility_lut, prune_incompatible
from .pruning import mark_checkpointed_nodes
from .search_space import build_merge_scope
from .traversal import execute_tree
from .prioritized import run_ordered_search
from .tree import build_search_tree, count_candidates

MERGE_MODES = ("pcpr", "pc_only", "none")
SEARCH_METHODS = ("exhaustive", "prioritized", "random")


def winners_by_metric(evaluations, metric_names):
    """Best candidate per metric (paper section V: "If there are different
    metrics for evaluation, MLCask generates different optimal pipeline
    solutions for different metrics so that users could select").

    Returns ``{metric: (evaluation, score)}`` over the candidates whose
    runs recorded that metric.
    """
    from ...ml.metrics import score_from_metric

    winners = {}
    for metric in metric_names:
        best = None
        best_score = None
        for evaluation in evaluations:
            if evaluation.report is None or evaluation.report.failed:
                continue
            if metric not in evaluation.report.metrics:
                continue
            score = score_from_metric(metric, evaluation.report.metrics[metric])
            if best_score is None or score > best_score:
                best, best_score = evaluation, score
        if best is not None:
            winners[metric] = (best, best_score)
    return winners


def metric_driven_merge(
    repo,
    pipeline: str,
    head_branch: str,
    merge_head_branch: str,
    mode: str = "pcpr",
    search: str = "exhaustive",
    budget: int | None = None,
    time_budget_seconds: float | None = None,
    message: str = "",
    seed: int = 0,
    workers: int = 1,
):
    """Run the merge and return a :class:`repro.core.repository.MergeOutcome`.

    ``workers > 1`` evaluates several candidate leaves concurrently via the
    parallel engine (:func:`repro.engine.run_parallel_search`) — ordered
    searches only; the exhaustive depth-first walk is inherently
    sequential (its in-traversal pruning mutates the tree as it descends).
    """
    from ..repository import MergeOutcome

    if mode not in MERGE_MODES:
        raise MergeError(f"unknown merge mode {mode!r}; pick one of {MERGE_MODES}")
    if search not in SEARCH_METHODS:
        raise MergeError(f"unknown search {search!r}; pick one of {SEARCH_METHODS}")
    if workers < 1:
        raise MergeError(f"workers must be >= 1, got {workers}")
    if workers > 1 and search == "exhaustive":
        raise MergeError(
            "the exhaustive search is sequential; use search='prioritized' "
            "or 'random' with workers > 1"
        )

    head = repo.head_commit(pipeline, head_branch)
    merge_head = repo.head_commit(pipeline, merge_head_branch)
    scope = build_merge_scope(
        repo.graph, repo.registry, repo.spec(pipeline), head, merge_head
    )

    root = build_search_tree(scope)
    candidates_total = count_candidates(root)

    pruned = 0
    if mode in ("pcpr", "pc_only"):
        lut = build_compatibility_lut(scope)
        pruned = prune_incompatible(root, lut, scope.spec)
    if mode == "pcpr":
        mark_checkpointed_nodes(root, scope)
        # Candidate evaluations write through the repo's real stores, so
        # they leave lineage too; the winning candidate's rows get the
        # merge commit back-filled in _store_commit. Ablation modes run
        # against throwaway folder archives and record no lineage.
        executor = Executor(
            repo.checkpoints, metric=repo.metric, reuse=True, lineage=repo.lineage
        )
    else:
        # Ablations re-execute everything and archive full copies per run,
        # like the paper's w/o-PR and w/o-PCPR variants.
        executor = Executor(FolderCheckpointStore(), metric=repo.metric, reuse=False)

    context = ExecutionContext(seed=seed, metric=repo.metric)
    if search == "exhaustive":
        evaluations = execute_tree(root, scope, executor, context)
    elif workers > 1:
        from ...engine import run_parallel_search

        evaluations = run_parallel_search(
            root,
            scope,
            executor,
            context,
            method=search,
            workers=workers,
            budget=budget,
            time_budget_seconds=time_budget_seconds,
            seed=seed,
        )
    else:
        evaluations = run_ordered_search(
            root,
            scope,
            executor,
            context,
            method=search,
            budget=budget,
            time_budget_seconds=time_budget_seconds,
            seed=seed,
        )

    viable = [e for e in evaluations if e.score is not None]
    if not viable:
        raise NoCandidateError(
            f"merge of {merge_head_branch} into {head_branch} found no viable pipeline"
        )
    best = max(viable, key=lambda e: e.score)

    instance = PipelineInstance(spec=scope.spec, components=dict(best.components))
    commit = repo._store_commit(
        pipeline,
        head_branch,
        instance,
        (head.commit_id, merge_head.commit_id),
        best.report,
        message or f"metric-driven merge of {merge_head_branch} (mode={mode})",
        score_override=best.score,
    )

    executed = sum(e.report.n_executed for e in evaluations if e.report is not None)
    reused = sum(e.report.n_reused for e in evaluations if e.report is not None)
    return MergeOutcome(
        commit=commit,
        fast_forward=False,
        winner_report=best.report,
        candidates_total=candidates_total,
        candidates_pruned_incompatible=pruned,
        candidates_evaluated=len(evaluations),
        components_executed=executed,
        components_reused=reused,
        execution_seconds=sum(
            e.report.execution_seconds for e in evaluations if e.report is not None
        ),
        storage_seconds=sum(
            e.report.storage_seconds for e in evaluations if e.report is not None
        ),
        evaluations=evaluations,
    )
