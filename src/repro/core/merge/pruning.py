"""PR pruning: marking checkpointed nodes from the commit history.

Paper section VI-B, step one: "we mark the node with an execution status
using the previously trained pipelines in the commit history ... a
reference to the component's output is recorded in the node object for
future reuse." A tree node is checkpointed (green in Fig. 4) when the path
from the root to it matches a *prefix* of some trained pipeline's
component sequence — those components ran with exactly those upstream
versions, so their archived outputs apply verbatim.

Leaf nodes matching a full trained pipeline also inherit the commit's
metric score, which doubles as the initialization of the prioritized
search (section VII-E: "The initial scores are assigned using scores of
the trained pipelines on MERGE_HEAD and HEAD").
"""

from __future__ import annotations

from .search_space import MergeScope
from .tree import TreeNode


def mark_checkpointed_nodes(root: TreeNode, scope: MergeScope) -> int:
    """Walk each in-scope trained commit down the tree, marking matched
    prefixes executed. Returns the number of nodes newly marked."""
    marked = 0
    stage_order = scope.stage_order
    for commit in scope.commits:
        node = root
        for stage in stage_order:
            identifier = commit.component_versions.get(stage)
            if identifier is None:
                break
            match = None
            for child in node.children:
                if child.component is not None and child.component.identifier == identifier:
                    match = child
                    break
            if match is None:
                break  # this commit's tail was pruned (incompatible elsewhere)
            if not match.executed:
                match.executed = True
                marked += 1
            output_ref = commit.stage_outputs.get(stage, "")
            if output_ref and not match.output_ref:
                match.output_ref = output_ref
            node = match
        else:
            # Full path matched: the leaf is a previously-trained pipeline.
            if node.is_leaf and node.score is None and commit.score is not None:
                node.score = commit.score
    return marked


def executed_leaf_scores(root: TreeNode) -> dict[str, float]:
    """identifier-path -> score for leaves already carrying scores."""
    scores: dict[str, float] = {}
    stack = [root]
    while stack:
        node = stack.pop()
        if node.is_leaf and not node.is_root and node.score is not None:
            key = "/".join(n.identifier for n in node.path_from_root())
            scores[key] = node.score
        stack.extend(node.children)
    return scores
