"""Compatibility look-up table and PC pruning (paper section VI-A).

"In practice, a compatibility look-up table (LUT) is evaluated based on
the pipelines' version history to support the pruning procedure. Firstly,
given a component, all its versions on the HEAD and MERGE_HEAD are
enumerated. Secondly, for every version of the given component, we find
its compatible succeeding component versions. Finally, we make the
compatible component pairs in 2-tuple and fill the LUT with 2-tuple."

Compatibility itself follows the semantic-version rule of section IV-B:
the consumer must accept the producer's output data schema.
"""

from __future__ import annotations

from ..component import Component, DatasetComponent, LibraryComponent
from .search_space import MergeScope
from .tree import TreeNode


class CompatibilityLUT:
    """Set of compatible (producer id, consumer id) 2-tuples."""

    def __init__(self) -> None:
        self._pairs: set[tuple[str, str]] = set()

    def add(self, producer: Component, consumer: Component) -> None:
        self._pairs.add((producer.identifier, consumer.identifier))

    def compatible(self, producer: Component | None, consumer: Component) -> bool:
        """Root children (datasets) are always allowed: nothing precedes
        them. Everything else must appear in the table."""
        if producer is None:
            return True
        return (producer.identifier, consumer.identifier) in self._pairs

    def __len__(self) -> int:
        return len(self._pairs)

    def pairs(self) -> set[tuple[str, str]]:
        return set(self._pairs)


def schema_compatible(producer: Component, consumer: Component) -> bool:
    """Definition 4 via schema tags: the semantic-version ground truth."""
    if isinstance(consumer, LibraryComponent):
        return consumer.accepts(producer.output_schema)
    # Dataset components never consume — they only ever sit at the source.
    return isinstance(consumer, DatasetComponent) is False


def build_compatibility_lut(scope: MergeScope) -> CompatibilityLUT:
    """Enumerate per-stage version pairs along pipeline edges and keep the
    compatible ones."""
    lut = CompatibilityLUT()
    for src_stage, dst_stage in scope.spec.edges:
        for producer in scope.space(src_stage):
            for consumer in scope.space(dst_stage):
                if isinstance(consumer, LibraryComponent) and consumer.accepts(
                    producer.output_schema
                ):
                    lut.add(producer, consumer)
    return lut


def compatible_with_predecessors(
    binding: dict,
    parent: TreeNode,
    child: TreeNode,
    lut: CompatibilityLUT,
    spec=None,
) -> bool:
    """Is ``child`` compatible with every one of its *pipeline*
    predecessors? The search tree linearizes the DAG in topological
    order, so a node's tree parent is not necessarily its data producer;
    with a ``spec`` the real predecessors are looked up in ``binding``
    (stage -> component along the current path). Without a spec the
    pipeline is assumed to be a chain and the tree parent is the
    producer."""
    if child.component is None:
        return True
    if spec is None:
        return lut.compatible(parent.component, child.component)
    predecessors = spec.predecessors(child.stage)
    if not predecessors:
        return True
    return all(
        lut.compatible(binding[stage], child.component) for stage in predecessors
    )


def prune_incompatible(root: TreeNode, lut: CompatibilityLUT, spec=None) -> int:
    """PC pruning: drop children incompatible with their pipeline
    predecessors, then remove any *dead-end* branches left behind (an
    internal node whose every child was pruned can never complete a
    pipeline, so keeping it would hand Algorithm 2 a truncated candidate).

    Returns the number of pipeline candidates removed, mirroring the
    paper's "the size of the pre-merge pipeline candidate set can be
    reduced" framing. Pass the pipeline ``spec`` for DAG-shaped pipelines
    (see :func:`compatible_with_predecessors`).
    """
    depth = _tree_depth(root)
    before = _full_leaf_count(root, depth)
    binding: dict = {}

    def visit(node: TreeNode) -> None:
        node.children = [
            child
            for child in node.children
            if compatible_with_predecessors(binding, node, child, lut, spec)
        ]
        for child in node.children:
            binding[child.stage] = child.component
            visit(child)

    visit(root)
    _remove_dead_ends(root, depth)
    after = _full_leaf_count(root, depth)
    return before - after


def _tree_depth(root: TreeNode) -> int:
    depth = 0
    node = root
    while node.children:
        depth += 1
        node = node.children[0]
    return depth


def _full_leaf_count(node: TreeNode, remaining: int) -> int:
    """Count root-to-leaf paths of exactly the full pipeline length."""
    if remaining == 0:
        return 1 if node.is_leaf else 0
    return sum(_full_leaf_count(child, remaining - 1) for child in node.children)


def _remove_dead_ends(node: TreeNode, remaining: int) -> bool:
    """Drop subtrees that cannot reach full depth; returns viability."""
    if remaining == 0:
        return True
    node.children = [
        child for child in node.children if _remove_dead_ends(child, remaining - 1)
    ]
    return bool(node.children)
