"""Algorithm 2: depth-first traversal and execution of the search tree.

The traversal prunes incompatible children as it descends (lines 5-7 of
the paper's pseudo-code), pushes nodes onto the walking path, and executes
a full candidate whenever it reaches a leaf (line 15). After execution,
every node on the walking path is marked executed with its output
reference recorded (lines 16-19); because the executor consults the
checkpoint store, components whose (version, input) pair already ran are
skipped — "MLCask can leverage node.executed property to skip certain
components."

Depth-first order matters: "it guarantees that once a node's corresponding
component is being executed, its parent node's corresponding component
must have been executed as well" (section VI-B).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..context import ExecutionContext
from ..executor import Executor, RunReport
from ..pipeline import PipelineInstance
from .compatibility import CompatibilityLUT
from .search_space import MergeScope
from .tree import TreeNode, candidate_components


@dataclass
class CandidateEvaluation:
    """One executed pre-merge pipeline candidate."""

    index: int
    path_key: str
    components: dict = field(default_factory=dict)
    report: RunReport | None = None
    score: float | None = None
    elapsed_seconds: float = 0.0  # merge clock when this candidate finished

    @property
    def failed(self) -> bool:
        return self.report is None or self.report.failed


def path_key_of(leaf: TreeNode) -> str:
    return "/".join(node.identifier for node in leaf.path_from_root())


def run_candidate(
    leaf: TreeNode,
    scope: MergeScope,
    executor: Executor,
    context: ExecutionContext,
) -> RunReport:
    """Run a leaf's walking path as a pipeline instance — the execution
    half of ``executeNodeList``, free of tree mutation so parallel merge
    workers can call it concurrently (tree state is committed separately,
    in draw order, by :func:`apply_candidate_result`)."""
    components = candidate_components(leaf)
    instance = PipelineInstance(spec=scope.spec, components=components)
    return executor.run(instance, context)


def apply_candidate_result(leaf: TreeNode, report: RunReport) -> None:
    """Push one run's execution state back onto the tree nodes (lines
    16-19 of Algorithm 2). Must be called by one thread at a time — the
    sequential search's loop body, or the parallel driver's committer."""
    if report.failed:
        return
    for node in leaf.path_from_root():
        node.executed = True
        stage_report = report.stage(node.stage)
        if stage_report.output_ref:
            node.output_ref = stage_report.output_ref
    leaf.score = report.score


def execute_candidate(
    leaf: TreeNode,
    scope: MergeScope,
    executor: Executor,
    context: ExecutionContext,
) -> RunReport:
    """``executeNodeList``: run the walking path as a pipeline instance and
    push execution state back onto the tree nodes."""
    report = run_candidate(leaf, scope, executor, context)
    apply_candidate_result(leaf, report)
    return report


def execute_tree(
    root: TreeNode,
    scope: MergeScope,
    executor: Executor,
    context: ExecutionContext,
    lut: CompatibilityLUT | None = None,
) -> list[CandidateEvaluation]:
    """Run every candidate in depth-first order (Algorithm 2).

    ``lut`` enables in-traversal PC pruning; pass ``None`` when the tree
    was pruned beforehand (or when reproducing the no-pruning ablation).
    """
    evaluations: list[CandidateEvaluation] = []
    clock_start = time.perf_counter()

    n_stages = len(scope.stage_order)
    binding: dict = {}  # stage -> component along the walking path

    def visit(node: TreeNode) -> None:
        if node.children:
            from .compatibility import compatible_with_predecessors

            kept: list[TreeNode] = []
            for child in node.children:
                if lut is not None and not compatible_with_predecessors(
                    binding, node, child, lut, scope.spec
                ):
                    continue  # line 7: node.children.remove(child)
                kept.append(child)
            node.children = kept
            for child in node.children:
                binding[child.stage] = child.component
                visit(child)
        elif not node.is_root:
            if len(node.path_from_root()) != n_stages:
                return  # dead-end left by in-traversal pruning: no candidate
            report = execute_candidate(node, scope, executor, context)
            evaluations.append(
                CandidateEvaluation(
                    index=len(evaluations),
                    path_key=path_key_of(node),
                    components=candidate_components(node),
                    report=report,
                    score=report.score if not report.failed else None,
                    elapsed_seconds=time.perf_counter() - clock_start,
                )
            )

    visit(root)
    return evaluations
