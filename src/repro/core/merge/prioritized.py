"""Prioritized pipeline search (paper section VII-E).

"Every time a pipeline candidate is run, the corresponding leaf node on
the pipeline search tree is associated with its score. We associate the
other nodes ... with scores as well, following the rule that the score of
the parent node is computed using the average of its children (except for
the children that have not gotten a score yet). The initial scores are
assigned using scores of the trained pipelines on MERGE_HEAD and HEAD.

... To perform a prioritized pipeline search, we start from the root node
and sequentially pick the child nodes that have the highest scores until
we reach a leaf node that has not been run yet."

The module provides both the *live* search (executing real pipelines, with
an optional evaluation budget — the paper's limited-time-budget setting)
and a *simulator* that replays searches over known candidate scores and
component costs, which is how the 100-trial experiments of Fig. 10 and
Table I are produced without re-training 100x.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..context import ExecutionContext
from ..executor import Executor
from .search_space import MergeScope
from .traversal import CandidateEvaluation, execute_candidate, path_key_of
from .tree import TreeNode, build_search_tree, leaves


# ----------------------------------------------------------- score updates
def refresh_scores(root: TreeNode) -> None:
    """Bottom-up recompute: parent = mean of its *scored* children."""

    def visit(node: TreeNode) -> None:
        if node.is_leaf:
            return
        for child in node.children:
            visit(child)
        scored = [c.score for c in node.children if c.score is not None]
        if scored:
            node.score = float(np.mean(scored))

    visit(root)


def propagate_leaf_score(leaf: TreeNode) -> None:
    """Cheaper incremental update along one leaf's ancestry."""
    node = leaf.parent
    while node is not None and not node.is_root:
        scored = [c.score for c in node.children if c.score is not None]
        node.score = float(np.mean(scored)) if scored else None
        node = node.parent


# ------------------------------------------------------------- leaf picking
class _LeafCounter:
    """Per-node count of unrun leaves beneath it, kept in sync with a run set.

    Replaces the recursive subtree rescan the picker used to do on every
    descent step (which made a full search O(leaves²)): a node is "open"
    iff its count is positive, and marking a leaf run decrements exactly
    the counts along that leaf's ancestry — so a pick costs
    O(depth × branching). Built lazily for whatever run set the caller
    passes; :class:`RunSet` keeps it current in O(depth) per ``add``.

    The counter assumes the tree's *shape* is fixed (pruning happens
    before searching, as every caller does); scores may change freely.
    """

    def __init__(self, root: TreeNode, run) -> None:
        self.counts: dict[int, int] = {}
        self.ancestry: dict[int, tuple[int, ...]] = {}
        self.seen: set[int] = set()
        #: True when a RunSet owns this counter: only that set's ``add``
        #: may advance it, so a picker called with some *other* run set
        #: must build its own instead of corrupting the owner's counts.
        self.owned = False
        self._build(root)
        for leaf_id in run:
            self.mark_run(leaf_id)

    def _build(self, root: TreeNode) -> None:
        path: list[int] = []

        def visit(node: TreeNode) -> int:
            path.append(id(node))
            if node.is_leaf:
                count = 1
                self.ancestry[id(node)] = tuple(path)
            else:
                count = sum(visit(child) for child in node.children)
            self.counts[id(node)] = count
            path.pop()
            return count

        visit(root)

    def mark_run(self, leaf_id: int) -> None:
        if leaf_id in self.seen:
            return
        self.seen.add(leaf_id)
        for node_id in self.ancestry.get(leaf_id, ()):
            self.counts[node_id] -= 1

    def has_unrun(self, node: TreeNode) -> bool:
        return self.counts[id(node)] > 0


class RunSet(set):
    """A run set bound to its tree: ``add`` updates the unrun-leaf counts.

    :func:`run_ordered_search` and the simulator use this so every pick is
    O(depth × branching) with no per-pick synchronization; plain sets keep
    working for external callers (the counter syncs by set difference).
    """

    def __init__(self, root: TreeNode) -> None:
        super().__init__()
        self.root = root
        self.counter = _LeafCounter(root, ())
        self.counter.owned = True
        root._leaf_counter = self.counter

    def add(self, leaf_id: int) -> None:
        if leaf_id not in self:
            super().add(leaf_id)
            self.counter.mark_run(leaf_id)

    def update(self, *others) -> None:
        for other in others:
            for leaf_id in other:
                self.add(leaf_id)

    def __ior__(self, other):
        self.update(other)
        return self

    def _no_removal(self, *args, **kwargs):
        # A run set only grows: counters are decrement-only, so removal
        # would silently desynchronize them — fail loudly instead.
        raise TypeError("RunSet does not support removing run leaves")

    remove = discard = pop = clear = _no_removal
    difference_update = intersection_update = symmetric_difference_update = (
        _no_removal
    )
    __isub__ = __iand__ = __ixor__ = _no_removal


def _counter_for(root: TreeNode, run) -> _LeafCounter:
    """The unrun-leaf counter for ``(root, run)``, reusing the cached one
    when ``run`` only grew since it was last synced (the picker's loop
    contract); anything else — a shrunk or replaced run set — rebuilds."""
    if isinstance(run, RunSet) and run.root is root:
        return run.counter
    counter = getattr(root, "_leaf_counter", None)
    if counter is None or counter.owned or not counter.seen <= run:
        counter = _LeafCounter(root, run)
        root._leaf_counter = counter
    elif len(run) > len(counter.seen):
        for leaf_id in run - counter.seen:
            counter.mark_run(leaf_id)
    return counter


def pick_prioritized_leaf(
    root: TreeNode, run: set[int], rng: np.random.Generator
) -> TreeNode | None:
    """Descend by highest score until an unrun leaf is reached.

    A child that has no score yet inherits its parent's current estimate
    (the mean of the scored siblings): never-explored subtrees compete on
    equal terms with the parent's average instead of being starved until
    everything scored is exhausted. Ties — which this rule deliberately
    creates between a subtree's best-known child and its unexplored
    siblings — break uniformly at random, which is what spreads the
    prioritized search's per-rank scores across trials (the variance the
    paper reports in Fig. 10).
    """
    counter = _counter_for(root, run)
    node = root
    while not node.is_leaf:
        open_children = [c for c in node.children if counter.has_unrun(c)]
        if not open_children:
            return None
        prior = node.score
        effective = [
            c.score if c.score is not None else prior for c in open_children
        ]
        if all(e is None for e in effective):
            node = open_children[int(rng.integers(len(open_children)))]
            continue
        known = [e for e in effective if e is not None]
        best = max(known)
        ties = [
            c
            for c, e in zip(open_children, effective)
            if e is not None and e == best
        ]
        if not ties:  # all open children unscored with no prior
            ties = open_children
        node = ties[int(rng.integers(len(ties)))]
    return node if id(node) not in run else None


def pick_random_leaf(
    root: TreeNode, run: set[int], rng: np.random.Generator
) -> TreeNode | None:
    candidates = [leaf for leaf in leaves(root) if id(leaf) not in run]
    if not candidates:
        return None
    return candidates[int(rng.integers(len(candidates)))]


# ------------------------------------------------------------- live search
def run_ordered_search(
    root: TreeNode,
    scope: MergeScope,
    executor: Executor,
    context: ExecutionContext,
    method: str = "prioritized",
    budget: int | None = None,
    time_budget_seconds: float | None = None,
    seed: int = 0,
) -> list[CandidateEvaluation]:
    """Execute candidates in prioritized or random order.

    ``budget`` caps the number of candidate evaluations and
    ``time_budget_seconds`` stops starting new evaluations once the wall
    clock is exhausted — the paper's fixed-time-budget trade-off ("the
    prioritized pipeline search only searches the most promising pipelines
    according to the history"). Already-trained candidates (history-scored
    leaves) count as searched without re-execution, exactly like the
    checkpointed nodes of Fig. 4.
    """
    if method not in ("prioritized", "random"):
        raise ValueError(f"unknown search method {method!r}")
    if time_budget_seconds is not None and time_budget_seconds < 0:
        raise ValueError("time_budget_seconds must be non-negative")
    rng = np.random.default_rng(seed)
    refresh_scores(root)
    run = RunSet(root)
    evaluations: list[CandidateEvaluation] = []
    picker = pick_prioritized_leaf if method == "prioritized" else pick_random_leaf
    clock_start = time.perf_counter()

    while budget is None or len(evaluations) < budget:
        if (
            time_budget_seconds is not None
            and evaluations
            and time.perf_counter() - clock_start >= time_budget_seconds
        ):
            break
        leaf = picker(root, run, rng)
        if leaf is None:
            break
        run.add(id(leaf))
        if leaf.score is not None and leaf.executed:
            # History-trained candidate: score known, nothing to execute.
            evaluations.append(
                CandidateEvaluation(
                    index=len(evaluations),
                    path_key=path_key_of(leaf),
                    components={n.stage: n.component for n in leaf.path_from_root()},
                    report=None,
                    score=leaf.score,
                    elapsed_seconds=time.perf_counter() - clock_start,
                )
            )
            continue
        report = execute_candidate(leaf, scope, executor, context)
        if report.failed:
            leaf.score = None
        evaluations.append(
            CandidateEvaluation(
                index=len(evaluations),
                path_key=path_key_of(leaf),
                components={n.stage: n.component for n in leaf.path_from_root()},
                report=report,
                score=None if report.failed else report.score,
                elapsed_seconds=time.perf_counter() - clock_start,
            )
        )
        if method == "prioritized":
            propagate_leaf_score(leaf)
    return evaluations


# --------------------------------------------------------------- simulator
@dataclass
class SimulatedStep:
    """One search step of one simulated trial."""

    rank: int
    path_key: str
    end_time: float
    score: float


@dataclass
class TrialResult:
    steps: list[SimulatedStep] = field(default_factory=list)

    def position_of(self, path_key: str) -> int | None:
        for step in self.steps:
            if step.path_key == path_key:
                return step.rank
        return None


class SearchSimulator:
    """Replay prioritized/random searches over known scores and costs.

    The simulator mirrors the PR-reuse cost model: evaluating a candidate
    costs the sum of its *not-yet-executed* component costs within the
    trial (components shared with earlier candidates are free), exactly
    like the real merge's checkpoint reuse. History-trained leaves start
    pre-executed and pre-scored (the green nodes of Fig. 4).
    """

    def __init__(
        self,
        scope: MergeScope,
        leaf_scores: dict[str, float],
        component_costs: dict[str, float],
        mark_history: bool = True,
        prune=None,
    ):
        self.scope = scope
        self.leaf_scores = dict(leaf_scores)
        self.component_costs = dict(component_costs)
        self.mark_history = mark_history
        self.prune = prune  # callable(root) applied after tree build

    def _fresh_tree(self) -> TreeNode:
        from .pruning import mark_checkpointed_nodes

        root = build_search_tree(self.scope)
        if self.prune is not None:
            self.prune(root)
        if self.mark_history:
            mark_checkpointed_nodes(root, self.scope)
        return root

    def run_trial(self, method: str, seed: int) -> TrialResult:
        rng = np.random.default_rng(seed)
        root = self._fresh_tree()
        refresh_scores(root)
        run = RunSet(root)
        executed_components: set[str] = set()
        for node in _all_nodes(root):
            if not node.is_root and node.executed:
                executed_components.add(_node_key(node))
        picker = pick_prioritized_leaf if method == "prioritized" else pick_random_leaf

        result = TrialResult()
        clock = 0.0
        rank = 0
        while True:
            leaf = picker(root, run, rng)
            if leaf is None:
                break
            run.add(id(leaf))
            cost = 0.0
            for node in leaf.path_from_root():
                key = _node_key(node)
                if key not in executed_components:
                    cost += self.component_costs.get(node.identifier, 0.0)
                    executed_components.add(key)
                    node.executed = True
            clock += cost
            score = self.leaf_scores.get(path_key_of(leaf), 0.0)
            leaf.score = score
            if method == "prioritized":
                propagate_leaf_score(leaf)
            result.steps.append(
                SimulatedStep(
                    rank=rank,
                    path_key=path_key_of(leaf),
                    end_time=clock,
                    score=score,
                )
            )
            rank += 1
        return result

    def run_trials(self, method: str, n_trials: int, seed: int = 0) -> list[TrialResult]:
        return [self.run_trial(method, seed * 100_003 + t) for t in range(n_trials)]


def _all_nodes(root: TreeNode):
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children)


def _node_key(node: TreeNode) -> str:
    """Identity of a tree node within a trial: its path from the root —
    the same component under a different upstream prefix is a different
    execution (its input differs)."""
    return "/".join(n.identifier for n in node.path_from_root())
