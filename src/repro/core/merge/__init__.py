"""Metric-driven merge machinery: search spaces, trees, pruning, search."""

from .compatibility import (
    CompatibilityLUT,
    build_compatibility_lut,
    compatible_with_predecessors,
    prune_incompatible,
    schema_compatible,
)
from .metric_merge import (
    MERGE_MODES,
    SEARCH_METHODS,
    metric_driven_merge,
    winners_by_metric,
)
from .prioritized import (
    SearchSimulator,
    SimulatedStep,
    TrialResult,
    pick_prioritized_leaf,
    pick_random_leaf,
    propagate_leaf_score,
    refresh_scores,
    run_ordered_search,
)
from .pruning import executed_leaf_scores, mark_checkpointed_nodes
from .search_space import MergeScope, branch_search_space, build_merge_scope
from .traversal import CandidateEvaluation, execute_candidate, execute_tree, path_key_of
from .tree import (
    TreeNode,
    build_search_tree,
    candidate_components,
    count_candidates,
    count_feasible_components,
    iter_nodes,
    leaves,
    nodes_at_level,
)

__all__ = [
    "CompatibilityLUT", "build_compatibility_lut", "compatible_with_predecessors",
    "prune_incompatible",
    "schema_compatible",
    "MERGE_MODES", "SEARCH_METHODS", "metric_driven_merge", "winners_by_metric",
    "SearchSimulator", "SimulatedStep", "TrialResult",
    "pick_prioritized_leaf", "pick_random_leaf", "propagate_leaf_score",
    "refresh_scores", "run_ordered_search",
    "executed_leaf_scores", "mark_checkpointed_nodes",
    "MergeScope", "branch_search_space", "build_merge_scope",
    "CandidateEvaluation", "execute_candidate", "execute_tree", "path_key_of",
    "TreeNode", "build_search_tree", "candidate_components", "count_candidates",
    "count_feasible_components", "iter_nodes", "leaves", "nodes_at_level",
]
