"""Component search spaces for the metric-driven merge (paper section V).

For a component ``f_i`` of pipeline ``p`` on branch ``b``::

    S_b(f_i) = { v(f_i | p) : p ∈ P_b }

where ``P_b`` is the set of pipeline versions on branch ``b`` *from the
common ancestor towards the branch head* — versions before the ancestor
"could be outdated or irrelevant to the pipeline improvement" and are
excluded. Merging unions the two branches::

    S(f_i) = S_MERGE_HEAD(f_i) ∪ S_HEAD(f_i)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..commit import PipelineCommit
from ..component import Component
from ..history import CommitGraph
from ..pipeline import PipelineSpec


@dataclass
class MergeScope:
    """Everything the merge operates over: ancestor, in-scope commits,
    and the per-stage component search spaces."""

    spec: PipelineSpec
    ancestor: PipelineCommit
    head: PipelineCommit
    merge_head: PipelineCommit
    commits: list[PipelineCommit] = field(default_factory=list)
    spaces: dict = field(default_factory=dict)  # stage -> list[Component]

    @property
    def stage_order(self) -> list[str]:
        return self.spec.topological_order()

    def space(self, stage: str) -> list[Component]:
        return self.spaces[stage]

    @property
    def upper_bound(self) -> int:
        """``∏ N(S(f_i))`` — the paper's candidate-count upper bound."""
        product = 1
        for stage in self.stage_order:
            product *= len(self.spaces[stage])
        return product

    def describe(self) -> str:
        lines = [f"merge scope: ancestor={self.ancestor.label}"]
        for stage in self.stage_order:
            versions = ", ".join(c.display for c in self.spaces[stage])
            lines.append(f"  {stage}: {versions}")
        lines.append(f"  upper bound: {self.upper_bound} candidates")
        return "\n".join(lines)


def branch_search_space(
    graph: CommitGraph,
    registry,
    head_id: str,
    ancestor_id: str,
    stage: str,
) -> list[Component]:
    """``S_b(f_i)``: versions of ``stage`` appearing in commits from the
    ancestor (inclusive) up to ``head`` (inclusive), in first-seen order."""
    seen: dict[str, Component] = {}
    for commit in graph.commits_between(head_id, ancestor_id):
        identifier = commit.component_versions.get(stage)
        if identifier is not None and identifier not in seen:
            seen[identifier] = registry.get(identifier)
    return list(seen.values())


def build_merge_scope(
    graph: CommitGraph,
    registry,
    spec: PipelineSpec,
    head: PipelineCommit,
    merge_head: PipelineCommit,
) -> MergeScope:
    """Compute the common ancestor and union the branch search spaces."""
    ancestor = graph.common_ancestor(head.commit_id, merge_head.commit_id)
    spaces: dict[str, list[Component]] = {}
    for stage in spec.topological_order():
        merged: dict[str, Component] = {}
        for component in branch_search_space(
            graph, registry, head.commit_id, ancestor.commit_id, stage
        ):
            merged.setdefault(component.identifier, component)
        for component in branch_search_space(
            graph, registry, merge_head.commit_id, ancestor.commit_id, stage
        ):
            merged.setdefault(component.identifier, component)
        spaces[stage] = list(merged.values())

    in_scope: dict[str, PipelineCommit] = {}
    for tip in (head, merge_head):
        for commit in graph.commits_between(tip.commit_id, ancestor.commit_id):
            in_scope.setdefault(commit.commit_id, commit)
    commits = sorted(in_scope.values(), key=lambda c: c.sequence)

    return MergeScope(
        spec=spec,
        ancestor=ancestor,
        head=head,
        merge_head=merge_head,
        commits=commits,
        spaces=spaces,
    )
