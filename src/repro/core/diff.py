"""Commit diffing and history rendering: retrospective-research tooling.

The paper's third challenge is "the demand for retrospective research on
models and data from different time periods", which "complicates the
management of massive pipeline versions". These helpers answer the
questions a retrospective study actually asks: what changed between two
pipeline versions, which change moved the metric, and which version was
best over a given period.
"""

from __future__ import annotations

from dataclasses import dataclass

from .commit import PipelineCommit
from .semver import SemVer


@dataclass(frozen=True)
class ComponentDelta:
    """One stage's change between two commits."""

    stage: str
    kind: str  # "unchanged" | "updated" | "added" | "removed"
    old: str | None = None  # component identifier in the old commit
    new: str | None = None
    schema_changed: bool = False

    def render(self) -> str:
        if self.kind == "unchanged":
            return f"  {self.stage}: {self.new}"
        if self.kind == "added":
            return f"+ {self.stage}: {self.new}"
        if self.kind == "removed":
            return f"- {self.stage}: {self.old}"
        marker = " [schema change]" if self.schema_changed else ""
        return f"~ {self.stage}: {self.old} -> {self.new}{marker}"


def _identifier_version(identifier: str) -> SemVer | None:
    """Parse the version out of a ``name@branch@schema.increment`` id."""
    parts = identifier.rsplit("@", 2)
    if len(parts) != 3:
        return None
    try:
        return SemVer.parse(f"{parts[1]}@{parts[2]}")
    except Exception:
        return None


def _schema_changed(old_identifier: str, new_identifier: str) -> bool:
    """Did the component's output-schema (major) version move?"""
    old_version = _identifier_version(old_identifier)
    new_version = _identifier_version(new_identifier)
    if old_version is None or new_version is None:
        return False
    return old_version.schema != new_version.schema


def diff_commits(old: PipelineCommit, new: PipelineCommit) -> list[ComponentDelta]:
    """Per-stage deltas from ``old`` to ``new``."""
    deltas: list[ComponentDelta] = []
    stages = list(old.component_versions)
    for stage in new.component_versions:
        if stage not in stages:
            stages.append(stage)
    for stage in stages:
        old_id = old.component_versions.get(stage)
        new_id = new.component_versions.get(stage)
        if old_id is None:
            deltas.append(ComponentDelta(stage=stage, kind="added", new=new_id))
        elif new_id is None:
            deltas.append(ComponentDelta(stage=stage, kind="removed", old=old_id))
        elif old_id == new_id:
            deltas.append(
                ComponentDelta(stage=stage, kind="unchanged", old=old_id, new=new_id)
            )
        else:
            deltas.append(
                ComponentDelta(
                    stage=stage,
                    kind="updated",
                    old=old_id,
                    new=new_id,
                    schema_changed=_schema_changed(old_id, new_id),
                )
            )
    return deltas


def render_diff(old: PipelineCommit, new: PipelineCommit) -> str:
    """Human-readable diff, including the metric movement."""
    lines = [f"diff {old.label} -> {new.label}"]
    for delta in diff_commits(old, new):
        lines.append(delta.render())
    if old.score is not None and new.score is not None:
        direction = "+" if new.score >= old.score else ""
        lines.append(
            f"  score: {old.score:.4f} -> {new.score:.4f} "
            f"({direction}{new.score - old.score:.4f})"
        )
    return "\n".join(lines)


def render_log(commits: list[PipelineCommit]) -> str:
    """git-log-like listing, newest first."""
    lines = []
    for commit in sorted(commits, key=lambda c: -c.sequence):
        score = f" score={commit.score:.4f}" if commit.score is not None else ""
        merge = " (merge)" if len(commit.parents) > 1 else ""
        lines.append(f"{commit.label:20s} [{commit.commit_id[:12]}]{score}{merge}")
        if commit.message:
            lines.append(f"    {commit.message}")
    return "\n".join(lines)


def attribute_improvement(
    commits: list[PipelineCommit],
) -> dict[str, float]:
    """Sum each stage's score contribution along a linear history.

    For every consecutive commit pair that changed exactly one stage, the
    score delta is attributed to that stage — a first-order answer to
    "which component's evolution moved the metric?"."""
    contributions: dict[str, float] = {}
    ordered = sorted(commits, key=lambda c: c.sequence)
    for previous, current in zip(ordered, ordered[1:]):
        if previous.score is None or current.score is None:
            continue
        changed = [
            delta.stage
            for delta in diff_commits(previous, current)
            if delta.kind == "updated"
        ]
        if len(changed) == 1:
            stage = changed[0]
            contributions[stage] = contributions.get(stage, 0.0) + (
                current.score - previous.score
            )
    return contributions
