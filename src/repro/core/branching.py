"""Branch bookkeeping and the fast-forward merge test (paper section V).

"MLCask is designed to support branch operations on every pipeline
version" — a branch is a named movable pointer to a commit, per pipeline.
A merge is *fast-forward* when "the HEAD does not contain any commits after
the common ancestor of HEAD and MERGE_HEAD", i.e. the base branch's tip is
itself the merge base.
"""

from __future__ import annotations

from ..errors import BranchNotFoundError, RepositoryError
from .history import CommitGraph


class BranchManager:
    """Per-pipeline branch pointers plus per-branch version counters."""

    def __init__(self) -> None:
        # heads[pipeline][branch] -> commit_id
        self._heads: dict[str, dict[str, str]] = {}
        # committed_on[pipeline][branch] -> number of commits created on
        # that branch (drives branch-local version numbering: the first
        # commit on Frank-dev is Frank-dev.0.0 even though the branch
        # point was master.0.0 — see Fig. 3).
        self._committed_on: dict[str, dict[str, int]] = {}
        # Mutation counter: a staleness token for response caches.
        self.revision = 0

    # ---------------------------------------------------------------- heads
    def head(self, pipeline: str, branch: str) -> str:
        try:
            return self._heads[pipeline][branch]
        except KeyError:
            raise BranchNotFoundError(f"{pipeline}:{branch}") from None

    def set_head(self, pipeline: str, branch: str, commit_id: str) -> None:
        self._heads.setdefault(pipeline, {})[branch] = commit_id
        self.revision += 1

    def has_branch(self, pipeline: str, branch: str) -> bool:
        return branch in self._heads.get(pipeline, {})

    def branches(self, pipeline: str) -> list[str]:
        return sorted(self._heads.get(pipeline, {}))

    def pipelines(self) -> list[str]:
        return sorted(self._heads)

    # -------------------------------------------------------------- creation
    def create_branch(self, pipeline: str, new_branch: str, from_branch: str) -> str:
        """Branch off ``from_branch``'s current head."""
        if self.has_branch(pipeline, new_branch):
            raise RepositoryError(
                f"branch {new_branch!r} already exists for {pipeline!r}"
            )
        base = self.head(pipeline, from_branch)
        self.set_head(pipeline, new_branch, base)
        return base

    # ----------------------------------------------------------- versioning
    def next_commit_count(self, pipeline: str, branch: str) -> int:
        """Zero-based index of the next commit created on ``branch``."""
        return self._committed_on.get(pipeline, {}).get(branch, 0)

    def note_commit(self, pipeline: str, branch: str) -> None:
        counts = self._committed_on.setdefault(pipeline, {})
        counts[branch] = counts.get(branch, 0) + 1

    # ---------------------------------------------------------- merge tests
    def is_fast_forward(
        self, graph: CommitGraph, pipeline: str, head_branch: str, merge_branch: str
    ) -> bool:
        """True iff the base branch has no commits after the merge base."""
        head_id = self.head(pipeline, head_branch)
        merge_id = self.head(pipeline, merge_branch)
        ancestor = graph.common_ancestor(head_id, merge_id)
        return ancestor.commit_id == head_id
