"""The MLCask facade: repositories, commits, branches, and merges.

This is the system of paper section III: a dataset repository and a library
repository shared by all pipelines (so components dedup across pipelines),
plus a pipeline repository recording version updates. The facade wires the
ForkBase-like storage engine, the checkpoint store, the executor, and the
commit graph into the Git-like workflow of sections IV-V:

    repo = MLCask(metric="accuracy")
    repo.create_pipeline(spec, components)           # master.0.0
    repo.commit("name", {"model": cnn_v1})           # master.0.1
    repo.branch("name", "dev")                       # fork
    repo.commit("name", {...}, branch="dev")         # dev.0.0
    result = repo.merge("name", "master", "dev")     # metric-driven merge
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import RepositoryError
from ..provenance.ledger import LineageLedger
from ..storage.kv import VersionedKV
from ..storage.object_store import ObjectStore
from .branching import BranchManager
from .checkpoint import CheckpointStore, ChunkedCheckpointStore
from .commit import PipelineCommit, make_commit_id
from .component import Component, DatasetComponent, LibraryComponent
from .context import ExecutionContext
from .executor import Executor, RunReport
from .history import CommitGraph
from .pipeline import PipelineInstance, PipelineSpec
from .semver import MASTER, SemVer


class ComponentRegistry:
    """Maps component identifiers to the live objects holding their code.

    Commits reference components by identifier (``name@branch@s.i``);
    the registry resolves those references back to runnable components —
    the stand-in for the library repository's executables.
    """

    def __init__(self) -> None:
        self._by_id: dict[str, Component] = {}
        self._by_name: dict[str, list[Component]] = {}

    def register(self, component: Component) -> Component:
        existing = self._by_id.get(component.identifier)
        if existing is not None:
            if existing.fingerprint != component.fingerprint:
                raise RepositoryError(
                    f"conflicting registration for {component.identifier}"
                )
            return existing
        self._by_id[component.identifier] = component
        self._by_name.setdefault(component.name, []).append(component)
        return component

    def get(self, identifier: str) -> Component:
        if identifier not in self._by_id:
            raise RepositoryError(f"unknown component {identifier!r}")
        return self._by_id[identifier]

    def versions_of(self, name: str) -> list[Component]:
        return list(self._by_name.get(name, []))

    def __contains__(self, identifier: str) -> bool:
        return identifier in self._by_id

    def __len__(self) -> int:
        return len(self._by_id)


@dataclass
class MergeOutcome:
    """What a merge returned: the new commit plus search accounting."""

    commit: PipelineCommit
    fast_forward: bool = False
    winner_report: RunReport | None = None
    candidates_total: int = 0
    candidates_pruned_incompatible: int = 0
    candidates_evaluated: int = 0
    components_executed: int = 0
    components_reused: int = 0
    execution_seconds: float = 0.0
    storage_seconds: float = 0.0
    evaluations: list = field(default_factory=list)

    def winner_for(self, metric: str):
        """Best evaluated candidate under an alternative metric.

        Section V: with several evaluation metrics, "MLCask generates
        different optimal pipeline solutions for different metrics so that
        users could select the most suitable one". Returns
        ``(evaluation, score)`` or ``None`` if no candidate recorded the
        metric (e.g. after a fast-forward, where nothing was evaluated).
        """
        from .merge.metric_merge import winners_by_metric

        return winners_by_metric(self.evaluations, [metric]).get(metric)

    def summary(self) -> str:
        """One-paragraph account of what the merge did."""
        if self.fast_forward:
            return f"fast-forward to {self.commit.label}"
        return (
            f"metric-driven merge -> {self.commit.label} "
            f"(score {self.commit.score}): {self.candidates_total} raw candidates, "
            f"{self.candidates_pruned_incompatible} pruned incompatible, "
            f"{self.candidates_evaluated} evaluated, "
            f"{self.components_executed} components executed / "
            f"{self.components_reused} reused"
        )


class MLCask:
    """End-to-end pipeline life-cycle manager with version control."""

    def __init__(
        self,
        metric: str = "accuracy",
        seed: int = 0,
        checkpoints: CheckpointStore | None = None,
        author: str = "mlcask",
        objects: ObjectStore | None = None,
    ):
        self.metric = metric
        self.seed = seed
        self.author = author
        # ``objects`` is injectable so hosts can back a repository with a
        # shared chunk store (the multi-tenant hub's cross-tenant dedup);
        # by default each repository owns an isolated in-memory store.
        self.objects = objects if objects is not None else ObjectStore()
        self.checkpoints = checkpoints or ChunkedCheckpointStore(self.objects)
        # Every run through this repository leaves lineage behind: the
        # ledger is threaded into the executor (and adopted by any
        # ParallelExecutor derived from it), queried via repro.provenance.
        self.lineage = LineageLedger()
        self.executor = Executor(
            self.checkpoints, metric=metric, reuse=True, lineage=self.lineage
        )
        self.graph = CommitGraph()
        self.branches = BranchManager()
        self.registry = ComponentRegistry()
        self.library_repo = VersionedKV()
        self.dataset_repo = VersionedKV()
        self.pipeline_repo = VersionedKV()
        self._specs: dict[str, PipelineSpec] = {}
        self._sequence = 0
        self._remotes: dict[str, object] = {}

    # ------------------------------------------------------------ plumbing
    def spec(self, pipeline: str) -> PipelineSpec:
        if pipeline not in self._specs:
            raise RepositoryError(f"unknown pipeline {pipeline!r}")
        return self._specs[pipeline]

    def _next_sequence(self) -> int:
        self._sequence += 1
        return self._sequence

    def _register_components(self, components: dict[str, Component]) -> None:
        for component in components.values():
            self.registry.register(component)
            if isinstance(component, LibraryComponent):
                self.library_repo.put(
                    component.name,
                    component.metafile().to_bytes(),
                    branch=component.version.branch,
                )
            elif isinstance(component, DatasetComponent):
                self.dataset_repo.put(
                    component.name,
                    component.metafile().to_bytes(),
                    branch=component.version.branch,
                )

    def instance_for(self, commit: PipelineCommit) -> PipelineInstance:
        """Rebuild the runnable instance a commit describes."""
        spec = self.spec(commit.pipeline)
        components = {
            stage: self.registry.get(identifier)
            for stage, identifier in commit.component_versions.items()
        }
        return PipelineInstance(spec=spec, components=components)

    def _next_version(self, pipeline: str, branch: str) -> SemVer:
        count = self.branches.next_commit_count(pipeline, branch)
        return SemVer(branch, 0, count)

    def _store_commit(
        self,
        pipeline: str,
        branch: str,
        instance: PipelineInstance,
        parents: tuple[str, ...],
        report: RunReport | None,
        message: str,
        score_override: float | None = None,
    ) -> PipelineCommit:
        version = self._next_version(pipeline, branch)
        fingerprints = {
            stage: instance.component(stage).fingerprint
            for stage in instance.spec.stages
        }
        score = report.score if report else None
        if score is None:
            score = score_override
        commit = PipelineCommit(
            commit_id=make_commit_id(pipeline, version, parents, fingerprints),
            pipeline=pipeline,
            version=version,
            branch=branch,
            parents=parents,
            component_versions={
                stage: instance.component(stage).identifier
                for stage in instance.spec.stages
            },
            component_fingerprints=fingerprints,
            stage_outputs=dict(report.stage_outputs) if report else {},
            metrics=dict(report.metrics) if report else {},
            score=score,
            message=message,
            author=self.author,
            sequence=self._next_sequence(),
        )
        self.graph.add(commit)
        self.branches.set_head(pipeline, branch, commit.commit_id)
        self.branches.note_commit(pipeline, branch)
        if report is not None and report.lineage_rows:
            # Back-fill the adopting commit onto exactly the rows this
            # run appended (losing merge candidates' rows stay unbound).
            self.lineage.annotate_commit(
                commit.commit_id, branch, report.lineage_rows
            )
        self._write_pipeline_metafile(commit, instance)
        return commit

    def _write_pipeline_metafile(
        self, commit: PipelineCommit, instance: PipelineInstance
    ) -> None:
        from .metafile import PipelineMetafile

        metafile = PipelineMetafile(
            name=commit.pipeline,
            entry_point=instance.spec.topological_order()[0],
            stage_order=tuple(instance.spec.topological_order()),
            components=dict(commit.component_versions),
            outputs=dict(commit.stage_outputs),
        )
        self.pipeline_repo.put(
            commit.pipeline, metafile.to_bytes(), branch=commit.branch
        )

    # ----------------------------------------------------------- public API
    def create_pipeline(
        self,
        spec: PipelineSpec,
        components: dict[str, Component],
        message: str = "initial pipeline",
        run: bool = True,
    ) -> tuple[PipelineCommit, RunReport | None]:
        """Register and commit the initial version (``master.0.0``)."""
        if spec.name in self._specs:
            raise RepositoryError(f"pipeline {spec.name!r} already exists")
        instance = PipelineInstance(spec=spec, components=dict(components))
        instance.validate_compatibility()
        self._specs[spec.name] = spec
        self._register_components(instance.components)
        report = self._run(instance) if run else None
        commit = self._store_commit(
            spec.name, MASTER, instance, (), report, message
        )
        return commit, report

    def commit(
        self,
        pipeline: str,
        updates: dict[str, Component],
        branch: str = MASTER,
        message: str = "",
        validate: bool = True,
        run: bool = True,
    ) -> tuple[PipelineCommit, RunReport | None]:
        """Commit component updates on ``branch`` and (by default) retrain.

        With ``validate=True`` MLCask refuses to run a pipeline whose
        adjacent schemas mismatch — this is the behaviour that keeps its
        final-iteration time flat in Fig. 5 while the baselines burn time
        discovering the failure at runtime.
        """
        head = self.head_commit(pipeline, branch)
        instance = self.instance_for(head).with_updates(updates)
        if validate:
            instance.validate_compatibility()
        self._register_components(instance.components)
        report = self._run(instance) if run else None
        parents = (head.commit_id,)
        return (
            self._store_commit(pipeline, branch, instance, parents, report, message),
            report,
        )

    def _run(self, instance: PipelineInstance) -> RunReport:
        context = ExecutionContext(seed=self.seed, metric=self.metric)
        return self.executor.run(instance, context)

    def run_head(
        self, pipeline: str, branch: str = MASTER, workers: int = 1
    ) -> RunReport:
        """Re-run the branch head's pipeline against the checkpoint store.

        With warm checkpoints every stage is a reuse (the paper's "can be
        reused" guarantee); after a GC or on a fresh clone it recomputes
        what is missing. ``workers > 1`` executes independent DAG stages
        concurrently via the parallel engine.
        """
        instance = self.instance_for(self.head_commit(pipeline, branch))
        context = ExecutionContext(seed=self.seed, metric=self.metric)
        if workers > 1:
            from ..engine import ParallelExecutor

            engine = ParallelExecutor.from_executor(self.executor, workers=workers)
            return engine.run(instance, context)
        return self.executor.run(instance, context)

    def head_commit(self, pipeline: str, branch: str = MASTER) -> PipelineCommit:
        return self.graph.get(self.branches.head(pipeline, branch))

    def branch(
        self, pipeline: str, new_branch: str, from_branch: str = MASTER
    ) -> PipelineCommit:
        """Create a branch at ``from_branch``'s head (section V, Branch)."""
        base = self.branches.create_branch(pipeline, new_branch, from_branch)
        return self.graph.get(base)

    def history(self, pipeline: str, branch: str = MASTER) -> list[PipelineCommit]:
        """Commits reachable from the branch head, oldest first."""
        head = self.branches.head(pipeline, branch)
        reachable = self.graph.ancestors(head)
        return sorted(
            (self.graph.get(c) for c in reachable), key=lambda c: c.sequence
        )

    # --------------------------------------------------------------- merge
    def merge(
        self,
        pipeline: str,
        head_branch: str,
        merge_head_branch: str,
        mode: str = "pcpr",
        search: str = "exhaustive",
        budget: int | None = None,
        time_budget_seconds: float | None = None,
        message: str = "",
        seed: int | None = None,
        workers: int = 1,
    ) -> MergeOutcome:
        """Merge ``merge_head_branch`` into ``head_branch``.

        Fast-forwards when possible (section V); otherwise runs the
        metric-driven merge over the pipeline search tree. ``mode`` selects
        the ablation: ``"pcpr"`` (full MLCask), ``"pc_only"`` (no reusable
        outputs), ``"none"`` (no pruning at all — the w/o PCPR baseline).
        ``search`` picks ``"exhaustive"``, ``"prioritized"``, or
        ``"random"``; ``budget`` caps evaluated candidates and
        ``time_budget_seconds`` caps wall-clock for the ordered searches.
        ``workers > 1`` evaluates several candidates concurrently through
        the parallel engine (ordered searches only; single-flight
        checkpointing keeps each component execution at-most-once).
        """
        if self.branches.is_fast_forward(self.graph, pipeline, head_branch, merge_head_branch):
            return self._fast_forward(pipeline, head_branch, merge_head_branch, message)
        from .merge.metric_merge import metric_driven_merge

        return metric_driven_merge(
            self,
            pipeline,
            head_branch,
            merge_head_branch,
            mode=mode,
            search=search,
            budget=budget,
            time_budget_seconds=time_budget_seconds,
            message=message,
            seed=self.seed if seed is None else seed,
            workers=workers,
        )

    # --------------------------------------------------------- retrospection
    def diff(self, pipeline: str, old_ref: str, new_ref: str) -> str:
        """Human-readable component diff between two commits.

        Refs may be branch names or commit ids — the retrospective
        question "what changed between last month's production pipeline
        and today's?" is one call.
        """
        from .diff import render_diff

        return render_diff(
            self._resolve_ref(pipeline, old_ref), self._resolve_ref(pipeline, new_ref)
        )

    def log(self, pipeline: str, branch: str = MASTER) -> str:
        """git-log-like listing of the branch's history, newest first."""
        from .diff import render_log

        return render_log(self.history(pipeline, branch))

    def best_commit(
        self, pipeline: str, branch: str | None = None
    ) -> PipelineCommit:
        """Highest-scoring commit on a branch (or across all commits of
        the pipeline when ``branch`` is None)."""
        if branch is not None:
            candidates = self.history(pipeline, branch)
        else:
            candidates = [
                c for c in self.graph.all_commits() if c.pipeline == pipeline
            ]
        scored = [c for c in candidates if c.score is not None]
        if not scored:
            raise RepositoryError(f"no scored commits for {pipeline!r}")
        return max(scored, key=lambda c: c.score)

    def improvement_by_stage(self, pipeline: str, branch: str = MASTER) -> dict:
        """Attribute score movement to stages along the branch history."""
        from .diff import attribute_improvement

        return attribute_improvement(self.history(pipeline, branch))

    def lineage_of(self, ref: str) -> dict:
        """Retrospective audit: the upstream closure that fed an
        artifact, plus the commits/merges that consumed it. ``ref`` is a
        checkpoint output ref or an unambiguous prefix."""
        from ..provenance.queries import lineage_of

        return lineage_of(self, ref)

    def consumers_of(self, ref: str) -> dict:
        """Direct downstream readers of an artifact (records that took
        it as input, and the commits recording it)."""
        from ..provenance.queries import consumers_of

        return consumers_of(self, ref)

    def impact_of(self, component: str, version: str | None = None) -> dict:
        """What-if analysis: checkpoints, commits, and branch heads that
        would invalidate if ``component`` changed."""
        from ..provenance.queries import impact_of

        return impact_of(self, component, version=version)

    def trace_forensics(self, trace_id: str) -> dict:
        """Everything one traced request executed or reused, joined to
        its spans by trace id."""
        from ..provenance.queries import trace_forensics

        return trace_forensics(self, trace_id)

    def _resolve_ref(self, pipeline: str, ref: str) -> PipelineCommit:
        """Accept a branch name, full commit id, or unambiguous prefix."""
        if self.branches.has_branch(pipeline, ref):
            return self.head_commit(pipeline, ref)
        if ref in self.graph:
            return self.graph.get(ref)
        matches = [
            c
            for c in self.graph.all_commits()
            if c.pipeline == pipeline
            and (c.commit_id.startswith(ref) or c.label == ref)
        ]
        if len(matches) == 1:
            return matches[0]
        raise RepositoryError(
            f"cannot resolve ref {ref!r} for pipeline {pipeline!r} "
            f"({len(matches)} matches)"
        )

    def _fast_forward(
        self, pipeline: str, head_branch: str, merge_head_branch: str, message: str
    ) -> MergeOutcome:
        """Duplicate the MERGE_HEAD tip onto HEAD with both parents."""
        head = self.head_commit(pipeline, head_branch)
        merge_head = self.head_commit(pipeline, merge_head_branch)
        instance = self.instance_for(merge_head)
        version = self._next_version(pipeline, head_branch)
        fingerprints = dict(merge_head.component_fingerprints)
        commit = PipelineCommit(
            commit_id=make_commit_id(
                pipeline, version, (head.commit_id, merge_head.commit_id), fingerprints
            ),
            pipeline=pipeline,
            version=version,
            branch=head_branch,
            parents=(head.commit_id, merge_head.commit_id),
            component_versions=dict(merge_head.component_versions),
            component_fingerprints=fingerprints,
            stage_outputs=dict(merge_head.stage_outputs),
            metrics=dict(merge_head.metrics),
            score=merge_head.score,
            message=message or f"fast-forward merge of {merge_head_branch}",
            author=self.author,
            sequence=self._next_sequence(),
        )
        self.graph.add(commit)
        self.branches.set_head(pipeline, head_branch, commit.commit_id)
        self.branches.note_commit(pipeline, head_branch)
        self._write_pipeline_metafile(commit, instance)
        return MergeOutcome(commit=commit, fast_forward=True)

    # ---------------------------------------------------------- accounting
    def storage_stats(self):
        """Combined storage counters across all repositories."""
        stats = self.checkpoints.stats
        for kv in (self.library_repo, self.dataset_repo, self.pipeline_repo):
            stats = stats.merged_with(kv.stats)
        return stats

    def gc(self):
        """Reclaim outputs no commit references (mark-and-sweep).

        Merge candidates that lost, and checkpoints orphaned by history
        pruning, stay in the immutable store until collected. Live roots
        are the stage outputs of every commit; everything else — chunks
        and checkpoint-index entries alike — is swept. Persistence of the
        repositories' metafiles (``library_repo`` etc.) is untouched.
        """
        from ..storage.gc import collect_garbage, live_digests_of_repo

        live = live_digests_of_repo(self)
        self.checkpoints.prune(live)
        # Provenance outlives the artifacts: ledger rows for swept
        # outputs are retained, flagged ``collected`` (append-only).
        self.lineage.mark_collected(live)
        return collect_garbage(self.objects, live)

    # -------------------------------------------------------------- remotes
    def add_remote(self, name: str, transport, max_pack_bytes: int | None = None):
        """Register a peer repository under ``name`` (like ``git remote add``).

        ``transport`` is any :class:`repro.remote.Transport` — a
        :class:`LocalTransport` around an in-process server, or an
        :class:`HttpTransport` pointed at a ``repro serve`` endpoint.
        ``max_pack_bytes`` overrides the per-message chunk-payload window
        (``None`` keeps the library default). Returns the
        :class:`repro.remote.Remote` handle.
        """
        from ..remote.client import Remote

        kwargs = {} if max_pack_bytes is None else {"max_pack_bytes": max_pack_bytes}
        remote = Remote(self, transport, name=name, **kwargs)
        self._remotes[name] = remote
        return remote

    def remote(self, name: str = "origin"):
        """The :class:`repro.remote.Remote` registered under ``name``."""
        if name not in self._remotes:
            raise RepositoryError(f"unknown remote {name!r}")
        return self._remotes[name]

    def remotes(self) -> list[str]:
        return sorted(self._remotes)

    @classmethod
    def clone(
        cls,
        transport,
        registry: ComponentRegistry | None = None,
        name: str = "origin",
        max_pack_bytes: int | None = None,
    ) -> "MLCask":
        """Replicate a peer repository end to end; see
        :func:`repro.remote.clone_repository`."""
        from ..remote.client import clone_repository

        return clone_repository(
            transport, registry=registry, name=name, max_pack_bytes=max_pack_bytes
        )

    # ---------------------------------------------------------- persistence
    def save(self, path) -> None:
        """Persist the version-control state (commits, branches, specs)."""
        from .persistence import save_repository

        save_repository(self, path)

    @classmethod
    def load(cls, path, registry: ComponentRegistry | None = None) -> "MLCask":
        """Rebuild a repository saved with :meth:`save`; see
        :mod:`repro.core.persistence` for what does and does not persist."""
        from .persistence import load_repository

        return load_repository(path, registry=registry)

    def save_dir(self, path) -> None:
        """Persist state *and* content (chunks, recipes, checkpoint index)
        under a repository directory — the on-disk format the remote CLI
        verbs (``repro serve/clone/push/pull``) operate on."""
        from .persistence import save_repository_dir

        save_repository_dir(self, path)

    @classmethod
    def load_dir(
        cls, path, registry: ComponentRegistry | None = None
    ) -> "MLCask":
        """Rebuild a repository saved with :meth:`save_dir`."""
        from .persistence import load_repository_dir

        return load_repository_dir(path, registry=registry)
