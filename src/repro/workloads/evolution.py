"""Scripted component-evolution histories for the experiments.

Linear versioning (paper section VII-B): "we perform a series of pipeline
component updates and pipeline retraining operations ... In every
iteration, we update the pre-processing component at a probability of 0.4
and update the model component at a probability of 0.6. At the last
iteration, the pipeline is designed to have an incompatibility problem
between the last two components."

Non-linear versioning: "we first generate two branches, then update
components on both branches and merge the two updated branches" — shaped
after the Fig. 3 history (the dev branch updates the model, bumps the
schema of the feature stage and adapts the model twice; the base branch
updates the cleaning stage and the model concurrently).

Both scripts are *deterministic descriptions* (lists of per-iteration
update dicts), so the same evolution can be replayed against MLCask and
both baselines for a like-for-like comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .base import Workload


@dataclass
class LinearStep:
    """One iteration of the linear-versioning experiment."""

    iteration: int
    updates: dict = field(default_factory=dict)  # stage -> Component
    expect_incompatible: bool = False
    description: str = ""


def linear_script(
    workload: Workload,
    n_iterations: int = 10,
    p_preprocess: float = 0.4,
    seed: int = 0,
) -> list[LinearStep]:
    """Generate the 10-iteration update schedule.

    Iteration 1 is the initial build (no updates). Iterations 2..n-1 update
    the pre-processing component w.p. ``p_preprocess`` (cycling through the
    pre-processing stages) and the model otherwise. The final iteration
    bumps the schema of the stage feeding the model *without* adapting the
    model — the designed incompatibility between the last two components.
    """
    if n_iterations < 3:
        raise ValueError(f"need at least 3 iterations, got {n_iterations}")
    rng = np.random.default_rng(seed)
    steps = [LinearStep(iteration=1, description="initial pipeline")]

    next_idx = {stage: 1 for stage in workload.stage_names}
    preproc_cycle = list(workload.preprocessing_stages)
    cycle_pos = 0

    for iteration in range(2, n_iterations):
        if rng.random() < p_preprocess:
            stage = preproc_cycle[cycle_pos % len(preproc_cycle)]
            cycle_pos += 1
            component = workload.stage_version(stage, next_idx[stage])
            description = f"update pre-processing stage {stage!r}"
        else:
            stage = workload.model_stage
            component = workload.stage_version(stage, next_idx[stage])
            description = "update model"
        next_idx[stage] += 1
        steps.append(
            LinearStep(
                iteration=iteration,
                updates={stage: component},
                description=description,
            )
        )

    schema_stage = workload.schema_stage
    incompatible = workload.stage_version(
        schema_stage, next_idx[schema_stage], out_variant=1
    )
    steps.append(
        LinearStep(
            iteration=n_iterations,
            updates={schema_stage: incompatible},
            expect_incompatible=True,
            description=f"schema bump on {schema_stage!r} without model adaptation",
        )
    )
    return steps


@dataclass
class NonlinearScript:
    """The two-branch history plus the branches to merge."""

    workload: Workload
    head_branch: str = "master"
    merge_head_branch: str = "dev"
    #: update dicts committed on the dev branch, in order
    dev_commits: list = field(default_factory=list)
    #: update dicts committed on the base branch after the fork, in order
    head_commits: list = field(default_factory=list)


def nonlinear_script(workload: Workload) -> NonlinearScript:
    """Shape the Fig. 3 history onto any workload.

    dev branch (MERGE_HEAD side, like Frank-dev):
      1. model update (old schema)                       -> dev.0.0
      2. schema-stage bump + model adapted to new schema -> dev.0.1
      3. model adapted again                             -> dev.0.2
    base branch (HEAD side, like master after Jane's merge):
      1. clean-stage update + model update (old schema)  -> master.0.1

    Resulting search spaces mirror Fig. 4: clean {0.0, 0.1}, schema stage
    {0.0, 1.0}, model {0.0 .. 0.4}, dataset {0.0}.
    """
    schema_stage = workload.schema_stage
    clean_stage = workload.clean_stage
    model_stage = workload.model_stage

    dev_commits = [
        {model_stage: workload.stage_version(model_stage, 1, 0, 0)},
        {
            schema_stage: workload.stage_version(schema_stage, 1, out_variant=1),
            model_stage: workload.stage_version(model_stage, 2, 0, 1),
        },
        {model_stage: workload.stage_version(model_stage, 3, 0, 1)},
    ]
    head_commits = [
        {
            clean_stage: workload.stage_version(clean_stage, 1),
            model_stage: workload.stage_version(model_stage, 4, 0, 0),
        },
    ]
    return NonlinearScript(
        workload=workload,
        dev_commits=dev_commits,
        head_commits=head_commits,
    )


def apply_nonlinear_history(repo, script: NonlinearScript) -> None:
    """Create the pipeline, fork the branches, and commit both sides."""
    workload = script.workload
    repo.create_pipeline(
        workload.spec, workload.initial_components(), message="common ancestor"
    )
    repo.branch(workload.name, script.merge_head_branch, script.head_branch)
    for updates in script.dev_commits:
        repo.commit(
            workload.name,
            updates,
            branch=script.merge_head_branch,
            message="dev-side update",
        )
    for updates in script.head_commits:
        repo.commit(
            workload.name,
            updates,
            branch=script.head_branch,
            message="head-side update",
        )
