"""The paper's four evaluated pipelines plus scripted evolution histories."""

from .autolearn import AutolearnWorkload
from .base import Workload, library_code_blob
from .dpm import DPMWorkload
from .evolution import (
    LinearStep,
    NonlinearScript,
    apply_nonlinear_history,
    linear_script,
    nonlinear_script,
)
from .readmission import ReadmissionWorkload
from .sentiment import SentimentWorkload


def readmission_workload(scale: float = 1.0, seed: int = 0) -> ReadmissionWorkload:
    return ReadmissionWorkload(scale=scale, seed=seed)


def dpm_workload(scale: float = 1.0, seed: int = 0) -> DPMWorkload:
    return DPMWorkload(scale=scale, seed=seed)


def sentiment_workload(scale: float = 1.0, seed: int = 0) -> SentimentWorkload:
    return SentimentWorkload(scale=scale, seed=seed)


def autolearn_workload(scale: float = 1.0, seed: int = 0) -> AutolearnWorkload:
    return AutolearnWorkload(scale=scale, seed=seed)


ALL_WORKLOADS = {
    "readmission": readmission_workload,
    "dpm": dpm_workload,
    "sa": sentiment_workload,
    "autolearn": autolearn_workload,
}

__all__ = [
    "AutolearnWorkload",
    "Workload",
    "library_code_blob",
    "DPMWorkload",
    "LinearStep",
    "NonlinearScript",
    "apply_nonlinear_history",
    "linear_script",
    "nonlinear_script",
    "ReadmissionWorkload",
    "SentimentWorkload",
    "readmission_workload",
    "dpm_workload",
    "sentiment_workload",
    "autolearn_workload",
    "ALL_WORKLOADS",
]
