"""Workload framework: the four evaluated pipelines as version families.

A :class:`Workload` describes one of the paper's pipelines (section VII-A)
as a chain of stages, each with an unbounded family of component versions:

* ``stage_version(stage, idx, out_variant, in_variant)`` builds version
  ``idx`` of a stage, reading the upstream schema variant ``in_variant``
  and emitting schema variant ``out_variant``. Versions are numbered per
  section IV-B: ``SemVer(branch, out_variant, idx)`` — the schema domain
  tracks output-schema changes, the increment counts minor updates.
* Schema tags are ``"{workload}/{stage}_v{variant}"``; a consumer accepts
  its producer iff the tags match, which is the ground truth behind the
  compatibility LUT.
* Distinct ``idx`` values must produce behaviourally distinct components
  (different outputs), so checkpoint reuse never conflates versions.

Concrete workloads subclass and implement ``_build(stage, idx, out_variant,
in_variant) -> (fn, params, is_model)``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..core.component import DatasetComponent, LibraryComponent
from ..core.pipeline import PipelineSpec
from ..core.semver import SemVer


def library_code_blob(name: str, version: SemVer, size: int = 30_000) -> bytes:
    """Synthetic 'executable' bytes for a library version.

    Successive versions of the same library share most of their bytes
    (small deterministic mutations), so MLCask's chunk-level dedup saves
    storage on library archives exactly as section VII-C describes, while
    the folder-archival baselines pay full copies.
    """
    rng = np.random.default_rng(abs(hash_stable(name)) % (2**32))
    base = rng.integers(0, 256, size, dtype=np.uint8)
    mutated = base.copy()
    edit_rng = np.random.default_rng(
        (version.schema * 1009 + version.increment * 7919 + 13) % (2**32)
    )
    # A schema change rewrites more of the "code" than an increment.
    n_edits = 40 if version.schema else 8
    n_edits += 6 * version.increment
    positions = edit_rng.integers(0, size, n_edits)
    mutated[positions] = edit_rng.integers(0, 256, n_edits, dtype=np.uint8)
    return mutated.tobytes()


def hash_stable(text: str) -> int:
    """Process-stable string hash (``hash()`` is salted per process)."""
    value = 0
    for ch in text:
        value = (value * 131 + ord(ch)) % (2**61 - 1)
    return value


class Workload(ABC):
    """One evaluated pipeline: spec, datasets, and component families."""

    #: Stage names in chain order; the last stage must be the model.
    stage_names: tuple[str, ...] = ()
    #: Stage whose schema-bumped update creates the designed incompatibility
    #: (defaults to the stage right before the model).
    schema_stage_name: str | None = None
    #: Early, cheap stage updated on the base branch in non-linear scripts.
    clean_stage_name: str | None = None
    metric: str = "accuracy"

    def __init__(self, scale: float = 1.0, seed: int = 0):
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.scale = scale
        self.seed = seed
        self._cache: dict[tuple, LibraryComponent] = {}

    # ------------------------------------------------------------ identity
    @property
    @abstractmethod
    def name(self) -> str: ...

    @property
    def spec(self) -> PipelineSpec:
        return PipelineSpec.chain(self.name, ["dataset", *self.stage_names])

    @property
    def model_stage(self) -> str:
        return self.stage_names[-1]

    @property
    def schema_stage(self) -> str:
        return self.schema_stage_name or self.stage_names[-2]

    @property
    def clean_stage(self) -> str:
        return self.clean_stage_name or self.stage_names[0]

    @property
    def preprocessing_stages(self) -> list[str]:
        return list(self.stage_names[:-1])

    # -------------------------------------------------------------- schemas
    def schema_tag(self, stage: str, variant: int) -> str:
        if stage == "dataset":
            return f"{self.name}/raw_v{variant}"
        return f"{self.name}/{stage}_v{variant}"

    def upstream_stage(self, stage: str) -> str:
        stages = ["dataset", *self.stage_names]
        return stages[stages.index(stage) - 1]

    # ------------------------------------------------------------ factories
    @abstractmethod
    def make_dataset(self, day: int = 0) -> DatasetComponent: ...

    @abstractmethod
    def _build(
        self, stage: str, idx: int, out_variant: int, in_variant: int
    ) -> tuple:
        """Return ``(fn, params, is_model)`` for a component version."""

    def stage_version(
        self,
        stage: str,
        idx: int,
        out_variant: int = 0,
        in_variant: int = 0,
        branch: str = "master",
    ) -> LibraryComponent:
        """Build (and cache) one component version of ``stage``."""
        if stage not in self.stage_names:
            raise ValueError(f"unknown stage {stage!r} for workload {self.name}")
        key = (stage, idx, out_variant, in_variant, branch)
        if key in self._cache:
            return self._cache[key]
        fn, params, is_model = self._build(stage, idx, out_variant, in_variant)
        component = LibraryComponent(
            name=f"{self.name}.{stage}",
            version=SemVer(branch, out_variant, idx),
            fn=fn,
            params=params,
            input_schema=self.schema_tag(self.upstream_stage(stage), in_variant),
            output_schema=self.schema_tag(stage, out_variant)
            if not is_model
            else f"{self.name}/model",
            is_model=is_model,
        )
        self._cache[key] = component
        return component

    # ----------------------------------------------------------- shortcuts
    def initial_components(self) -> dict[str, object]:
        """Version 0.0 of everything: the ``master.0.0`` binding."""
        components: dict[str, object] = {"dataset": self.make_dataset(day=0)}
        for stage in self.stage_names:
            components[stage] = self.stage_version(stage, 0)
        return components

    def model_version(self, idx: int, in_variant: int = 0) -> LibraryComponent:
        return self.stage_version(self.model_stage, idx, 0, in_variant)

    # ------------------------------------------------------------ rebinding
    def rebind(self, repo, max_variant: int = 4) -> int:
        """Re-register this workload's executables into a loaded repository.

        A repository loaded from disk (or cloned without a registry) holds
        commits that reference components by identifier and fingerprint
        but carries no executables — the paper's library-repository /
        pipeline-repository separation. For histories built from this
        workload's version families, every referenced component is
        reconstructible: the identifier names the stage and semantic
        version, and the fingerprint verifies the rebuilt candidate is
        *exactly* the component the commit ran (input-variant ambiguity is
        resolved by searching variants up to ``max_variant``).

        Returns the number of identifiers re-bound. Identifiers that do
        not belong to this family are left alone — history stays loadable,
        those commits just stay non-runnable.
        """
        bound = 0
        for commit in repo.graph.all_commits():
            if commit.pipeline != self.name:
                continue
            for stage, identifier in commit.component_versions.items():
                if identifier in repo.registry:
                    continue
                fingerprint = commit.component_fingerprints.get(stage, "")
                component = self._rebuild(stage, identifier, fingerprint, max_variant)
                if component is not None:
                    repo.registry.register(component)
                    bound += 1
        return bound

    def _rebuild(self, stage, identifier, fingerprint, max_variant):
        """Reconstruct one referenced component, fingerprint-verified."""
        from ..errors import VersionError

        _, _, version_text = identifier.partition("@")
        try:
            version = SemVer.parse(version_text)
        except VersionError:
            return None
        if stage == "dataset":
            for day in range(max_variant):
                candidate = self.make_dataset(day=day)
                if candidate.fingerprint == fingerprint:
                    return candidate
            return None
        if stage not in self.stage_names:
            return None
        for in_variant in range(max_variant):
            candidate = self.stage_version(
                stage,
                version.increment,
                out_variant=version.schema,
                in_variant=in_variant,
                branch=version.branch,
            )
            if candidate.fingerprint == fingerprint:
                return candidate
        return None

    def scaled(self, n: int) -> int:
        """Apply the workload scale factor to a size parameter."""
        return max(4, int(round(n * self.scale)))
