"""Sentiment Analysis pipeline (paper section VII-A).

Stages: ``dataset -> corpus -> embed -> prep -> model``.

"The first three steps are designed to process the external corpora and
pre-trained word embeddings. In the last step, a DL model is trained for
the sentiment analysis task."

1. *corpus* — tokenize documents and build a vocabulary. Per section
   IV-B, vocabulary size is the schema of text data: schema variant 1
   grows the vocabulary cap;
2. *embed* — train PPMI+SVD word embeddings and mean-pool per document;
   this is the expensive stage (the paper points at "word embedding" as
   the pre-processing step that makes SA's iterations steep). Embedding
   dimensionality is the output schema (feature width);
3. *prep* — feature scaling (cheap increments);
4. *model* — sentiment classifier.
"""

from __future__ import annotations

import numpy as np

from ..core.component import DatasetComponent
from ..core.semver import SemVer
from ..data.synthetic.sentiment import make_reviews
from ..data.table import Table
from ..ml.embeddings import WordEmbedder
from ..ml.metrics import accuracy, roc_auc
from ..ml.mlp import MLPClassifier
from ..ml.preprocess import MinMaxScaler, StandardScaler
from ..ml.text import Vocabulary, tokenize
from ..ml.utils import train_test_split
from .base import Workload

_VOCAB_SIZES = (300, 340)  # schema variant -> vocabulary cap
_EMBED_DIMS = (24, 32)  # schema variant -> embedding width


def _corpus_fn(table: Table, params: dict, rng) -> dict:
    drop_top_k = int(params["drop_top_k"])
    docs = [tokenize(str(text)) for text in table["text"]]
    if drop_top_k > 0:
        # Stopword removal: drop the k most frequent tokens in the corpus.
        counts: dict[str, int] = {}
        for doc in docs:
            for token in doc:
                counts[token] = counts.get(token, 0) + 1
        stopwords = {
            t for t, _ in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:drop_top_k]
        }
        docs = [[t for t in doc if t not in stopwords] for doc in docs]
    vocab = Vocabulary(max_size=int(params["vocab_size"])).fit(docs)
    encoded = [vocab.encode(doc) for doc in docs]
    return {
        "encoded_docs": encoded,
        "labels": table["sentiment"].astype(np.int64),
        "vocab_tokens": vocab.tokens(),
    }


def _embed_fn(payload: dict, params: dict, rng) -> dict:
    vocab = Vocabulary.from_tokens(list(payload["vocab_tokens"]))
    embedder = WordEmbedder(
        dimensions=int(params["dimensions"]),
        window=int(params["window"]),
        seed=int(params["embed_seed"]),
    ).fit(payload["encoded_docs"], vocab)
    X = embedder.embed_documents(payload["encoded_docs"])
    return {"X": X, "y": payload["labels"]}


def _prep_fn(payload: dict, params: dict, rng) -> dict:
    scaler = StandardScaler() if params["scaler"] == "standard" else MinMaxScaler()
    X = scaler.fit_transform(payload["X"]) * float(params.get("rescale", 1.0))
    if params["quadratic_features"]:
        # Schema-variant 1 doubles the width with squared features — an
        # output-schema change the downstream model must adapt to.
        X = np.hstack([X, X**2])
    return {"X": X, "y": payload["y"]}


def _model_fn(payload: dict, params: dict, rng) -> dict:
    X, y = payload["X"], payload["y"]
    X_train, X_test, y_train, y_test = train_test_split(
        X, y, test_fraction=0.3, seed=int(params["split_seed"])
    )
    model = MLPClassifier(
        hidden_sizes=tuple(params["hidden_sizes"]),
        n_epochs=int(params["n_epochs"]),
        seed=int(params["model_seed"]),
    ).fit(X_train, y_train)
    predictions = model.predict(X_test)
    proba = model.predict_proba(X_test)[:, 1]
    return {
        "metrics": {
            "accuracy": accuracy(y_test, predictions),
            "auc": roc_auc(y_test, proba),
        },
        "params": model.get_params(),
    }


class SentimentWorkload(Workload):
    """Embedding-dominated movie-review sentiment pipeline."""

    stage_names = ("corpus", "embed", "prep", "model")
    schema_stage_name = "prep"
    clean_stage_name = "corpus"
    metric = "accuracy"

    @property
    def name(self) -> str:
        return "sa"

    def make_dataset(self, day: int = 0) -> DatasetComponent:
        n = self.scaled(400)
        seed = self.seed

        def loader(rng, _n=n, _seed=seed, _day=day):
            return make_reviews(n_docs=_n, doc_len=40, seed=_seed, day=_day)

        return DatasetComponent(
            name=f"{self.name}.dataset",
            version=SemVer("master", 0, day),
            loader=loader,
            output_schema=self.schema_tag("dataset", 0),
            content_key=f"day{day}",
            description="synthetic labelled movie reviews",
        )

    def _build(self, stage, idx, out_variant, in_variant):
        # Version quality trends upward: more stopword hygiene, wider
        # co-occurrence windows, more training epochs.
        if stage == "corpus":
            params = {
                "idx": idx,
                "vocab_size": _VOCAB_SIZES[min(out_variant, len(_VOCAB_SIZES) - 1)],
                "drop_top_k": 2 * idx,
            }
            return _corpus_fn, params, False
        if stage == "embed":
            params = {
                "idx": idx,
                "dimensions": _EMBED_DIMS[min(out_variant, len(_EMBED_DIMS) - 1)],
                "window": 3 + min(idx, 3),
                # per-version SVD restart: keeps post-saturation versions
                # from byte-aliasing while quality stays window-driven
                "embed_seed": self.seed + idx,
            }
            return _embed_fn, params, False
        if stage == "prep":
            params = {
                "idx": idx,
                "scaler": "standard" if idx % 2 == 0 else "minmax",
                "quadratic_features": out_variant >= 1,
                "rescale": 1.0 + 1e-9 * idx,  # distinct bytes per version
            }
            return _prep_fn, params, False
        if stage == "model":
            # Quality ladder peaking at idx 3 (see readmission.py).
            hidden_ladder = [[16], [24], [32], [48], [40]]
            epoch_ladder = [12, 16, 20, 28, 24]
            step = min(idx, 4)
            params = {
                "idx": idx,
                "hidden_sizes": hidden_ladder[step],
                "n_epochs": epoch_ladder[step] + 2 * max(idx - 4, 0),
                "split_seed": 13,
                "model_seed": self.seed,
            }
            return _model_fn, params, True
        raise ValueError(f"unknown stage {stage!r}")
