"""Readmission pipeline (paper section VII-A, running example of Figs. 1-4).

Stages: ``dataset -> clean -> extract -> model``.

1. *clean* — fill in the missing diagnosis codes (mode or constant fill,
   with per-version outlier clipping differences);
2. *extract* — readmission samples and medical features: numeric vitals
   plus one-hot diagnosis prefixes; schema variant 1 widens the feature
   set with procedure codes and interactions (an output-schema change);
3. *model* — a deep-learning classifier (numpy MLP) predicting 30-day
   readmission.

The paper notes that "for the Readmission pipeline, a substantial fraction
of the overall run time is spent on the model training", so versions here
keep pre-processing cheap and give the model stage real epochs.
"""

from __future__ import annotations

import numpy as np

from ..core.component import DatasetComponent
from ..core.semver import SemVer
from ..data.synthetic.readmission import make_readmission
from ..data.table import Table
from ..ml.metrics import accuracy, roc_auc
from ..ml.mlp import MLPClassifier
from ..ml.preprocess import ModeImputer
from ..ml.utils import train_test_split
from .base import Workload

_DIAG_PREFIX_LEN = 3
_PROC_CODES = ("angioplasty", "dialysis", "endoscopy", "none", "transfusion")
_DIAG_PREFIXES = ("E11", "F32", "I10", "I50", "J44", "K21", "M54", "N18")


def _clean_fn(table: Table, params: dict, rng) -> Table:
    """Fill missing diagnosis codes; clip numeric outliers per version."""
    strategy = params["fill_strategy"]
    clip_q = float(params["clip_quantile"])
    diag = table["diagnosis_code"]
    if strategy == "mode":
        filled = ModeImputer().fit_transform(diag)
    else:
        filled = np.array(
            [params["fill_value"] if v is None else v for v in diag], dtype=object
        )
    out = table.with_column("diagnosis_code", filled)
    for column in ("length_of_stay", "lab_creatinine", "lab_hba1c"):
        values = out[column].astype(np.float64)
        hi = np.quantile(values, clip_q)
        out = out.with_column(column, np.minimum(values, hi))
    return out


def _extract_fn(table: Table, params: dict, rng) -> dict:
    """Numeric features + one-hot diagnosis prefix (+ extras in variant 1)."""
    numeric = table.numeric_matrix(
        ["age", "gender", "n_prior_admissions", "length_of_stay",
         "lab_creatinine", "lab_hba1c", "charlson_index"]
    )
    prefixes = np.array(
        [str(v)[:_DIAG_PREFIX_LEN] for v in table["diagnosis_code"]], dtype=object
    )
    diag_onehot = np.zeros((table.n_rows, len(_DIAG_PREFIXES)))
    index = {p: i for i, p in enumerate(_DIAG_PREFIXES)}
    for row, prefix in enumerate(prefixes):
        col = index.get(prefix)
        if col is not None:
            diag_onehot[row, col] = 1.0
    blocks = [numeric, diag_onehot]

    if params["wide_features"]:
        proc_onehot = np.zeros((table.n_rows, len(_PROC_CODES)))
        proc_index = {p: i for i, p in enumerate(_PROC_CODES)}
        for row, code in enumerate(table["procedure_code"]):
            col = proc_index.get(str(code))
            if col is not None:
                proc_onehot[row, col] = 1.0
        interactions = np.column_stack([
            numeric[:, 0] * numeric[:, 6],            # age x charlson
            np.log1p(numeric[:, 3]),                  # log length of stay
            numeric[:, 4] * numeric[:, 2],            # creatinine x prior adm
        ])
        blocks.extend([proc_onehot, interactions])

    X = np.hstack(blocks)
    if params["scaling"] == "standard":
        # inline standardization with a per-version epsilon, so same-parity
        # versions never emit byte-identical matrices
        epsilon = float(params.get("std_epsilon", 1e-12))
        stds = X.std(axis=0)
        stds = np.where(stds < 1e-12, 1.0, stds)
        X = (X - X.mean(axis=0)) / (stds + epsilon)
    else:
        X = X / (np.abs(X).max(axis=0) + 1e-9) * float(params["scale_cap"])
    return {"X": X, "y": table["readmitted_30d"].astype(np.int64)}


def _model_fn(payload: dict, params: dict, rng) -> dict:
    X, y = payload["X"], payload["y"]
    X_train, X_test, y_train, y_test = train_test_split(
        X, y, test_fraction=0.3, seed=int(params["split_seed"])
    )
    model = MLPClassifier(
        hidden_sizes=tuple(params["hidden_sizes"]),
        n_epochs=int(params["n_epochs"]),
        learning_rate=float(params["learning_rate"]),
        batch_size=32,
        seed=int(params["model_seed"]),
    ).fit(X_train, y_train)
    predictions = model.predict(X_test)
    proba = model.predict_proba(X_test)[:, 1]
    return {
        "metrics": {
            "accuracy": accuracy(y_test, predictions),
            "auc": roc_auc(y_test, proba),
        },
        "params": model.get_params(),
    }


class ReadmissionWorkload(Workload):
    """Training-dominated hospital readmission pipeline."""

    stage_names = ("clean", "extract", "model")
    schema_stage_name = "extract"
    clean_stage_name = "clean"
    metric = "accuracy"

    @property
    def name(self) -> str:
        return "readmission"

    def make_dataset(self, day: int = 0) -> DatasetComponent:
        n = self.scaled(1600)
        seed = self.seed

        def loader(rng, _n=n, _seed=seed, _day=day):
            return make_readmission(n_patients=_n, seed=_seed, day=_day)

        return DatasetComponent(
            name=f"{self.name}.dataset",
            version=SemVer("master", 0, day),
            loader=loader,
            output_schema=self.schema_tag("dataset", 0),
            content_key=f"day{day}",
            description="synthetic NUHS-style inpatient cohort",
        )

    def _build(self, stage, idx, out_variant, in_variant):
        # Later versions are generally better (devs commit improvements):
        # clipping gets gentler, models get more capacity and epochs. This
        # is what makes version-history scores informative for the
        # prioritized search, as in the paper's deployments.
        if stage == "clean":
            # v0 clips aggressively (distorting the utilization signal the
            # label depends on); later versions fix it — the head branch's
            # clean update is a genuine improvement, as in a real fix.
            params = {
                "idx": idx,
                "fill_strategy": "mode",
                "fill_value": f"U{idx:02d}.0",
                # strictly increasing with idx so no two versions ever
                # emit byte-identical output (content addressing would
                # silently alias them otherwise)
                "clip_quantile": min(0.9995, 0.90 + 0.08 * min(idx, 1) + 0.003 * idx),
            }
            return _clean_fn, params, False
        if stage == "extract":
            params = {
                "idx": idx,
                "wide_features": out_variant >= 1,
                "scaling": "standard" if idx % 2 == 0 else "maxabs",
                "scale_cap": 1.0 + 0.25 * (idx % 3),
                "std_epsilon": 1e-9 * (1 + idx),
            }
            return _extract_fn, params, False
        if stage == "model":
            # Quality ladder peaking at idx 3: versions improve commit over
            # commit, with the most recent head-side model (idx 4) strong
            # but below the dev branch's best tuning — the optimal merge is
            # then a *new* combination in a well-scored subtree, the regime
            # the paper's Table I reflects.
            hidden_ladder = [[32], [48], [64, 24], [96, 24], [80, 24]]
            epoch_ladder = [24, 32, 40, 56, 48]
            step = min(idx, 4)
            params = {
                "idx": idx,
                "hidden_sizes": hidden_ladder[step],
                "n_epochs": epoch_ladder[step] + 2 * max(idx - 4, 0),
                "learning_rate": 0.06,
                "split_seed": 7,
                "model_seed": self.seed,
            }
            return _model_fn, params, True
        raise ValueError(f"unknown stage {stage!r}")
