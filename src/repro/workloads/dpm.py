"""Disease Progression Modeling pipeline (paper section VII-A).

Stages: ``dataset -> clean -> extract -> hmm -> model``.

1. *clean* — clip laboratory outliers;
2. *extract* — per-patient visit sequences of lab features (schema variant
   1 adds systolic blood pressure, widening the sequence features);
3. *hmm* — a Gaussian HMM fit over all sequences "so that they become
   unbiased": each patient is summarized by posterior-stage statistics.
   This is deliberately the expensive stage — the paper observes "HMM
   processing is time consuming" and pins DPM's cost on pre-processing;
   schema variant 1 uses 5 hidden states, widening the posterior features;
4. *model* — a small MLP predicting stage progression.
"""

from __future__ import annotations

import numpy as np

from ..core.component import DatasetComponent
from ..core.semver import SemVer
from ..data.synthetic.dpm import make_dpm
from ..data.table import Table
from ..ml.hmm import GaussianHMM
from ..ml.metrics import accuracy, roc_auc
from ..ml.mlp import MLPClassifier
from ..ml.utils import train_test_split
from .base import Workload

_BASE_FEATURES = ("egfr", "creatinine", "uacr")


def _clean_fn(table: Table, params: dict, rng) -> Table:
    out = table
    lo_q, hi_q = float(params["lo_quantile"]), float(params["hi_quantile"])
    for column in ("egfr", "creatinine", "uacr", "sbp"):
        values = out[column].astype(np.float64)
        lo, hi = np.quantile(values, [lo_q, hi_q])
        out = out.with_column(column, values.clip(lo, hi))
    return out


def _extract_fn(table: Table, params: dict, rng) -> dict:
    features = list(_BASE_FEATURES)
    if params["include_bp"]:
        features.append("sbp")
    matrix = table.numeric_matrix(features)
    if params["log_uacr"]:
        uacr_col = features.index("uacr")
        matrix[:, uacr_col] = np.log1p(matrix[:, uacr_col])
    # column-standardize so HMM emissions are comparable across features
    epsilon = float(params.get("std_epsilon", 1e-9))
    matrix = (matrix - matrix.mean(axis=0)) / (matrix.std(axis=0) + epsilon)

    patient_ids = table["patient_id"].astype(np.int64)
    labels_all = table["progressed"].astype(np.int64)
    sequences: list[np.ndarray] = []
    labels: list[int] = []
    for pid in np.unique(patient_ids):
        mask = patient_ids == pid
        sequences.append(matrix[mask])
        labels.append(int(labels_all[mask][0]))
    return {
        "sequences": sequences,
        "labels": np.array(labels, dtype=np.int64),
        "n_features": len(features),
    }


def _hmm_fn(payload: dict, params: dict, rng) -> dict:
    sequences = payload["sequences"]
    hmm = GaussianHMM(
        n_states=int(params["n_states"]),
        n_iterations=int(params["n_iterations"]),
        seed=int(params["hmm_seed"]),
    ).fit(sequences)
    rows = []
    for seq in sequences:
        gamma = hmm.posterior(seq)
        rows.append(
            np.concatenate([
                gamma.mean(axis=0),          # time-averaged stage posterior
                gamma[-1],                   # final-visit stage posterior
                [hmm.log_likelihood(seq) / max(len(seq), 1)],
            ])
        )
    return {"X": np.vstack(rows), "y": payload["labels"]}


def _model_fn(payload: dict, params: dict, rng) -> dict:
    X, y = payload["X"], payload["y"]
    X_train, X_test, y_train, y_test = train_test_split(
        X, y, test_fraction=0.3, seed=int(params["split_seed"])
    )
    model = MLPClassifier(
        hidden_sizes=tuple(params["hidden_sizes"]),
        n_epochs=int(params["n_epochs"]),
        seed=int(params["model_seed"]),
    ).fit(X_train, y_train)
    predictions = model.predict(X_test)
    proba = model.predict_proba(X_test)[:, 1]
    return {
        "metrics": {
            "accuracy": accuracy(y_test, predictions),
            "auc": roc_auc(y_test, proba),
        },
        "params": model.get_params(),
    }


class DPMWorkload(Workload):
    """Pre-processing-dominated CKD progression pipeline."""

    stage_names = ("clean", "extract", "hmm", "model")
    schema_stage_name = "hmm"
    clean_stage_name = "clean"
    metric = "accuracy"

    @property
    def name(self) -> str:
        return "dpm"

    def make_dataset(self, day: int = 0) -> DatasetComponent:
        n = self.scaled(110)
        seed = self.seed

        def loader(rng, _n=n, _seed=seed, _day=day):
            return make_dpm(n_patients=_n, n_visits=12, seed=_seed, day=_day)

        return DatasetComponent(
            name=f"{self.name}.dataset",
            version=SemVer("master", 0, day),
            loader=loader,
            output_schema=self.schema_tag("dataset", 0),
            content_key=f"day{day}",
            description="synthetic longitudinal CKD labs",
        )

    def _build(self, stage, idx, out_variant, in_variant):
        # Quality trends upward with the version index: gentler clipping,
        # more EM iterations, larger models — history scores stay
        # informative for the prioritized search.
        if stage == "clean":
            # hyperbolic ladder: strictly varying at every idx, converging
            # toward keep-everything (no two versions byte-alias)
            params = {
                "idx": idx,
                "lo_quantile": 0.02 / (1.0 + idx),
                "hi_quantile": 1.0 - 0.02 / (1.0 + idx),
            }
            return _clean_fn, params, False
        if stage == "extract":
            params = {
                "idx": idx,
                "include_bp": out_variant >= 1,
                "log_uacr": idx % 2 == 0,
                # tiny per-version standardization epsilon keeps outputs
                # of same-parity versions from byte-aliasing
                "std_epsilon": 1e-9 * (1 + idx),
            }
            return _extract_fn, params, False
        if stage == "hmm":
            params = {
                "idx": idx,
                "n_states": 4 + out_variant,  # schema variant widens posteriors
                "n_iterations": 16 + 5 * min(idx, 4),
                # per-version init jitter: EM may converge before the
                # iteration cap, so the cap alone cannot distinguish
                # version outputs — the jitter guarantees distinct bytes
                "hmm_seed": self.seed + idx,
            }
            return _hmm_fn, params, False
        if stage == "model":
            # Quality ladder peaking at idx 3 (see readmission.py).
            hidden_ladder = [[16], [24], [32], [48], [40]]
            epoch_ladder = [16, 20, 24, 32, 28]
            step = min(idx, 4)
            params = {
                "idx": idx,
                "hidden_sizes": hidden_ladder[step],
                "n_epochs": epoch_ladder[step] + 2 * max(idx - 4, 0),
                "split_seed": 11,
                "model_seed": self.seed,
            }
            return _model_fn, params, True
        raise ValueError(f"unknown stage {stage!r}")
