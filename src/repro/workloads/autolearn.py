"""Autolearn pipeline (paper section VII-A).

Stages: ``dataset -> zernike -> featgen -> select -> model``.

"The Autolearn pipeline is built for image classification of digits using
Zernike moments as features. In the first three pre-processing steps ...
Autolearn [Kaul et al. 2017] algorithm is employed to generate and select
features automatically. In the last step, an AdaBoost classifier is built."

1. *zernike* — Zernike-moment extraction from the digit images; schema
   variant 1 raises the maximum moment order (wider feature matrix);
2. *featgen* — Autolearn-style generated features: for the most correlated
   feature pairs, ridge-regress one feature on the other and append the
   predicted/residual signals as new features;
3. *select* — keep the top-m features by ANOVA-style F score;
4. *model* — AdaBoost over decision stumps.

Pre-processing (feature generation) dominates this pipeline's cost,
matching the paper's iteration-5/9 observations for Autolearn in Fig. 6.
"""

from __future__ import annotations

import numpy as np

from ..core.component import DatasetComponent
from ..core.semver import SemVer
from ..data.synthetic.digits import make_digits
from ..ml.boosting import AdaBoostClassifier
from ..ml.linear import RidgeRegression
from ..ml.metrics import accuracy
from ..ml.utils import train_test_split
from ..ml.zernike import ZernikeExtractor
from .base import Workload

_MAX_ORDERS = (10, 12)  # schema variant -> Zernike max order
_N_GENERATED_PAIRS = 40
_N_CANDIDATE_PAIRS = 300
_N_SELECTED = 30


def _zernike_fn(payload: dict, params: dict, rng) -> dict:
    images, labels = payload["images"], payload["labels"]
    gamma = float(params["gamma"])
    if gamma != 1.0:
        # per-version contrast correction: a continuous knob, so every
        # version's output is genuinely (if mildly) different
        images = np.power(images.clip(0.0, 1.0), gamma)
    extractor = ZernikeExtractor(max_order=int(params["max_order"]))
    X = extractor.transform(images)
    return {"X": X, "y": labels}


def _cv_pair_score(xi: np.ndarray, xj: np.ndarray, alpha: float, n_folds: int = 3) -> float:
    """Cross-validated R² of predicting feature j from feature i.

    Autolearn keeps only the *stably related* feature pairs; CV fit quality
    is the stability criterion.
    """
    n = xi.shape[0]
    fold_size = n // n_folds
    total_sse, total_sst = 0.0, 0.0
    for fold in range(n_folds):
        lo, hi = fold * fold_size, (fold + 1) * fold_size if fold < n_folds - 1 else n
        test = np.zeros(n, dtype=bool)
        test[lo:hi] = True
        model = RidgeRegression(alpha=alpha).fit(xi[~test, None], xj[~test])
        predicted = model.predict(xi[test, None])
        total_sse += float(((xj[test] - predicted) ** 2).sum())
        total_sst += float(((xj[test] - xj[~test].mean()) ** 2).sum())
    if total_sst <= 0:
        return 0.0
    return 1.0 - total_sse / total_sst


def _featgen_fn(payload: dict, params: dict, rng) -> dict:
    """Autolearn feature generation: CV-score candidate feature pairs,
    keep the most stable ones, and emit predicted + residual signals."""
    X, y = payload["X"], payload["y"]
    alpha = float(params["ridge_alpha"])
    n_pairs = int(params["n_pairs"])
    n_candidates = int(params["n_candidates"])
    corr = np.corrcoef(X, rowvar=False)
    np.fill_diagonal(corr, 0.0)
    flat = np.abs(np.nan_to_num(corr)).ravel()
    order = np.argsort(-flat, kind="stable")
    d = X.shape[1]
    candidates: list[tuple[int, int]] = []
    seen = set()
    for position in order:
        i, j = divmod(int(position), d)
        if i == j or (i, j) in seen:
            continue
        seen.add((i, j))
        candidates.append((i, j))
        if len(candidates) >= n_candidates:
            break
    scored = [
        (_cv_pair_score(X[:, i], X[:, j], alpha), i, j) for i, j in candidates
    ]
    scored.sort(key=lambda item: -item[0])
    chosen = [(i, j) for _, i, j in scored[:n_pairs]]
    generated = np.zeros((X.shape[0], 2 * len(chosen)))
    for k, (i, j) in enumerate(chosen):
        model = RidgeRegression(alpha=alpha).fit(X[:, [i]], X[:, j])
        predicted = model.predict(X[:, [i]])
        generated[:, 2 * k] = predicted
        generated[:, 2 * k + 1] = X[:, j] - predicted  # stable residual
    return {"X": np.hstack([X, generated]), "y": y}


def _select_fn(payload: dict, params: dict, rng) -> dict:
    """Keep the top-m features by a blend of ANOVA F and variance.

    ``f_weight`` mixes the two normalized criteria; versions slide the
    weight so every increment selects a (slightly) different feature set
    while keeping the output width — and thus the schema — stable.
    """
    X, y = payload["X"], payload["y"]
    m = int(params["n_selected"])
    classes = np.unique(y)
    overall_mean = X.mean(axis=0)
    between = np.zeros(X.shape[1])
    within = np.zeros(X.shape[1])
    for c in classes:
        block = X[y == c]
        between += block.shape[0] * (block.mean(axis=0) - overall_mean) ** 2
        within += ((block - block.mean(axis=0)) ** 2).sum(axis=0)
    df_between = max(classes.size - 1, 1)
    df_within = max(X.shape[0] - classes.size, 1)
    f_score = (between / df_between) / (within / df_within + 1e-12)
    variance = X.var(axis=0)

    def normalized(values):
        span = values.max() - values.min()
        return (values - values.min()) / (span + 1e-12)

    w = float(params["f_weight"])
    blended = w * normalized(f_score) + (1.0 - w) * normalized(variance)
    top = np.argsort(-blended, kind="stable")[:m]
    return {"X": X[:, np.sort(top)], "y": y}


def _model_fn(payload: dict, params: dict, rng) -> dict:
    X, y = payload["X"], payload["y"]
    X_train, X_test, y_train, y_test = train_test_split(
        X, y, test_fraction=0.3, seed=int(params["split_seed"])
    )
    model = AdaBoostClassifier(
        n_estimators=int(params["n_estimators"]),
        n_thresholds=int(params["n_thresholds"]),
    ).fit(X_train, y_train)
    predictions = model.predict(X_test)
    return {
        "metrics": {"accuracy": accuracy(y_test, predictions)},
        "params": model.get_params(),
    }


class AutolearnWorkload(Workload):
    """Feature-generation-dominated digit classification pipeline."""

    stage_names = ("zernike", "featgen", "select", "model")
    schema_stage_name = "select"
    clean_stage_name = "zernike"
    metric = "accuracy"

    @property
    def name(self) -> str:
        return "autolearn"

    def make_dataset(self, day: int = 0) -> DatasetComponent:
        n = self.scaled(400)
        seed = self.seed

        def loader(rng, _n=n, _seed=seed, _day=day):
            images, labels = make_digits(n_samples=_n, size=16, seed=_seed, day=_day)
            return {"images": images, "labels": labels}

        return DatasetComponent(
            name=f"{self.name}.dataset",
            version=SemVer("master", 0, day),
            loader=loader,
            output_schema=self.schema_tag("dataset", 0),
            content_key=f"day{day}",
            description="procedural digit glyph images",
        )

    def _build(self, stage, idx, out_variant, in_variant):
        # Version quality trends upward: cleaner binarization, softer
        # ridge regularization, more boosting rounds.
        if stage == "zernike":
            params = {
                "idx": idx,
                "max_order": _MAX_ORDERS[min(out_variant, len(_MAX_ORDERS) - 1)],
                # strictly increasing contrast correction: later versions
                # sharpen the glyphs; no two versions alias
                "gamma": 1.0 + 0.12 * idx,
            }
            return _zernike_fn, params, False
        if stage == "featgen":
            params = {
                "idx": idx,
                "ridge_alpha": 1.0 / (1.0 + idx),
                "n_pairs": _N_GENERATED_PAIRS,
                "n_candidates": _N_CANDIDATE_PAIRS,
            }
            return _featgen_fn, params, False
        if stage == "select":
            params = {
                "idx": idx,
                "n_selected": _N_SELECTED + 5 * out_variant,
                # slide the criterion blend with the version: selections
                # differ per increment, width (schema) stays fixed
                "f_weight": 1.0 / (1.0 + 0.15 * idx),
            }
            return _select_fn, params, False
        if stage == "model":
            # Quality ladder peaking at idx 3 (see readmission.py).
            estimator_ladder = [10, 16, 22, 30, 25]
            step = min(idx, 4)
            params = {
                "idx": idx,
                "n_estimators": estimator_ladder[step] + 2 * max(idx - 4, 0),
                "n_thresholds": 8,
                "split_seed": 17,
            }
            return _model_fn, params, True
        raise ValueError(f"unknown stage {stage!r}")
