"""Remote handles: clone, fetch, push, and pull against a peer repository.

The client half of the sync protocol. A :class:`Remote` binds one local
``MLCask`` to one transport and implements the git-shaped verbs on top of
chunk-level content negotiation:

* **fetch** — pull the peer's commit graph (minus commits already held),
  recipes, and checkpoint records; then request *only* the chunks the
  local store lacks. Remote branch heads land as tracking refs named
  ``<remote>/<branch>``.
* **pull** — fetch, then move the local branch: fast-forward when the
  histories allow it, otherwise resolve the divergence with MLCask's own
  metric-driven merge against the tracking ref (the collaborative-merge
  story of paper section V, now spanning repositories).
* **push** — offer reachable commits, learn which the server lacks, send
  those plus exactly the chunks the server reports missing. The server
  only fast-forwards refs; a diverged push raises
  :class:`PushRejectedError` and is resolved client-side via ``pull``.
* **clone** — bootstrap a fresh repository from a peer's manifest plus
  one full fetch (:func:`clone_repository`).

Component *executables* never cross the wire (they are live Python
callables); like :mod:`repro.core.persistence`, a registry re-binds
fetched commits to runnable components when the caller has them.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from ..errors import ChunkNotFoundError, RemoteError, ServerOverloadedError
from ..obs import propagation
from ..obs import trace as obs_trace
from . import pack
from .protocol import decode_message, encode_message, raise_remote_error

#: Most chunk digests offered per get_chunks request. The server answers
#: with a prefix that fits its byte window, so re-sending the *entire*
#: remaining want list every round would make request traffic quadratic
#: in chunk count; a slice keeps each request bounded (~270 KB of JSON).
WANT_DIGESTS_PER_REQUEST = 4096


@dataclass
class FetchResult:
    """What one fetch moved."""

    refs: dict = field(default_factory=dict)
    commits_received: int = 0
    chunks_received: int = 0
    chunk_bytes_received: int = 0


@dataclass
class PushResult:
    """What one push moved (all zero when already up to date)."""

    up_to_date: bool = False
    commits_sent: int = 0
    chunks_sent: int = 0
    chunk_bytes_sent: int = 0
    updated: dict = field(default_factory=dict)


@dataclass
class PullResult:
    """How a pull advanced the local branch.

    ``action`` is one of ``"up-to-date"``, ``"created"``,
    ``"fast-forward"``, or ``"merged"``; ``outcome`` carries the
    :class:`MergeOutcome` when the divergence was merge-resolved.
    """

    action: str
    fetch: FetchResult
    outcome: object | None = None


class Remote:
    """One peer repository, addressed through a transport.

    ``max_pack_bytes`` bounds the chunk payload of any single wire
    message in either direction: fetches window their ``get_chunks``
    requests to it, and a push whose missing content exceeds it streams
    the chunks in ``put_chunks`` batches before the final ref update.

    ``overload_retries`` is how many times a request shed by an
    overloaded peer (:class:`~repro.errors.ServerOverloadedError`) is
    retried after backing off per the server's ``retry_after`` hint;
    the final attempt's error propagates. ``backoff`` (optional, a
    ``callable(seconds)``) replaces ``time.sleep`` — tests inject a
    recorder, schedulers could yield instead of blocking.
    """

    def __init__(
        self,
        repo,
        transport,
        name: str = "origin",
        max_pack_bytes: int = pack.DEFAULT_MAX_PACK_BYTES,
        tracer=None,
        overload_retries: int = 2,
        backoff=None,
    ):
        self.repo = repo
        self.transport = transport
        self.name = name
        self.max_pack_bytes = max_pack_bytes
        self.tracer = tracer
        self.overload_retries = max(0, overload_retries)
        self._backoff = backoff if backoff is not None else time.sleep

    # ------------------------------------------------------------ plumbing
    def _backoff_seconds(self, retry_after: float, attempt: int) -> float:
        """Jittered exponential delay scaled by the server's hint.

        Full jitter over ``[0.5, 1.5) * retry_after * 2^attempt``: shed
        clients must not return in lockstep and re-create the very storm
        that shed them.
        """
        base = max(retry_after, 0.0) * (2 ** attempt)
        return base * (0.5 + random.random())

    def _call(self, meta: dict, blobs: list[bytes] | None = None):
        # Every RPC goes out under a client.<op> span, and the *current*
        # span's identity rides the envelope (trace_ctx) so the server's
        # spans join this trace. With no tracer installed the span is the
        # shared null span, no context is current, and inject() leaves the
        # request bytes untouched — untraced clients stay byte-identical.
        tracer = self.tracer if self.tracer is not None else obs_trace.default_tracer()
        op = meta.get("op", "?")
        for attempt in range(self.overload_retries + 1):
            with tracer.span(f"client.{op}", op=op, remote=self.name):
                payload = encode_message(propagation.inject(meta), blobs)
                response = self.transport.call(payload)
                meta_out, blobs_out = decode_message(response)
                try:
                    raise_remote_error(meta_out)
                except ServerOverloadedError as error:
                    # A shed request has touched no repository state
                    # (the hub's admission contract), so a verbatim
                    # retry is always safe — including for writes.
                    if attempt >= self.overload_retries:
                        raise
                    self._backoff(
                        self._backoff_seconds(error.retry_after, attempt)
                    )
                    continue
                return meta_out, blobs_out

    def tracking_branch(self, branch: str) -> str:
        return f"{self.name}/{branch}"

    def manifest(self) -> dict:
        """The peer's refs and repository configuration."""
        meta, _ = self._call({"op": "manifest"})
        return meta

    def refs(self) -> dict:
        return self.manifest()["refs"]

    def stats(self) -> dict:
        """The peer's telemetry readout (requests, cache, storage, sizes).

        A plain read op: hub-hosted repositories report per-tenant views,
        and old servers answer with a typed unknown-operation error.
        """
        meta, _ = self._call({"op": "stats"})
        return meta["stats"]

    def health(self) -> dict:
        """The peer's sliding-window health report (per-op latency
        percentiles, error-budget burn, shedding state, SLO config).

        Schema-additive read op like :meth:`stats`: old servers answer
        with a typed unknown-operation error. On a hub, reaching this op
        at all means the token passed admission — the detailed report is
        deliberately not on the unauthenticated probe routes.
        """
        meta, _ = self._call({"op": "health"})
        return meta["health"]

    # ------------------------------------------------------------- lineage
    def lineage(self, ref: str) -> dict:
        """Upstream provenance closure of an output ref on the peer.

        Schema-additive read op like :meth:`stats`; raises a typed
        :class:`LineageNotFoundError` when the peer has no record of the
        ref. ``ref`` may be a unique digest prefix.
        """
        meta, _ = self._call({"op": "lineage", "query": "lineage", "ref": ref})
        return meta["lineage"]

    def lineage_consumers(self, ref: str) -> dict:
        """Direct downstream consumers of an output ref on the peer."""
        meta, _ = self._call({"op": "lineage", "query": "consumers", "ref": ref})
        return meta["lineage"]

    def lineage_trace(self, trace_id: str) -> dict:
        """Per-request forensics: the peer's ledger rows for one trace id."""
        meta, _ = self._call(
            {"op": "lineage", "query": "trace", "trace_id": trace_id}
        )
        return meta["lineage"]

    def impact(self, component: str, version: str | None = None) -> dict:
        """What-if analysis: what a component change would invalidate."""
        request = {"op": "lineage", "query": "impact", "component": component}
        if version is not None:
            request["version"] = version
        meta, _ = self._call(request)
        return meta["lineage"]

    def trace(
        self,
        trace_id: str | None = None,
        limit: int | None = None,
        slow: bool = False,
    ) -> dict:
        """The peer's span buffer: one trace's tree and critical path
        (``trace_id``), or recent-trace summaries; ``slow`` adds the
        slow-op captures ring."""
        request: dict = {"op": "trace", "slow": slow}
        if trace_id is not None:
            request["trace_id"] = trace_id
        if limit is not None:
            request["limit"] = limit
        meta, _ = self._call(request)
        return meta["trace"]

    # --------------------------------------------------------------- fetch
    def fetch(self, pipeline: str | None = None, branches=None) -> FetchResult:
        """Synchronize the peer's history and content into this repository.

        ``pipeline``/``branches`` narrow the want set; by default
        everything the peer advertises is fetched. Content transfer is
        chunk-negotiated: when nothing is missing locally, no chunk
        request is issued at all.
        """
        want = None
        if pipeline is not None:
            want = {pipeline: list(branches) if branches else []}
        have = [c.commit_id for c in self.repo.graph.all_commits()]
        meta, _ = self._call(
            {"op": "fetch", "want": want, "have_commits": have}
        )

        # Chunk transfer is windowed to max_pack_bytes per response and
        # each batch is imported (integrity-verified) as it arrives, so
        # peak memory is one window, not the whole want set. Safe to land
        # incrementally: chunks without recipes are inert content-addressed
        # bytes — the consistency invariant is only that no *recipe* ever
        # points at chunks that did not arrive, so recipes, records, and
        # commits still import strictly after all content is in.
        wanted_chunks = self.repo.objects.chunks.missing(
            meta.get("chunk_digests", [])
        )
        new_chunks = 0
        chunk_bytes = 0
        remaining = list(wanted_chunks)
        while remaining:
            chunk_meta, chunk_blobs = self._call(
                {
                    "op": "get_chunks",
                    "digests": remaining[:WANT_DIGESTS_PER_REQUEST],
                    "max_bytes": self.max_pack_bytes,
                }
            )
            got = chunk_meta.get("digests", [])
            if not got:
                raise RemoteError(
                    "server sent an empty chunk batch while "
                    f"{len(remaining)} chunks were still wanted"
                )
            new_chunks += pack.import_content(self.repo, [], [], got, chunk_blobs)
            chunk_bytes += sum(len(b) for b in chunk_blobs)
            if got == remaining[: len(got)]:
                # The server contract: shipped chunks are a prefix of the
                # requested order — progress tracking is one slice, not a
                # set-difference scan over everything still wanted.
                remaining = remaining[len(got):]
                continue
            # Nonconforming peer: fall back to a scan, but never spin on a
            # response that made no progress at all.
            got_set = set(got)
            still_wanted = [d for d in remaining if d not in got_set]
            if len(still_wanted) == len(remaining):
                raise RemoteError(
                    "server sent chunks unrelated to the requested digests"
                )
            remaining = still_wanted

        # Commits import *last*: the server advertises content by commit
        # delta, so grafting commits before their content has safely
        # landed would make a retry after a failed transfer believe there
        # is nothing left to fetch.
        pack.import_specs(self.repo, meta.get("specs", {}))
        pack.import_content(
            self.repo,
            meta.get("recipes", []),
            meta.get("records", []),
            [],
            [],
            lineage_entries=meta.get("lineage", []),
        )
        added = pack.import_commits(self.repo, meta.get("commits", []))
        result = FetchResult(
            refs=meta.get("refs", {}),
            commits_received=len(added),
            chunks_received=new_chunks,
            chunk_bytes_received=chunk_bytes,
        )

        for ref_pipeline, ref_branches in result.refs.items():
            for branch, head in ref_branches.items():
                self.repo.branches.set_head(
                    ref_pipeline, self.tracking_branch(branch), head
                )
        return result

    # ---------------------------------------------------------------- push
    def push(self, pipeline: str, branch: str = "master") -> PushResult:
        """Publish a branch; only missing commits and chunks cross the wire."""
        repo = self.repo
        head = repo.branches.head(pipeline, branch)
        observed = self.refs().get(pipeline, {}).get(branch)
        if observed == head:
            return PushResult(up_to_date=True)

        if observed is not None and observed in repo.graph:
            # The server's head is in our history (the common case after a
            # clone or pull): everything it can reach, it has. No need to
            # ask — one round-trip and one O(history) id list saved.
            known = repo.graph.ancestors(observed)
        else:
            reachable = sorted(repo.graph.ancestors(head))
            meta, _ = self._call({"op": "known_commits", "ids": reachable})
            known = meta.get("known", [])
        commits = pack.commits_to_send(repo, head, known)
        recipes, records, chunk_digests = pack.content_of_commits(repo, commits)
        meta, _ = self._call(
            {"op": "missing_chunks", "digests": sorted(chunk_digests)}
        )
        missing = meta.get("missing", [])

        def read_chunk(digest: str) -> bytes:
            try:
                return repo.objects.chunks.get(digest)
            except ChunkNotFoundError as error:
                raise RemoteError(
                    f"cannot push {pipeline}:{branch}: chunk "
                    f"{error.digest[:12]} is referenced by a local recipe but "
                    "not held (incomplete objects directory?); restore the "
                    "content or re-clone before pushing"
                ) from error

        # Window the content: if everything fits in one pack message the
        # push keeps its single-request shape; otherwise the chunks are
        # pre-seeded batch by batch with put_chunks (content-addressed, so
        # an interrupted push leaves only harmless orphans) and the final
        # push message carries metadata and the ref update alone. The
        # has_more flag keeps peak memory at one window: each batch is
        # shipped before the next is materialized.
        chunk_bytes_sent = 0
        push_digests: list = []
        push_blobs: list = []
        streamed = False
        for batch_digests, batch_blobs, has_more in pack.iter_chunk_batches(
            read_chunk, missing, self.max_pack_bytes
        ):
            if not has_more and not streamed:
                # Sole batch: it rides inside the push message itself.
                push_digests, push_blobs = batch_digests, batch_blobs
                break
            self._call(
                {"op": "put_chunks", "digests": batch_digests}, batch_blobs
            )
            streamed = True
            chunk_bytes_sent += sum(len(b) for b in batch_blobs)
        chunk_bytes_sent += sum(len(b) for b in push_blobs)

        push_meta = pack.pack_meta(repo, commits, recipes, records, push_digests)
        push_meta["op"] = "push"
        push_meta["refs"] = {
            pipeline: {branch: {"old": observed, "new": head}}
        }
        # Advisory repository configuration: a multi-tenant hub receiving
        # the first push into an auto-created (still-empty) repository
        # adopts it, so later clones bootstrap with the right metric/seed.
        # Plain servers ignore the key (schema-additive, no version bump).
        push_meta["repo_config"] = {"metric": repo.metric, "seed": repo.seed}
        meta, _ = self._call(push_meta, push_blobs)
        return PushResult(
            commits_sent=len(commits),
            chunks_sent=len(missing),
            chunk_bytes_sent=chunk_bytes_sent,
            updated=meta.get("updated", {}),
        )

    # ---------------------------------------------------------------- pull
    def pull(
        self,
        pipeline: str,
        branch: str = "master",
        merge: bool = True,
        **merge_kwargs,
    ) -> PullResult:
        """Fetch, then advance the local branch to include the peer's work.

        Fast-forwards when the local branch has nothing of its own;
        otherwise — exactly the collaborative scenario the paper's merge
        exists for — the peer's head (as tracking ref) is merged into the
        local branch with the metric-driven merge, producing a commit
        that a subsequent :meth:`push` fast-forwards onto the server.
        ``merge_kwargs`` pass through to :meth:`MLCask.merge` (mode,
        search, budget, ...).
        """
        fetched = self.fetch(pipeline, [branch])
        remote_head = fetched.refs.get(pipeline, {}).get(branch)
        if remote_head is None:
            raise RemoteError(
                f"remote has no branch {branch!r} for pipeline {pipeline!r}"
            )

        repo = self.repo
        if not repo.branches.has_branch(pipeline, branch):
            repo.branches.set_head(pipeline, branch, remote_head)
            return PullResult(action="created", fetch=fetched)
        local_head = repo.branches.head(pipeline, branch)
        if local_head == remote_head:
            return PullResult(action="up-to-date", fetch=fetched)
        if repo.graph.is_ancestor(local_head, remote_head):
            repo.branches.set_head(pipeline, branch, remote_head)
            return PullResult(action="fast-forward", fetch=fetched)

        if not merge:
            raise RemoteError(
                f"{pipeline}:{branch} diverged from {self.name}; "
                "pull with merge=True to resolve via the metric-driven merge"
            )
        outcome = repo.merge(
            pipeline, branch, self.tracking_branch(branch), **merge_kwargs
        )
        return PullResult(action="merged", fetch=fetched, outcome=outcome)


def clone_repository(
    transport,
    registry=None,
    name: str = "origin",
    author: str | None = None,
    max_pack_bytes: int | None = None,
):
    """Bootstrap a new repository from a peer; returns the ``MLCask``.

    The peer's metric/seed configuration, full history, content, and
    checkpoint index are replicated; every advertised branch is checked
    out at the peer's head. The attached :class:`Remote` is registered
    under ``name`` (reachable as ``repo.remote(name)``) so the usual
    push/pull cycle continues from the clone.
    """
    from ..core.repository import MLCask

    remote_probe = Remote(repo=None, transport=transport, name=name)
    manifest = remote_probe.manifest()
    kwargs = {"metric": manifest["metric"], "seed": manifest["seed"]}
    if author is not None:
        kwargs["author"] = author
    repo = MLCask(**kwargs)
    if registry is not None:
        repo.registry = registry
    remote = repo.add_remote(name, transport, max_pack_bytes=max_pack_bytes)
    remote.fetch()
    for pipeline, branches in manifest["refs"].items():
        for branch, head in branches.items():
            repo.branches.set_head(pipeline, branch, head)
    return repo
