"""Transports: how encoded messages reach a repository server.

A transport moves opaque request bytes to a server and response bytes
back — it knows nothing about operations or packs, which keeps the byte
counters honest: ``bytes_sent``/``bytes_received`` measure exactly what
would cross a real network, framing included. The remote-sync benchmark
reads these counters to compare incremental push against naive full copy.

* :class:`LocalTransport` — calls a :class:`RepositoryServer` in-process.
  Zero infrastructure; the default for tests, examples, and directory
  remotes (``repro push /path/to/repo``).
* :class:`HttpTransport` — POSTs messages to a running ``repro serve``
  endpoint over a real socket, via the stdlib ``http.client``. The
  connection is *persistent* (HTTP/1.1 keep-alive): one TCP handshake
  amortizes over a whole sync conversation, and a pooled socket that has
  gone stale (the server idle-closed it between requests) is re-opened
  transparently, replaying the request that found it dead.
"""

from __future__ import annotations

import http.client
import socket
import threading
import urllib.parse
from abc import ABC, abstractmethod

from ..errors import TransportError
from ..obs import events as obs_events
from ..obs import metrics as obs_metrics

RPC_PATH = "/rpc"


class Transport(ABC):
    """Byte-level request/response channel with transfer accounting."""

    def __init__(self) -> None:
        self.bytes_sent = 0
        self.bytes_received = 0
        self.requests = 0

    def call(self, payload: bytes) -> bytes:
        """Deliver one request; return the server's response bytes."""
        self.requests += 1
        self.bytes_sent += len(payload)
        response = self._call(payload)
        self.bytes_received += len(response)
        return response

    @abstractmethod
    def _call(self, payload: bytes) -> bytes: ...

    @property
    def bytes_transferred(self) -> int:
        """Total traffic in both directions."""
        return self.bytes_sent + self.bytes_received

    def reset_counters(self) -> None:
        self.bytes_sent = 0
        self.bytes_received = 0
        self.requests = 0

    def close(self) -> None:
        """Release any held connection; safe to call repeatedly."""


class LocalTransport(Transport):
    """In-process transport wrapping a :class:`RepositoryServer`."""

    def __init__(self, server):
        super().__init__()
        self.server = server

    def _call(self, payload: bytes) -> bytes:
        return self.server.handle_bytes(payload)


def _error_detail(body: bytes) -> str:
    """Best-effort extraction of a server error body for a 5xx message."""
    from .protocol import decode_message

    try:
        meta, _ = decode_message(body)
        error = meta.get("error") or {}
        return f": {error.get('type')}: {error.get('message')}"
    except Exception:  # noqa: BLE001 - the body is untrusted bytes
        if body:
            return f": {body[:200]!r}"
        return ""


class HttpTransport(Transport):
    """Real-socket transport speaking to a ``serve()`` endpoint.

    One :class:`http.client.HTTPConnection` persists across calls.
    ``reconnects`` counts how many times a stale keep-alive socket had to
    be re-established — a server restart shows up here, not as a failure.
    """

    def __init__(
        self, url: str, timeout: float = 30.0, token: str | None = None
    ):
        super().__init__()
        parsed = urllib.parse.urlparse(url)
        if parsed.scheme not in ("http", "https"):
            raise TransportError(f"unsupported URL scheme {parsed.scheme!r}")
        if not parsed.hostname:
            raise TransportError(f"no host in remote URL {url!r}")
        self.scheme = parsed.scheme
        self.host = parsed.hostname
        self.port = parsed.port or (443 if parsed.scheme == "https" else 80)
        # Accept both the base URL and the full endpoint serve() prints
        # ("http://host:port/rpc") — either way we POST to exactly /rpc.
        path = parsed.path.rstrip("/")
        if path.endswith(RPC_PATH):
            path = path[: -len(RPC_PATH)]
        self.path = path + RPC_PATH
        self.timeout = timeout
        # Bearer token for multi-tenant hubs; plain servers ignore it.
        self._headers = {"Content-Type": "application/octet-stream"}
        if token is not None:
            self._headers["Authorization"] = f"Bearer {token}"
        self.reconnects = 0
        # Null unless a registry was installed process-wide: a CLI client
        # pays nothing, a hub scrape sees flapping backends per host.
        self._m_reconnects = obs_metrics.default_registry().counter(
            "repro_transport_reconnects_total",
            "Stale keep-alive sockets re-established (request replayed).",
            labels=("host",),
        ).labels(host=f"{self.host}:{self.port}")
        self._connection: http.client.HTTPConnection | None = None
        # One request in flight per connection: callers sharing a Remote
        # across threads (fine before connections persisted) must not
        # interleave request/getresponse on the pooled socket.
        self._lock = threading.Lock()

    def _open(self) -> http.client.HTTPConnection:
        connection_cls = (
            http.client.HTTPSConnection
            if self.scheme == "https"
            else http.client.HTTPConnection
        )
        connection = connection_cls(self.host, self.port, timeout=self.timeout)
        connection.connect()
        # Request headers and body are written separately; without
        # TCP_NODELAY the body write can stall ~40ms behind the server's
        # delayed ACK (Nagle). An RPC round-trip wants both segments now.
        connection.sock.setsockopt(
            socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
        )
        return connection

    def close(self) -> None:
        # Serialized with _call: closing mid-request would yank the socket
        # out from under another thread's in-flight sync.
        with self._lock:
            self._close_locked()

    def _close_locked(self) -> None:
        if self._connection is not None:
            try:
                self._connection.close()
            except OSError:
                pass
            self._connection = None

    def _early_response(self, error: Exception) -> tuple[int, bytes] | None:
        """A non-200 response the server sent before our body finished.

        Only consulted on a send-phase pipe error: if the server rejected
        the request early (413 and closed), its response line is already
        on the socket and is the real diagnosis.
        """
        if not isinstance(error, (BrokenPipeError, ConnectionResetError)):
            return None
        connection = self._connection
        if connection is None:
            return None
        try:
            response = connection.getresponse()
            body = response.read()
        except Exception:  # noqa: BLE001 - nothing arrived; not an early reply
            return None
        if response.status == 200:
            return None  # a full success cannot follow a failed send
        return response.status, body

    def _note_reconnect(self, payload: bytes, phase: str) -> None:
        """Account one stale-socket replay (both reconnect sites).

        The replay re-transmits the payload, so the wire counters are
        bumped to stay honest about what actually crossed; the warning
        event gives operators a structured line per flap.
        """
        self.reconnects += 1
        self.requests += 1
        self.bytes_sent += len(payload)
        self._m_reconnects.inc()
        obs_events.emit(
            "transport.reconnect",
            host=self.host,
            port=self.port,
            phase=phase,
            reconnects=self.reconnects,
        )

    def _call(self, payload: bytes) -> bytes:
        with self._lock:
            return self._call_locked(payload)

    def _call_locked(self, payload: bytes) -> bytes:
        reused = self._connection is not None
        while True:
            try:
                if self._connection is None:
                    self._connection = self._open()
                connection = self._connection
                connection.request(
                    "POST", self.path, body=payload, headers=self._headers
                )
            except (OSError, http.client.HTTPException) as error:
                # The server may have answered-and-closed without reading
                # the whole body (HTTP 413 on an oversized request): that
                # early response is the real diagnosis — surface it
                # instead of the broken pipe, and never replay the send.
                early = self._early_response(error)
                if early is not None:
                    status, body = early
                    self._close_locked()
                    raise TransportError(
                        f"server returned HTTP {status} for "
                        f"{self.path}{_error_detail(body)}"
                    ) from error
                # Send-phase failure: the request never fully reached the
                # server, so replaying it on a fresh socket is always safe
                # — but only a *reused* socket gets the benefit of the
                # doubt (a fresh one failing means the endpoint is down).
                self._close_locked()
                if reused:
                    reused = False
                    self._note_reconnect(payload, phase="send")
                    continue
                raise TransportError(
                    f"request to {self.host}:{self.port} failed: {error}"
                ) from error
            try:
                response = connection.getresponse()
                body = response.read()
            except (OSError, http.client.HTTPException) as error:
                self._close_locked()
                if reused and isinstance(error, http.client.RemoteDisconnected):
                    # The stale keep-alive race: the server idle-closed the
                    # pooled socket and never issued a response line, so
                    # the request was not processed — replay once. Any
                    # other receive failure (reset mid-body, truncated
                    # read) may follow a request the server *did* execute;
                    # surface it instead of risking a double apply.
                    reused = False
                    self._note_reconnect(payload, phase="receive")
                    continue
                raise TransportError(
                    f"request to {self.host}:{self.port} failed: {error}"
                ) from error
            if response.will_close:
                # The server asked for this connection not to be reused.
                self._close_locked()
            if response.status != 200:
                self._close_locked()
                raise TransportError(
                    f"server returned HTTP {response.status} for "
                    f"{self.path}{_error_detail(body)}"
                )
            return body
