"""Transports: how encoded messages reach a repository server.

A transport moves opaque request bytes to a server and response bytes
back — it knows nothing about operations or packs, which keeps the byte
counters honest: ``bytes_sent``/``bytes_received`` measure exactly what
would cross a real network, framing included. The remote-sync benchmark
reads these counters to compare incremental push against naive full copy.

* :class:`LocalTransport` — calls a :class:`RepositoryServer` in-process.
  Zero infrastructure; the default for tests, examples, and directory
  remotes (``repro push /path/to/repo``).
* :class:`HttpTransport` — POSTs messages to a running ``repro serve``
  endpoint over a real socket, via the stdlib ``http.client``.
"""

from __future__ import annotations

import http.client
import urllib.parse
from abc import ABC, abstractmethod

from ..errors import TransportError

RPC_PATH = "/rpc"


class Transport(ABC):
    """Byte-level request/response channel with transfer accounting."""

    def __init__(self) -> None:
        self.bytes_sent = 0
        self.bytes_received = 0
        self.requests = 0

    def call(self, payload: bytes) -> bytes:
        """Deliver one request; return the server's response bytes."""
        self.requests += 1
        self.bytes_sent += len(payload)
        response = self._call(payload)
        self.bytes_received += len(response)
        return response

    @abstractmethod
    def _call(self, payload: bytes) -> bytes: ...

    @property
    def bytes_transferred(self) -> int:
        """Total traffic in both directions."""
        return self.bytes_sent + self.bytes_received

    def reset_counters(self) -> None:
        self.bytes_sent = 0
        self.bytes_received = 0
        self.requests = 0


class LocalTransport(Transport):
    """In-process transport wrapping a :class:`RepositoryServer`."""

    def __init__(self, server):
        super().__init__()
        self.server = server

    def _call(self, payload: bytes) -> bytes:
        return self.server.handle_bytes(payload)


class HttpTransport(Transport):
    """Real-socket transport speaking to a ``serve()`` endpoint."""

    def __init__(self, url: str, timeout: float = 30.0):
        super().__init__()
        parsed = urllib.parse.urlparse(url)
        if parsed.scheme not in ("http", "https"):
            raise TransportError(f"unsupported URL scheme {parsed.scheme!r}")
        if not parsed.hostname:
            raise TransportError(f"no host in remote URL {url!r}")
        self.scheme = parsed.scheme
        self.host = parsed.hostname
        self.port = parsed.port or (443 if parsed.scheme == "https" else 80)
        # Accept both the base URL and the full endpoint serve() prints
        # ("http://host:port/rpc") — either way we POST to exactly /rpc.
        path = parsed.path.rstrip("/")
        if path.endswith(RPC_PATH):
            path = path[: -len(RPC_PATH)]
        self.path = path + RPC_PATH
        self.timeout = timeout

    def _call(self, payload: bytes) -> bytes:
        connection_cls = (
            http.client.HTTPSConnection
            if self.scheme == "https"
            else http.client.HTTPConnection
        )
        connection = connection_cls(self.host, self.port, timeout=self.timeout)
        try:
            connection.request(
                "POST",
                self.path,
                body=payload,
                headers={"Content-Type": "application/octet-stream"},
            )
            response = connection.getresponse()
            body = response.read()
            if response.status != 200:
                raise TransportError(
                    f"server returned HTTP {response.status} for {self.path}"
                )
            return body
        except (OSError, http.client.HTTPException) as error:
            raise TransportError(
                f"request to {self.host}:{self.port} failed: {error}"
            ) from error
        finally:
            connection.close()
