"""Remote repository sync: serve/clone/push/pull with dedup-aware transfer.

This subsystem turns single-process MLCask repositories into the
multi-user collaborative system the paper describes: repositories
exchange commit graphs, branch refs, and content-addressed chunks over a
:class:`Transport`, negotiating at the chunk level so only content the
peer lacks ever crosses the wire (the DataHub-style dedup-at-scale idea
applied to pipeline version control).

Layering::

    protocol.py    framed JSON + raw-chunk wire format
    transport.py   Transport ABC, LocalTransport (in-process), HttpTransport
    pack.py        pack assembly/import over storage + core primitives
    server.py      RepositoryServer (op handlers) + stdlib HTTP serve()
    client.py      Remote: clone / fetch / push / pull

Quickstart::

    from repro.remote import LocalTransport, RepositoryServer, clone_repository

    server = RepositoryServer(shared_repo)
    mine = clone_repository(LocalTransport(server), registry=shared_repo.registry)
    mine.commit(...)                       # work locally
    mine.remote("origin").push(name)       # publish (fast-forward only)
    mine.remote("origin").pull(name)       # diverged? metric-driven merge
"""

from .client import FetchResult, PullResult, PushResult, Remote, clone_repository
from .pack import DEFAULT_MAX_PACK_BYTES
from .protocol import decode_message, encode_message
from .server import RepositoryServer, ResponseCache, RWLock, SyncHTTPServer, serve
from .transport import HttpTransport, LocalTransport, Transport

__all__ = [
    "DEFAULT_MAX_PACK_BYTES",
    "FetchResult",
    "HttpTransport",
    "LocalTransport",
    "PullResult",
    "PushResult",
    "Remote",
    "RepositoryServer",
    "ResponseCache",
    "RWLock",
    "SyncHTTPServer",
    "Transport",
    "clone_repository",
    "decode_message",
    "encode_message",
    "serve",
]
