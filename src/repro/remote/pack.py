"""Pack assembly and import: what actually crosses the wire.

A *pack* is the unit of synchronization, in the spirit of git's packfiles
specialized to MLCask's object model. It carries, for a chosen set of
commits:

* the commit dicts themselves (metadata only — identifiers, lineage,
  metrics, content references);
* the pipeline specs those commits belong to;
* the *recipes* of every stage output the commits reference (blob digest
  -> ordered chunk digests);
* the checkpoint-index records for those outputs, so the receiver can
  *reuse* replicated outputs in its own runs and merges, not merely read
  them;
* the chunk digests the receiver still needs — negotiated beforehand via
  :meth:`ChunkStore.missing` so duplicate content never crosses the wire.

Import is the mirror image, with two invariants:

* **Sequence reassignment.** ``sequence`` is a repository-local logical
  clock (it drives common-ancestor selection and history ordering).
  Imported commits get *fresh* local sequence numbers, assigned in the
  sender's creation order — parents always precede children on both
  sides, so ancestry keeps its "ancestors sort earlier" property without
  trusting another repository's clock.
* **Integrity on receive.** Every chunk is re-hashed against its claimed
  digest before it is written (:class:`ChunkIntegrityError` otherwise).
"""

from __future__ import annotations

from dataclasses import replace

from collections.abc import Callable, Iterable, Iterator

from ..errors import RemoteError
from ..core.persistence import (
    commit_from_dict,
    commit_to_dict,
    record_from_dict,
    record_to_dict,
    recipe_from_dict,
    recipe_to_dict,
    spec_from_dict,
    spec_to_dict,
)
from ..provenance.ledger import lineage_record_to_dict


#: Upper bound on the chunk payload of a single wire message. Both sides
#: of the protocol honour it: the server windows ``get_chunks`` responses
#: to this many bytes (the client re-requests the remainder), and the
#: client splits an oversized push into ``put_chunks`` batches before the
#: final ref update. Bounds peak memory per request instead of letting a
#: large repository materialize its whole content set in one message.
DEFAULT_MAX_PACK_BYTES = 4 * 1024 * 1024


def iter_chunk_batches(
    fetch_chunk: Callable[[str], bytes],
    digests: Iterable[str],
    max_bytes: int,
) -> Iterator[tuple[list[str], list[bytes], bool]]:
    """Yield ``(digests, blobs, has_more)`` batches of ≤ ``max_bytes`` payload.

    Chunks are fetched lazily: peak memory is one batch plus the single
    overflow chunk that triggered the yield — consumers can act on
    ``has_more`` (True on every yield except the last) without pulling the
    next batch into memory. A chunk larger than the budget still ships
    (as a batch of one) — the window bounds batch size, it never makes
    content unsendable.
    """
    batch_digests: list[str] = []
    batch_blobs: list[bytes] = []
    batch_size = 0
    for digest in digests:
        blob = fetch_chunk(digest)
        if batch_digests and batch_size + len(blob) > max_bytes:
            yield batch_digests, batch_blobs, True
            batch_digests, batch_blobs, batch_size = [], [], 0
        batch_digests.append(digest)
        batch_blobs.append(blob)
        batch_size += len(blob)
    if batch_digests:
        yield batch_digests, batch_blobs, False


# -------------------------------------------------------------- assembly
def commits_to_send(repo, head_id: str, exclude_ids) -> list:
    """Commits reachable from ``head_id`` the receiver does not have,
    oldest first (sender creation order, so parents precede children)."""
    exclude = set(exclude_ids)
    reachable = repo.graph.ancestors(head_id)
    return sorted(
        (repo.graph.get(c) for c in reachable if c not in exclude),
        key=lambda c: c.sequence,
    )


def content_of_commits(repo, commits) -> tuple[list, list, set[str]]:
    """(recipes, checkpoint records, chunk digests) behind ``commits``.

    Only stage outputs whose recipe the sender actually holds contribute —
    a metadata-only repository (loaded from a bare state file) can still
    sync its history; the content simply is not there to ship.
    """
    blobs: set[str] = set()
    for commit in commits:
        blobs.update(commit.stage_outputs.values())
    recipes = [
        repo.objects.recipe(blob) for blob in sorted(blobs)
        if repo.objects.contains(blob)
    ]
    held = {recipe.blob_digest for recipe in recipes}
    records = [
        record
        for record in repo.checkpoints.records()
        if record.output_ref in held
    ]
    chunk_digests = repo.objects.reachable_chunks(held)
    return recipes, records, chunk_digests


def lineage_entries_for(repo, commits) -> list[dict]:
    """Ledger records back-filled with the given commits, dict-codec form.

    This is the schema-additive ``lineage`` pack key: provenance rides
    the same have/want sync as everything else, scoped to the commits
    crossing the wire (records of uncommitted runs — losing merge
    candidates, warm re-runs — stay local). Old peers simply never read
    the key.
    """
    ledger = getattr(repo, "lineage", None)
    if ledger is None:
        return []
    records = ledger.records_for_commits(c.commit_id for c in commits)
    return [lineage_record_to_dict(r) for r in records]


def pack_meta(repo, commits, recipes, records, chunk_digests) -> dict:
    """The JSON half of a pack (chunks travel as framed binary blobs)."""
    pipelines = sorted({c.pipeline for c in commits})
    return {
        "commits": [commit_to_dict(c) for c in commits],
        "specs": {
            name: spec_to_dict(repo.spec(name))
            for name in pipelines
            if name in repo._specs
        },
        "recipes": [recipe_to_dict(r) for r in recipes],
        "records": [record_to_dict(r) for r in records],
        "chunk_digests": list(chunk_digests),
        "lineage": lineage_entries_for(repo, commits),
    }


# ---------------------------------------------------------------- import
def import_specs(repo, specs: dict) -> None:
    """Adopt pipeline specs; a conflicting redefinition is an error."""
    for name, entry in specs.items():
        spec = spec_from_dict(name, entry)
        existing = repo._specs.get(name)
        if existing is None:
            repo._specs[name] = spec
        elif existing.stages != spec.stages or existing.edges != spec.edges:
            raise RemoteError(
                f"pipeline {name!r} exists locally with a different spec"
            )


def import_commits(repo, commit_entries) -> list:
    """Graft new commits into the local graph; returns the commits added.

    Entries are applied in sender-sequence order and re-stamped with local
    sequence numbers; commits already present (content-derived ids match)
    are skipped, which also makes import idempotent.
    """
    added = []
    for entry in sorted(commit_entries, key=lambda e: e["sequence"]):
        if entry["commit_id"] in repo.graph:
            continue
        commit = replace(commit_from_dict(entry), sequence=repo._next_sequence())
        repo.graph.add(commit)
        repo.branches.note_commit(commit.pipeline, commit.branch)
        added.append(commit)
    return added


def import_content(
    repo,
    recipe_entries,
    record_entries,
    chunk_digests,
    chunk_blobs,
    lineage_entries=(),
) -> int:
    """Adopt recipes, checkpoint records, lineage, and verified chunks.

    ``chunk_digests``/``chunk_blobs`` are parallel; each blob is re-hashed
    against its claimed digest on receipt. Chunks land *first*: if one
    fails its integrity check, the import aborts before any recipe is
    registered, so the store never ends up holding recipes that point at
    content it was never given. Lineage import is idempotent (the ledger
    dedups on record identity), so a record pushed and pulled back never
    doubles. Returns how many chunks were actually new to the local store.
    """
    if len(chunk_digests) != len(chunk_blobs):
        raise RemoteError(
            f"chunk manifest mismatch: {len(chunk_digests)} digests, "
            f"{len(chunk_blobs)} blobs"
        )
    new = 0
    for digest, blob in zip(chunk_digests, chunk_blobs):
        if repo.objects.import_chunk(digest, blob):
            new += 1
    for entry in recipe_entries:
        repo.objects.add_recipe(recipe_from_dict(entry))
    for entry in record_entries:
        repo.checkpoints.import_record(record_from_dict(entry))
    if lineage_entries:
        ledger = getattr(repo, "lineage", None)
        if ledger is not None:
            ledger.import_entries(lineage_entries)
    return new


def is_fast_forward_update(repo, old_head: str | None, new_head: str) -> bool:
    """Would moving a ref ``old_head -> new_head`` be a fast-forward?

    Called *after* the incoming commits are grafted, so reachability is
    answered by the local graph. A new branch (``old_head is None``) and a
    no-op update are both fast-forwards.
    """
    if old_head is None or old_head == new_head:
        return True
    if new_head not in repo.graph:
        return False
    return repo.graph.is_ancestor(old_head, new_head)
