"""Repository server: answers sync requests against a live ``MLCask``.

The server side of the wire protocol. One :class:`RepositoryServer` wraps
one repository and handles the five operations — ``manifest``,
``known_commits``, ``missing_chunks``, ``get_chunks``, ``fetch``, and
``push`` — entirely in terms of pack assembly/import from
:mod:`repro.remote.pack`. It is transport-agnostic: :class:`LocalTransport`
calls :meth:`handle_bytes` directly, and :func:`serve` exposes the same
entry point over a real socket with the stdlib HTTP server (no external
dependencies, matching the repository's no-new-deps constraint).

Push semantics follow git: received commits and chunks are grafted first
(content-addressed, so duplicates are no-ops and orphans are harmless —
they become reachable once the client's eventual merge lands), but a ref
only moves if the update is a *fast-forward* from the server's current
head. Anything else is answered with a typed rejection the client
resolves via pull + metric-driven merge.
"""

from __future__ import annotations

import http.server
import threading

from ..errors import MLCaskError, PushRejectedError, RemoteProtocolError
from . import pack
from .protocol import (
    OPS,
    decode_message,
    encode_message,
    error_response,
)
from .transport import RPC_PATH


class RepositoryServer:
    """Protocol endpoint over one repository.

    ``on_change`` (optional) is invoked with the repository after every
    state-mutating request — directory-backed remotes pass a save
    callback so pushes persist; in-memory servers pass nothing.
    """

    def __init__(self, repo, on_change=None):
        self.repo = repo
        self.on_change = on_change
        self._lock = threading.Lock()

    # ------------------------------------------------------------ dispatch
    def handle_bytes(self, payload: bytes) -> bytes:
        """Decode one request, run it, encode the response.

        Library errors travel back as typed error messages instead of
        crashing the server; the client re-raises them locally.
        """
        try:
            meta, blobs = decode_message(payload)
            op = meta.get("op")
            if op not in OPS:
                raise RemoteProtocolError(f"unknown operation {op!r}")
            with self._lock:
                handler = getattr(self, f"_op_{op}")
                return handler(meta, blobs)
        except MLCaskError as error:
            return error_response(error)

    # ---------------------------------------------------------- operations
    def _public_branches(self, pipeline: str) -> list[str]:
        """Branches this repository advertises: its own, not the tracking
        refs (``origin/master``) it keeps for *its* remotes — re-exporting
        those would nest another ``origin/`` per clone hop."""
        return [
            branch
            for branch in self.repo.branches.branches(pipeline)
            if "/" not in branch
        ]

    def _op_manifest(self, meta: dict, blobs) -> bytes:
        """Refs plus repository configuration (for clone bootstrap)."""
        repo = self.repo
        refs = {
            pipeline: {
                branch: repo.branches.head(pipeline, branch)
                for branch in self._public_branches(pipeline)
            }
            for pipeline in repo.branches.pipelines()
        }
        return encode_message(
            {"refs": refs, "metric": repo.metric, "seed": repo.seed}
        )

    def _op_known_commits(self, meta: dict, blobs) -> bytes:
        """Which of the offered commit ids the server already holds."""
        known = [c for c in meta.get("ids", []) if c in self.repo.graph]
        return encode_message({"known": known})

    def _op_missing_chunks(self, meta: dict, blobs) -> bytes:
        """The have/want negotiation: digests the server lacks."""
        missing = self.repo.objects.chunks.missing(meta.get("digests", []))
        return encode_message({"missing": missing})

    def _op_get_chunks(self, meta: dict, blobs) -> bytes:
        """Ship requested chunks as raw framed blobs."""
        digests = meta.get("digests", [])
        payloads = [self.repo.objects.chunks.get(d) for d in digests]
        return encode_message({"digests": digests}, payloads)

    def _op_fetch(self, meta: dict, blobs) -> bytes:
        """Commit-graph sync: everything reachable from the wanted refs
        that the client does not claim to have. Content (chunks) is
        negotiated separately so unchanged outputs never re-transfer."""
        repo = self.repo
        want = meta.get("want")  # {pipeline: [branch, ...]} or None = all
        have = set(meta.get("have_commits", []))

        refs: dict[str, dict[str, str]] = {}
        pipelines = (
            sorted(want) if want is not None else repo.branches.pipelines()
        )
        commits: dict[str, object] = {}
        for pipeline in pipelines:
            branches = (
                want[pipeline]
                if want is not None and want[pipeline]
                else self._public_branches(pipeline)
            )
            for branch in branches:
                head = repo.branches.head(pipeline, branch)
                refs.setdefault(pipeline, {})[branch] = head
                for commit in pack.commits_to_send(repo, head, have):
                    commits[commit.commit_id] = commit
        ordered = sorted(commits.values(), key=lambda c: c.sequence)
        recipes, records, chunk_digests = pack.content_of_commits(repo, ordered)
        meta_out = pack.pack_meta(repo, ordered, recipes, records, chunk_digests)
        meta_out["refs"] = refs
        return encode_message(meta_out)

    def _op_push(self, meta: dict, blobs) -> bytes:
        """Graft a pack, then fast-forward the offered ref updates.

        Ref updates carry the head the client *observed* (``old``): a
        mismatch with the server's current head means the branch moved
        since the client negotiated — rejected the same way a
        non-fast-forward is, so no update is ever lost silently.
        """
        repo = self.repo
        pack.import_specs(repo, meta.get("specs", {}))
        pack.import_commits(repo, meta.get("commits", []))
        new_chunks = pack.import_content(
            repo,
            meta.get("recipes", []),
            meta.get("records", []),
            meta.get("chunk_digests", []),
            blobs,
        )

        updates = meta.get("refs", {})
        # Validate every update before applying any: a push is atomic.
        for pipeline, branches in updates.items():
            for branch, update in branches.items():
                observed = update.get("old")
                new_head = update["new"]
                current = (
                    repo.branches.head(pipeline, branch)
                    if repo.branches.has_branch(pipeline, branch)
                    else None
                )
                if current != observed:
                    raise PushRejectedError(
                        pipeline, branch,
                        "remote branch moved since refs were negotiated "
                        "(stale old head); fetch and retry",
                    )
                if new_head not in repo.graph:
                    raise PushRejectedError(
                        pipeline, branch,
                        f"new head {new_head[:12]} not present after import",
                    )
                if not pack.is_fast_forward_update(repo, current, new_head):
                    raise PushRejectedError(
                        pipeline, branch,
                        "non-fast-forward (branches diverged); pull, resolve "
                        "with the metric-driven merge, then push the result",
                    )
        applied = {}
        for pipeline, branches in updates.items():
            for branch, update in branches.items():
                repo.branches.set_head(pipeline, branch, update["new"])
                applied.setdefault(pipeline, {})[branch] = update["new"]
        if self.on_change is not None:
            self.on_change(repo)
        return encode_message({"ok": True, "updated": applied, "new_chunks": new_chunks})


# ------------------------------------------------------------- HTTP serve
class _Handler(http.server.BaseHTTPRequestHandler):
    """Minimal single-endpoint RPC handler over the stdlib HTTP server."""

    server_version = "mlcask-repro/1"
    protocol_version = "HTTP/1.1"

    def do_POST(self):  # noqa: N802 - http.server naming convention
        if self.path.rstrip("/") != RPC_PATH:
            self.send_error(404, "unknown endpoint")
            return
        length = int(self.headers.get("Content-Length", 0))
        payload = self.rfile.read(length)
        response = self.server.repository_server.handle_bytes(payload)
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(response)))
        self.end_headers()
        self.wfile.write(response)

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)


class SyncHTTPServer(http.server.ThreadingHTTPServer):
    """HTTP server bound to one :class:`RepositoryServer`."""

    daemon_threads = True

    def __init__(self, address, repository_server, verbose=False):
        super().__init__(address, _Handler)
        self.repository_server = repository_server
        self.verbose = verbose

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def serve(
    repo,
    host: str = "127.0.0.1",
    port: int = 0,
    on_change=None,
    verbose: bool = False,
) -> SyncHTTPServer:
    """Expose ``repo`` at ``http://host:port/rpc``; returns the server.

    The caller drives the loop (``serve_forever()`` for a daemon,
    ``handle_request()`` N times for bounded serving in tests); ``port=0``
    binds an ephemeral port, readable from ``server.url``.
    """
    return SyncHTTPServer(
        (host, port), RepositoryServer(repo, on_change=on_change), verbose=verbose
    )
