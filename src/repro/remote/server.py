"""Repository server: answers sync requests against a live ``MLCask``.

The server side of the wire protocol. One :class:`RepositoryServer` wraps
one repository and handles the eleven operations — ``manifest``,
``known_commits``, ``missing_chunks``, ``get_chunks``, ``put_chunks``,
``fetch``, ``push``, ``stats`` (telemetry readout), ``lineage``
(provenance queries), ``trace`` (distributed-trace and slow-op
readout), and ``health`` (sliding-window health report) — entirely in
terms of pack assembly/import from
:mod:`repro.remote.pack`. It is transport-agnostic: :class:`LocalTransport`
calls :meth:`handle_bytes` directly, and :func:`serve` exposes the same
entry point over a real socket with the stdlib HTTP server (no external
dependencies, matching the repository's no-new-deps constraint).

Telemetry: every request is counted, timed, and sized into the server's
:class:`~repro.obs.metrics.MetricsRegistry` (per-op latency/byte
histograms, cache hit/miss counters, reader/writer lock wait time) and
wrapped in a :class:`~repro.obs.trace.Tracer` span so a hub-admitted
push yields one correlated trace down to its chunk imports. A request
carrying a propagated ``trace_ctx`` (see :mod:`repro.obs.propagation`)
has its server spans *adopted* into the client's trace — correlation
only, never an input to any admission decision — and operations that
outlive their latency budget are snapshotted by the (optional)
:class:`~repro.obs.slowops.SlowOpCapture`. Both
default to the process-wide null singletons — an unobserved server pays
only empty method calls — while :func:`serve` installs real ones so the
HTTP endpoint can answer ``GET /metrics`` in Prometheus text format.

Concurrency model: read operations run in parallel under the shared side
of a reader-writer lock; only the mutating operations (``push``,
``put_chunks``) take the exclusive side. Read responses are additionally
served from a bounded cache keyed by the request bytes — every response
is a deterministic function of (request, repository state), so the cache
is exact and is invalidated wholesale whenever state mutates.

Push semantics follow git: received commits and chunks are grafted first
(content-addressed, so duplicates are no-ops and orphans are harmless —
they become reachable once the client's eventual merge lands), but a ref
only moves if the update is a *fast-forward* from the server's current
head. Anything else is answered with a typed rejection the client
resolves via pull + metric-driven merge.

Robustness: :meth:`RepositoryServer.handle_bytes` never lets an exception
escape — malformed requests are schema-validated up front and answered
with typed :class:`RemoteProtocolError` responses, and anything
unexpected is wrapped the same way, so one bad client cannot take a
handler thread (or the keep-alive connection behind it) down.
"""

from __future__ import annotations

import contextlib
import hashlib
import http.server
import json
import threading
import time
from collections import OrderedDict

from ..errors import MLCaskError, PushRejectedError, RemoteProtocolError
from ..obs import metrics as obs_metrics
from ..obs import propagation
from ..obs import trace as obs_trace
from ..obs.health import HealthMonitor
from ..obs.metrics import NULL_METRIC, MetricsRegistry
from ..obs.slo import SLOConfig
from ..obs.slowops import SlowOpCapture
from ..obs.trace import Tracer
from . import pack
from .protocol import (
    OPS,
    WRITE_OPS,
    decode_message,
    encode_message,
    error_response,
)
from .transport import RPC_PATH

#: GET routes both HTTP endpoints answer: the Prometheus text scrape,
#: plus two JSON debug readouts (the sampling profiler's folded stacks
#: and the slow-op capture ring). The hub additionally gates the debug
#: pair behind its token authentication — performance forensics expose
#: code paths and tenant names, which anonymous scrapes must not see.
METRICS_PATH = "/metrics"
DEBUG_PROFILE_PATH = "/debug/profile"
DEBUG_SLOW_PATH = "/debug/slow"

#: Kubernetes-style probe routes, unauthenticated on both endpoints:
#: ``/healthz`` answers liveness (reaching the handler *is* the signal),
#: ``/readyz`` answers 200/503 from the health model's readiness
#: decision. Deliberately boolean-plus-reasons only — the *detailed*
#: health report travels over the authenticated ``health`` RPC, because
#: it names tenants and ops.
HEALTHZ_PATH = "/healthz"
READYZ_PATH = "/readyz"

#: Read operations whose responses are worth caching: pure metadata, so
#: entries stay small. ``get_chunks`` is deliberately excluded — content
#: reads are already O(1) store lookups and their responses are up to a
#: full pack window each, the wrong trade for a metadata cache.
#: ``lineage`` qualifies: closures over an append-only ledger are a pure
#: function of repository state, and the state token carries the ledger
#: revision, so cached answers expire the moment a new record lands.
CACHEABLE_OPS = frozenset(
    {"manifest", "known_commits", "missing_chunks", "fetch", "lineage"}
)

#: The query forms one ``lineage`` request can carry, mapped to the
#: provenance-query entry points they dispatch to.
LINEAGE_QUERIES = ("lineage", "consumers", "impact", "trace")


class RWLock:
    """A reader-writer lock: many readers or one writer, writer preference.

    Readers queue behind a *waiting* writer (not only an active one) so a
    steady stream of reads cannot starve pushes indefinitely.

    The method names ``read_locked`` / ``write_locked`` are a contract
    with the static analyzer (``repro.analysis.conventions``): the lock
    lint recognizes the shared/exclusive sides by these exact names, so
    renaming them silently blinds ``repro lint``. Per-repo write
    exclusion is also the designed persistence point, which is why
    LK002 (blocking call under a lock) exempts both sides.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextlib.contextmanager
    def read_locked(self):
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._active_readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._active_readers -= 1
                if self._active_readers == 0:
                    self._cond.notify_all()

    @contextlib.contextmanager
    def write_locked(self):
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    self._cond.wait()
                self._writer_active = True
            finally:
                self._writers_waiting -= 1
        try:
            yield
        finally:
            with self._cond:
                self._writer_active = False
                self._cond.notify_all()


class ResponseCache:
    """Bounded LRU of encoded responses, keyed by request-payload digest.

    Every entry carries the repository *state token* (the tuple of store
    revision counters) it was computed under; a hit requires the token to
    still match, so entries go stale the moment anything mutates the
    repository — through a push or out-of-band (a live repo served while
    its owner keeps committing). The token is captured under the read
    lock, where writers are excluded, so an entry can never claim a newer
    state than its response reflects.
    """

    #: Total cached-response bytes across all entries. Entry *count* alone
    #: is no bound: fetch responses scale with history depth, and distinct
    #: have_commits sets hash to distinct keys — 128 slots of multi-MB
    #: packs would pin real memory.
    DEFAULT_MAX_TOTAL_BYTES = 64 * 1024 * 1024

    def __init__(
        self,
        max_entries: int = 128,
        max_total_bytes: int = DEFAULT_MAX_TOTAL_BYTES,
    ):
        self.max_entries = max(0, max_entries)
        self.max_total_bytes = max(0, max_total_bytes)
        self._lock = threading.Lock()
        self._entries: OrderedDict[bytes, tuple[tuple, bytes]] = OrderedDict()
        self._total_bytes = 0
        self.hits = 0
        self.misses = 0
        # Registry mirrors (bound by the owning server); null by default
        # so an unobserved cache costs two empty calls per lookup.
        self._hits_metric = NULL_METRIC
        self._misses_metric = NULL_METRIC

    def bind_metrics(self, hits_metric, misses_metric) -> None:
        """Mirror hit/miss counts into registry counter series."""
        self._hits_metric = hits_metric
        self._misses_metric = misses_metric

    def get(self, key: bytes, token: tuple) -> bytes | None:
        if not self.max_entries:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry[0] != token:
                self.misses += 1
                self._misses_metric.inc()
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            self._hits_metric.inc()
            return entry[1]

    def put(self, key: bytes, token: tuple, value: bytes) -> None:
        if not self.max_entries or len(value) > self.max_total_bytes:
            return
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._total_bytes -= len(old[1])
            self._entries[key] = (token, value)
            self._total_bytes += len(value)
            while (
                len(self._entries) > self.max_entries
                or self._total_bytes > self.max_total_bytes
            ):
                _, (_, evicted) = self._entries.popitem(last=False)
                self._total_bytes -= len(evicted)

    def invalidate(self) -> None:
        with self._lock:
            self._entries.clear()
            self._total_bytes = 0

    def snapshot(self) -> dict:
        """Consistent counter cut (hits/misses/occupancy) for ``stats``."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": (self.hits / total) if total else 0.0,
                "entries": len(self._entries),
                "bytes": self._total_bytes,
            }


# ------------------------------------------------------- request validation
def _fail(op: str, message: str):
    raise RemoteProtocolError(f"invalid {op} request: {message}")


def _is_str_list(value) -> bool:
    return isinstance(value, list) and all(isinstance(v, str) for v in value)


def _is_dict_list(value) -> bool:
    return isinstance(value, list) and all(isinstance(v, dict) for v in value)


def _check_digest_blob_parallel(op: str, meta: dict, blobs: list) -> None:
    digests = meta.get("chunk_digests" if op == "push" else "digests", [])
    if not _is_str_list(digests):
        _fail(op, "chunk digests must be a list of strings")
    if len(digests) != len(blobs):
        _fail(op, f"{len(digests)} chunk digests but {len(blobs)} blobs")


def validate_request(op: str, meta: dict, blobs: list) -> None:
    """Schema-check a request before any handler state is touched.

    Everything a handler would otherwise discover as a ``KeyError`` or
    ``TypeError`` mid-operation is rejected here as a typed
    :class:`RemoteProtocolError` instead.
    """
    if op == "known_commits":
        if not _is_str_list(meta.get("ids", [])):
            _fail(op, "'ids' must be a list of strings")
    elif op == "missing_chunks":
        if not _is_str_list(meta.get("digests", [])):
            _fail(op, "'digests' must be a list of strings")
    elif op == "get_chunks":
        if not _is_str_list(meta.get("digests", [])):
            _fail(op, "'digests' must be a list of strings")
        max_bytes = meta.get("max_bytes")
        if max_bytes is not None and (
            not isinstance(max_bytes, int)
            or isinstance(max_bytes, bool)
            or max_bytes <= 0
        ):
            _fail(op, "'max_bytes' must be a positive integer")
    elif op == "put_chunks":
        _check_digest_blob_parallel(op, meta, blobs)
    elif op == "fetch":
        want = meta.get("want")
        if want is not None:
            if not isinstance(want, dict):
                _fail(op, "'want' must be null or {pipeline: [branch, ...]}")
            for pipeline, branches in want.items():
                if not isinstance(pipeline, str) or not _is_str_list(branches):
                    _fail(op, "'want' must map pipeline names to branch lists")
        if not _is_str_list(meta.get("have_commits", [])):
            _fail(op, "'have_commits' must be a list of strings")
    elif op == "push":
        commits = meta.get("commits", [])
        if not _is_dict_list(commits):
            _fail(op, "'commits' must be a list of commit dicts")
        for entry in commits:
            if not isinstance(entry.get("commit_id"), str):
                _fail(op, "every commit needs a string 'commit_id'")
            if not isinstance(entry.get("sequence"), int):
                _fail(op, "every commit needs an integer 'sequence'")
        if not isinstance(meta.get("specs", {}), dict):
            _fail(op, "'specs' must be a dict")
        recipes = meta.get("recipes", [])
        if not _is_dict_list(recipes):
            _fail(op, "'recipes' must be a list of recipe dicts")
        for entry in recipes:
            if (
                not isinstance(entry.get("blob"), str)
                or not _is_str_list(entry.get("chunks"))
                or not isinstance(entry.get("size"), int)
                or isinstance(entry.get("size"), bool)
            ):
                _fail(
                    op,
                    "every recipe needs a string 'blob', a 'chunks' list of "
                    "strings, and an integer 'size'",
                )
        if not _is_dict_list(meta.get("records", [])):
            _fail(op, "'records' must be a list of record dicts")
        if not _is_dict_list(meta.get("lineage", [])):
            _fail(op, "'lineage' must be a list of lineage-record dicts")
        _check_digest_blob_parallel(op, meta, blobs)
        refs = meta.get("refs", {})
        if not isinstance(refs, dict):
            _fail(op, "'refs' must be {pipeline: {branch: {old, new}}}")
        for pipeline, branches in refs.items():
            if not isinstance(pipeline, str) or not isinstance(branches, dict):
                _fail(op, "'refs' must be {pipeline: {branch: {old, new}}}")
            for branch, update in branches.items():
                if not isinstance(branch, str) or not isinstance(update, dict):
                    _fail(op, "every ref update must be a {old, new} dict")
                if not isinstance(update.get("new"), str) or not update["new"]:
                    _fail(
                        op,
                        f"ref update for {pipeline}:{branch} is missing a "
                        "non-empty 'new' head",
                    )
                old = update.get("old")
                if old is not None and not isinstance(old, str):
                    _fail(
                        op,
                        f"ref update for {pipeline}:{branch} has a non-string "
                        "'old' head",
                    )
    elif op == "lineage":
        query = meta.get("query")
        if query not in LINEAGE_QUERIES:
            _fail(op, f"'query' must be one of {LINEAGE_QUERIES}")
        if query in ("lineage", "consumers") and not isinstance(
            meta.get("ref"), str
        ):
            _fail(op, f"a {query!r} query needs a string 'ref'")
        if query == "impact":
            if not isinstance(meta.get("component"), str):
                _fail(op, "an 'impact' query needs a string 'component'")
            version = meta.get("version")
            if version is not None and not isinstance(version, str):
                _fail(op, "'version' must be null or a string")
        if query == "trace" and not isinstance(meta.get("trace_id"), str):
            _fail(op, "a 'trace' query needs a string 'trace_id'")
    elif op == "trace":
        trace_id = meta.get("trace_id")
        if trace_id is not None and not isinstance(trace_id, str):
            _fail(op, "'trace_id' must be null or a string")
        limit = meta.get("limit")
        if limit is not None and (
            not isinstance(limit, int)
            or isinstance(limit, bool)
            or limit <= 0
        ):
            _fail(op, "'limit' must be a positive integer")
        if not isinstance(meta.get("slow", False), bool):
            _fail(op, "'slow' must be a boolean")


class RepositoryServer:
    """Protocol endpoint over one repository.

    ``on_change`` (optional) is invoked with the repository after every
    ref-moving push — directory-backed remotes pass a save callback so
    pushes persist; in-memory servers pass nothing. ``max_pack_bytes``
    windows ``get_chunks`` responses; ``cache_entries`` bounds the read
    response cache (0 disables it); ``exclusive=True`` serializes *every*
    operation behind the write lock — the pre-reader-writer behaviour,
    kept as the baseline the concurrency benchmark measures against.
    """

    def __init__(
        self,
        repo,
        on_change=None,
        *,
        max_pack_bytes: int = pack.DEFAULT_MAX_PACK_BYTES,
        cache_entries: int = 128,
        exclusive: bool = False,
        registry=None,
        tracer=None,
        metric_labels: dict | None = None,
        slow_ops: SlowOpCapture | None = None,
        health_monitor: HealthMonitor | None = None,
    ):
        self.repo = repo
        self.on_change = on_change
        self.max_pack_bytes = max_pack_bytes
        self.exclusive = exclusive
        # Slow-op forensics: optional and possibly *shared* — a hub hands
        # every hosted repository the same capture ring so one readout
        # covers all tenants. None disables capture entirely.
        self.slow_ops = slow_ops
        self._rwlock = RWLock()
        self.cache = ResponseCache(cache_entries)
        self._count_lock = threading.Lock()
        #: Requests this endpoint has answered — including HTTP-level
        #: rejections the handler never forwards to handle_bytes (wrong
        #: path, bad Content-Length, oversized body); bounded serving
        #: (``repro serve --requests N``) keys off this, and an uncounted
        #: rejection would leave it waiting forever.
        self.requests_handled = 0
        # Telemetry sinks: default to the process-wide (usually null)
        # singletons so an unobserved server pays only empty calls; a
        # hub passes its registry/tracer plus {tenant, repo} labels so
        # every series is attributable. Children are resolved once here
        # — the per-request path touches plain attributes, not the
        # registry's family tables.
        registry = (
            registry if registry is not None else obs_metrics.default_registry()
        )
        self.registry = registry
        self.tracer = tracer if tracer is not None else obs_trace.default_tracer()
        labels = dict(metric_labels or {})
        self._tenant = str(labels.get("tenant", "-"))
        self._repo_label = str(labels.get("repo", "-"))
        ids = {"tenant": self._tenant, "repo": self._repo_label}
        requests_total = registry.counter(
            "repro_requests_total",
            "Requests handled, by operation",
            ("op", "tenant", "repo"),
        )
        request_seconds = registry.histogram(
            "repro_request_seconds",
            "End-to-end request handling latency",
            ("op", "tenant", "repo"),
        )
        request_bytes = registry.histogram(
            "repro_request_bytes",
            "Request (in) and response (out) message sizes",
            ("direction", "op", "tenant", "repo"),
            buckets=obs_metrics.DEFAULT_BYTES_BUCKETS,
        )
        tracked_ops = (*OPS, "invalid")
        self._m_requests = {
            op: requests_total.labels(op=op, **ids) for op in tracked_ops
        }
        self._m_seconds = {
            op: request_seconds.labels(op=op, **ids) for op in tracked_ops
        }
        self._m_bytes = {
            (direction, op): request_bytes.labels(
                direction=direction, op=op, **ids
            )
            for op in tracked_ops
            for direction in ("in", "out")
        }
        lock_wait = registry.histogram(
            "repro_lock_wait_seconds",
            "Time spent waiting to acquire the repository RWLock",
            ("mode", "tenant", "repo"),
        )
        self._m_lock_wait = {
            mode: lock_wait.labels(mode=mode, **ids)
            for mode in ("read", "write")
        }
        self.cache.bind_metrics(
            registry.counter(
                "repro_cache_hits_total",
                "Read-response cache hits",
                ("tenant", "repo"),
            ).labels(**ids),
            registry.counter(
                "repro_cache_misses_total",
                "Read-response cache misses (including stale tokens)",
                ("tenant", "repo"),
            ).labels(**ids),
        )
        # Chunk I/O flows into the same registry, attributed to this
        # repository — a hub's /metrics shows per-tenant chunk bytes.
        repo.objects.chunks.stats.bind_registry(
            registry, self._tenant, self._repo_label
        )
        # Same attribution for lineage appends: pushed/recorded ledger
        # rows surface as repro_lineage_records_total per tenant+repo.
        lineage = getattr(repo, "lineage", None)
        if lineage is not None:
            lineage.bind_registry(registry, self._tenant, self._repo_label)
        # Health model over this server's own telemetry; a hub passes its
        # shared monitor instead so the deployment-wide view answers the
        # ``health`` op for every hosted repo. Defaults to the stock SLO
        # over this registry/tracer — null sinks just report ready.
        self.health_monitor = (
            health_monitor
            if health_monitor is not None
            else HealthMonitor(registry=registry, tracer=self.tracer)
        )

    def count_request(self) -> None:
        with self._count_lock:
            self.requests_handled += 1

    @contextlib.contextmanager
    def maintenance(self):
        """Exclusive access to the repository outside the protocol.

        Hosts use this for maintenance that mutates repository state
        without a wire request — garbage collection, offline pruning —
        so it cannot interleave with in-flight reads or pushes. The
        response cache is invalidated on exit (the revision tokens catch
        most mutations; the wholesale clear catches all)."""
        with self._rwlock.write_locked():
            try:
                yield self.repo
            finally:
                self.cache.invalidate()

    # ------------------------------------------------------------ dispatch
    def handle_bytes(self, payload: bytes, decoded=None) -> bytes:
        """Decode one request, run it, encode the response.

        Never raises: library errors travel back as typed error messages
        (the client re-raises them locally), and unexpected failures are
        wrapped as :class:`RemoteProtocolError` responses so a malformed
        request can never kill the handler thread serving it.

        ``decoded`` (optional) is the ``(meta, blobs)`` pair for
        ``payload`` when the caller already decoded it — a hub inspects
        every request for admission and must not pay the blob-slicing
        cost twice. ``payload`` is still required: cache keys hash the
        raw bytes.
        """
        self.count_request()
        started = time.perf_counter()
        op = "invalid"
        trace_id = None
        try:
            meta, blobs = (
                decoded if decoded is not None else decode_message(payload)
            )
            requested = meta.get("op")
            if requested not in OPS:
                raise RemoteProtocolError(f"unknown operation {requested!r}")
            op = requested
            validate_request(op, meta, blobs)
            # A propagated trace context (schema-additive trace_ctx meta
            # key) makes the server's spans children of the client's —
            # adopt-only, so an in-process caller whose span is already
            # current keeps its natural nesting, and a malformed context
            # parses to None rather than failing the request. The ids are
            # correlation data only; admission never reads them.
            inherited = propagation.parse_trace_context(meta)
            with propagation.adopt_remote_context(inherited):
                with self.tracer.span(
                    f"server.{op}",
                    op=op,
                    tenant=self._tenant,
                    repo=self._repo_label,
                ) as span:
                    trace_id = getattr(span, "trace_id", None)
                    response = self._dispatch(op, meta, blobs, payload)
        except MLCaskError as error:
            response = error_response(error)
        except Exception as error:  # noqa: BLE001 - last-resort containment
            response = error_response(
                RemoteProtocolError(
                    f"internal server error: {type(error).__name__}: {error}"
                )
            )
        elapsed = time.perf_counter() - started
        self._m_requests[op].inc()
        self._m_seconds[op].observe(elapsed)
        self._m_bytes[("in", op)].observe(len(payload))
        self._m_bytes[("out", op)].observe(len(response))
        if self.slow_ops is not None:
            # After the metrics, outside every lock: capture itself walks
            # thread stacks and must never extend a lock hold.
            self.slow_ops.observe(
                op,
                elapsed,
                tracer=self.tracer,
                trace_id=trace_id,
                tenant=self._tenant,
                repo=self._repo_label,
            )
        return response

    def _dispatch(self, op: str, meta: dict, blobs: list, payload: bytes) -> bytes:
        """Route one validated operation through locking and the cache."""
        handler = getattr(self, f"_op_{op}")
        if op in WRITE_OPS or self.exclusive:
            with self._locked("write"):
                try:
                    return handler(meta, blobs)
                finally:
                    # Even a failed/rejected write may have grafted
                    # content before raising; the revision tokens catch
                    # most of that, the wholesale clear catches all.
                    if op in WRITE_OPS:
                        self.cache.invalidate()
        if op in CACHEABLE_OPS:
            key = hashlib.sha256(self._cache_key_bytes(meta, blobs, payload)).digest()
            cached = self.cache.get(key, self._state_token())
            if cached is not None:
                return cached
            with self._locked("read"):
                token = self._state_token()
                response = handler(meta, blobs)
            self.cache.put(key, token, response)
            return response
        with self._locked("read"):
            return handler(meta, blobs)

    @staticmethod
    def _cache_key_bytes(meta: dict, blobs: list, payload: bytes) -> bytes:
        """The request bytes the response cache should key on.

        A propagated trace context perturbs the raw payload per trace
        while changing nothing about the answer — hashing it would turn
        every traced client into a cache miss. Stripping the key and
        re-encoding restores the untraced request's exact bytes (the
        framing is deterministic: sorted keys, declared sizes), so traced
        and untraced peers share cache entries. The common case (no
        trace_ctx) stays zero-copy.
        """
        if propagation.TRACE_CTX_KEY not in meta:
            return payload
        stripped = {
            k: v for k, v in meta.items() if k != propagation.TRACE_CTX_KEY
        }
        return encode_message(stripped, blobs)

    @contextlib.contextmanager
    def _locked(self, mode: str):
        """Take the RWLock's ``mode`` side, observing the acquisition wait.

        The wait lands in the ``repro_lock_wait_seconds`` histogram and —
        when a real tracer is active — as a backdated ``lock.<mode>``
        span under the current operation span, so a trace shows exactly
        how long a push sat behind readers (or a read behind a writer).
        """
        started = time.perf_counter()
        acquire = (
            self._rwlock.write_locked()
            if mode == "write"
            else self._rwlock.read_locked()
        )
        with acquire:
            waited = time.perf_counter() - started
            self._m_lock_wait[mode].observe(waited)
            self.tracer.record(f"lock.{mode}", waited, mode=mode)
            yield

    def _state_token(self) -> tuple:
        """Cheap fingerprint of everything read responses depend on.

        Specs are covered by their count: spec registration is add-only
        (a conflicting redefinition raises), so any change moves it.
        """
        repo = self.repo
        lineage = getattr(repo, "lineage", None)
        return (
            repo.graph.revision,
            repo.branches.revision,
            repo.objects.revision,
            repo.objects.chunks.revision,
            repo.checkpoints.revision,
            len(repo._specs),
            # Lineage answers depend on the ledger too: a new record (or a
            # commit back-fill / GC collected flag) must expire cached
            # lineage responses, and the fetch pack now carries lineage.
            lineage.revision if lineage is not None else 0,
        )

    # ---------------------------------------------------------- operations
    def _public_branches(self, pipeline: str) -> list[str]:
        """Branches this repository advertises: its own, not the tracking
        refs (``origin/master``) it keeps for *its* remotes — re-exporting
        those would nest another ``origin/`` per clone hop."""
        return [
            branch
            for branch in self.repo.branches.branches(pipeline)
            if "/" not in branch
        ]

    def _op_manifest(self, meta: dict, blobs) -> bytes:
        """Refs plus repository configuration (for clone bootstrap)."""
        repo = self.repo
        refs = {
            pipeline: {
                branch: repo.branches.head(pipeline, branch)
                for branch in self._public_branches(pipeline)
            }
            for pipeline in repo.branches.pipelines()
        }
        return encode_message(
            {"refs": refs, "metric": repo.metric, "seed": repo.seed}
        )

    def _op_known_commits(self, meta: dict, blobs) -> bytes:
        """Which of the offered commit ids the server already holds."""
        known = [c for c in meta.get("ids", []) if c in self.repo.graph]
        return encode_message({"known": known})

    def _op_missing_chunks(self, meta: dict, blobs) -> bytes:
        """The have/want negotiation: digests the server lacks."""
        missing = self.repo.objects.chunks.missing(meta.get("digests", []))
        return encode_message({"missing": missing})

    def _op_get_chunks(self, meta: dict, blobs) -> bytes:
        """Ship requested chunks as raw framed blobs, windowed.

        At most ``min(max_bytes, max_pack_bytes)`` of payload per response
        (the server's window applies even when the request names none —
        the memory bound must hold against non-cooperating clients), but
        always at least one chunk, so progress is guaranteed. The
        ``remaining`` count tells the client how many of its wanted
        digests did not fit; it re-requests exactly those. Shipped chunks
        are always a *prefix* of the requested order — clients rely on
        this for O(batch) progress tracking.
        """
        digests = meta.get("digests", [])
        requested = meta.get("max_bytes")
        budget = (
            min(requested, self.max_pack_bytes)
            if requested is not None
            else self.max_pack_bytes
        )
        # Known trade-off: the generator reads one chunk past the window
        # to detect overflow, and that blob is discarded with it — one
        # redundant store read per window. Served repositories hold chunks
        # in a MemoryChunkStore (load_dir imports the objects directory
        # into memory), so this is a dict lookup, accepted in exchange for
        # a single windowing implementation shared with the push path.
        send_digests, payloads, _ = next(
            pack.iter_chunk_batches(self.repo.objects.chunks.get, digests, budget),
            ([], [], False),
        )
        return encode_message(
            {
                "digests": send_digests,
                "remaining": len(digests) - len(send_digests),
            },
            payloads,
        )

    def _op_put_chunks(self, meta: dict, blobs) -> bytes:
        """Graft verified chunks ahead of a batched push.

        Content-addressed, so replays are no-ops and chunks orphaned by an
        interrupted push are harmless — they become reachable when the
        push's final message lands (and are re-offered by the client's
        next negotiation if it never does). ``on_change`` is *not* fired:
        refs have not moved, and the eventual push persists everything.
        """
        new = pack.import_content(
            self.repo, [], [], meta.get("digests", []), blobs
        )
        return encode_message({"ok": True, "new_chunks": new})

    def _op_stats(self, meta: dict, blobs) -> bytes:
        """Telemetry readout: the long-orphaned counters, over the wire.

        Surfaces what used to be reachable only in-process — response
        cache hit rate, chunk-store byte counters, request totals — so
        a client (or ``repro stats``) can assert on server effectiveness
        instead of inferring it from wall-clock. Served under the read
        lock like any other read; deliberately *not* cacheable (it
        changes with every request).
        """
        repo = self.repo
        # Engine metrics register on the process-default registry at
        # scheduler/single-flight construction (they are process-wide,
        # not per-repo), so the readout queries that registry — zeros
        # when no parallel run ever happened or nothing is installed.
        engine_registry = obs_metrics.default_registry()
        lineage = getattr(repo, "lineage", None)
        return encode_message(
            {
                "stats": {
                    "requests_handled": self.requests_handled,
                    "cache": self.cache.snapshot(),
                    "storage": repo.objects.chunks.stats.snapshot(),
                    "repository": {
                        "commits": len(repo.graph),
                        "pipelines": len(repo.branches.pipelines()),
                        "checkpoints": len(repo.checkpoints.records()),
                    },
                    "engine": {
                        "scheduler_queue_depth": engine_registry.value(
                            "repro_scheduler_queue_depth"
                        ),
                        "scheduler_steals": engine_registry.value(
                            "repro_scheduler_steals_total"
                        ),
                        "scheduler_tasks": {
                            status: engine_registry.value(
                                "repro_scheduler_tasks_total", status=status
                            )
                            for status in ("done", "failed", "cancelled")
                        },
                        "single_flight": {
                            via: engine_registry.value(
                                "repro_singleflight_total", via=via
                            )
                            for via in ("hit", "computed", "joined", "failed")
                        },
                    },
                    "lineage": {
                        "records": len(lineage) if lineage is not None else 0,
                        "collected": (
                            lineage.collected_count()
                            if lineage is not None
                            else 0
                        ),
                    },
                    "trace": {
                        "spans_recorded": getattr(
                            self.tracer, "spans_recorded", 0
                        ),
                        "buffered": len(self.tracer.finished()),
                        "sample_rate": getattr(
                            self.tracer, "sample_rate", 1.0
                        ),
                    },
                    "slow_ops": (
                        self.slow_ops.snapshot()
                        if self.slow_ops is not None
                        else None
                    ),
                    # Schema-additive summary; the full report (per-op
                    # percentiles, burn, SLO config) is the health op's.
                    "health": self._health_summary(),
                }
            }
        )

    def _health_summary(self) -> dict:
        """The compact health section ``stats`` carries."""
        ready, reasons = self.health_monitor.ready()
        window = self.health_monitor.window()
        return {
            "ready": ready,
            "reasons": reasons,
            "queue_depth": window["queue_depth"],
            "window_seconds": window["seconds"],
        }

    def _op_health(self, meta: dict, blobs) -> bytes:
        """The full sliding-window health report (:mod:`repro.obs.health`).

        A read like ``stats`` — served under the shared lock, never
        cached (the window slides with every tick). On a hub this is
        the deployment-wide monitor, and reaching it at all means the
        request passed token authentication, which is why the detailed
        report lives here rather than on the unauthenticated probes.
        """
        return encode_message({"health": self.health_monitor.health()})

    def _op_lineage(self, meta: dict, blobs) -> bytes:
        """Provenance queries over the repository's lineage ledger.

        A read like ``stats`` — served under the shared lock, and (unlike
        ``stats``) response-cache eligible because every answer is a pure
        function of repository state, which the state token now covers via
        the ledger revision. Unknown refs/components/traces surface as
        typed :class:`LineageNotFoundError` responses, not prose.
        """
        from ..provenance import queries

        repo = self.repo
        query = meta["query"]
        if query == "lineage":
            result = queries.lineage_of(repo, meta["ref"])
        elif query == "consumers":
            result = queries.consumers_of(repo, meta["ref"])
        elif query == "impact":
            result = queries.impact_of(
                repo, meta["component"], version=meta.get("version")
            )
        else:  # "trace" — validate_request admits no other form
            result = queries.trace_forensics(repo, meta["trace_id"])
        return encode_message({"lineage": result})

    def _op_trace(self, meta: dict, blobs) -> bytes:
        """Distributed-trace readout: spans, summaries, slow captures.

        With a ``trace_id``: that trace's finished spans (``limit``
        bounds them, newest kept) plus its critical-path analysis. Without
        one: per-trace summaries of the buffer, newest last. ``slow``
        additionally returns the slow-op capture ring. Served under the
        read lock like ``stats`` and, like it, never cached — the buffer
        advances with every request.
        """
        from ..obs.critical_path import critical_path as compute_critical_path

        spans = self.tracer.finished()
        limit = meta.get("limit")
        result: dict = {}
        trace_id = meta.get("trace_id")
        if trace_id is not None:
            selected = [s for s in spans if s.get("trace_id") == trace_id]
            if limit is not None:
                selected = selected[-limit:]
            result["spans"] = selected
            result["critical_path"] = compute_critical_path(selected)
        else:
            summaries: dict[str, dict] = {}
            for span in spans:
                entry = summaries.setdefault(
                    span.get("trace_id"),
                    {
                        "trace_id": span.get("trace_id"),
                        "spans": 0,
                        "errors": 0,
                        "root": None,
                        "seconds": 0.0,
                        "sampled": bool(span.get("sampled", True)),
                    },
                )
                entry["spans"] += 1
                if span.get("status") == "error":
                    entry["errors"] += 1
                if span.get("parent_id") is None:
                    entry["root"] = span.get("name")
                    entry["seconds"] = span.get("seconds") or 0.0
            traces = list(summaries.values())
            result["traces"] = traces[-(limit or 50):]
        if meta.get("slow", False):
            result["slow"] = (
                self.slow_ops.captures() if self.slow_ops is not None else []
            )
        return encode_message({"trace": result})

    def _op_fetch(self, meta: dict, blobs) -> bytes:
        """Commit-graph sync: everything reachable from the wanted refs
        that the client does not claim to have. Content (chunks) is
        negotiated separately so unchanged outputs never re-transfer."""
        repo = self.repo
        want = meta.get("want")  # {pipeline: [branch, ...]} or None = all
        have = set(meta.get("have_commits", []))

        refs: dict[str, dict[str, str]] = {}
        pipelines = (
            sorted(want) if want is not None else repo.branches.pipelines()
        )
        commits: dict[str, object] = {}
        for pipeline in pipelines:
            branches = (
                want[pipeline]
                if want is not None and want[pipeline]
                else self._public_branches(pipeline)
            )
            for branch in branches:
                head = repo.branches.head(pipeline, branch)
                refs.setdefault(pipeline, {})[branch] = head
                for commit in pack.commits_to_send(repo, head, have):
                    commits[commit.commit_id] = commit
        ordered = sorted(commits.values(), key=lambda c: c.sequence)
        recipes, records, chunk_digests = pack.content_of_commits(repo, ordered)
        meta_out = pack.pack_meta(repo, ordered, recipes, records, chunk_digests)
        meta_out["refs"] = refs
        return encode_message(meta_out)

    def _op_push(self, meta: dict, blobs) -> bytes:
        """Graft a pack, then fast-forward the offered ref updates.

        Ref updates carry the head the client *observed* (``old``): a
        mismatch with the server's current head means the branch moved
        since the client negotiated — rejected the same way a
        non-fast-forward is, so no update is ever lost silently.
        """
        repo = self.repo
        # Content-completeness gate, before anything imports: every chunk a
        # pushed recipe references must either ride in this message or
        # already be held (landed by put_chunks pre-seeding or earlier
        # syncs). Without this, a schema-valid push could register recipes
        # pointing at content the server was never given — poisoning every
        # later fetch of that branch with an unservable chunk digest.
        incoming = set(meta.get("chunk_digests", []))
        referenced = {
            digest
            for entry in meta.get("recipes", [])
            for digest in entry["chunks"]
        }
        absent = repo.objects.chunks.missing(sorted(referenced - incoming))
        if absent:
            raise RemoteProtocolError(
                f"push references {len(absent)} chunks neither included in "
                f"the pack nor held by the server (first: {absent[0][:12]}); "
                "negotiate with missing_chunks and resend"
            )
        pack.import_specs(repo, meta.get("specs", {}))
        # Content lands before commits (the mirror of the client-fetch
        # ordering): if a blob fails its integrity check here, nothing has
        # been grafted yet — grafting commits first would leave orphans a
        # retry push could fast-forward onto even though their content
        # never arrived, the poisoned state the gate above exists to stop.
        with self.tracer.span(
            "storage.import",
            chunks=len(meta.get("chunk_digests", [])),
            bytes=sum(len(blob) for blob in blobs),
        ):
            new_chunks = pack.import_content(
                repo,
                meta.get("recipes", []),
                meta.get("records", []),
                meta.get("chunk_digests", []),
                blobs,
                lineage_entries=meta.get("lineage", []),
            )
            pack.import_commits(repo, meta.get("commits", []))

        updates = meta.get("refs", {})
        # Validate every update before applying any: a push is atomic.
        for pipeline, branches in updates.items():
            for branch, update in branches.items():
                observed = update.get("old")
                new_head = update["new"]
                current = (
                    repo.branches.head(pipeline, branch)
                    if repo.branches.has_branch(pipeline, branch)
                    else None
                )
                if current != observed:
                    raise PushRejectedError(
                        pipeline, branch,
                        "remote branch moved since refs were negotiated "
                        "(stale old head); fetch and retry",
                    )
                if new_head not in repo.graph:
                    raise PushRejectedError(
                        pipeline, branch,
                        f"new head {new_head[:12]} not present after import",
                    )
                if not pack.is_fast_forward_update(repo, current, new_head):
                    raise PushRejectedError(
                        pipeline, branch,
                        "non-fast-forward (branches diverged); pull, resolve "
                        "with the metric-driven merge, then push the result",
                    )
        applied = {}
        for pipeline, branches in updates.items():
            for branch, update in branches.items():
                repo.branches.set_head(pipeline, branch, update["new"])
                applied.setdefault(pipeline, {})[branch] = update["new"]
        if self.on_change is not None:
            self.on_change(repo)
        return encode_message({"ok": True, "updated": applied, "new_chunks": new_chunks})


# ------------------------------------------------------------- HTTP serve
class BaseRPCHandler(http.server.BaseHTTPRequestHandler):
    """Shared, hardened RPC-over-POST plumbing.

    Keep-alive discipline: a handled request — even one that produced a
    typed error response — leaves the connection reusable. Anything that
    puts the connection in an unknowable state (truncated body, a failure
    outside the dispatch callable, a write error) closes it, and internal
    failures are reported as HTTP 500 with an encoded error body the
    client surfaces instead of a bare dropped socket.

    Subclasses contribute only the routing surface: :meth:`route_request`
    maps the request path to a ``callable(payload) -> response bytes``
    (or None for a 404), plus the request counter hooks the bounded-serve
    budget reads. Everything else — Content-Length validation, the
    ``max_request_bytes`` 413, short-read teardown, the last-resort 500,
    and the ``request_limit`` keep-alive cutoff — lives here exactly
    once, so a hardening fix can never reach one endpoint and miss the
    other.
    """

    server_version = "mlcask-repro/1"
    protocol_version = "HTTP/1.1"
    #: Response headers and body go out in separate writes; with Nagle on,
    #: the second write stalls behind the peer's delayed ACK (~40ms per
    #: request on Linux loopback). RPC traffic wants the segments now.
    disable_nagle_algorithm = True
    #: Socket read timeout: an idle keep-alive connection is dropped after
    #: this many seconds (the client transparently reconnects), so handler
    #: threads never wait forever on a silent peer. Overridden per server
    #: by the server's ``idle_timeout``.
    timeout = 60.0

    unknown_endpoint_message = "unknown endpoint"
    internal_error_prefix = "internal server error"

    def setup(self):
        idle_timeout = getattr(self.server, "idle_timeout", None)
        if idle_timeout is not None:
            self.timeout = idle_timeout
        super().setup()

    # -------------------------------------------------- subclass surface
    def route_request(self):
        """A ``callable(payload) -> bytes`` for this request's path, or
        None for an unknown endpoint (the base answers the 404)."""
        raise NotImplementedError

    def count_request(self) -> None:
        raise NotImplementedError

    def requests_handled(self) -> int:
        raise NotImplementedError

    def authorize_debug(self) -> bool:
        """Whether this request may read the ``/debug/*`` endpoints.

        The single-repo server trusts its network (it already serves the
        repository content itself unauthenticated); the hub overrides
        this with its token check, because forensics name tenants.
        """
        return True

    def slow_captures(self) -> list[dict]:
        """The slow-op capture ring backing ``/debug/slow``."""
        return []

    # --------------------------------------------------- shared plumbing
    def do_GET(self):  # noqa: N802 - http.server naming convention
        """GET routes: ``/metrics`` (Prometheus text), ``/healthz`` /
        ``/readyz`` (liveness and readiness probes, JSON),
        ``/debug/profile`` (sampling-profiler snapshot + folded stacks,
        JSON), and ``/debug/slow`` (slow-op captures, JSON).

        ``/metrics`` renders from the server's registry (empty body when
        the server was built without one); the probes are deliberately
        unauthenticated (an orchestrator cannot carry tenant tokens) and
        carry only a boolean plus reasons; ``/debug/profile`` answers 404
        until a profiler is attached to the server. Every other GET path
        is a 404; all of them count against a bounded-serve budget like
        any other request — the budget is a request budget, not an RPC
        budget.
        """
        self.count_request()
        path = self.path.rstrip("/")
        if path == HEALTHZ_PATH:
            # Liveness: producing this response is the proof.
            self._answer_get(
                json.dumps({"alive": True}).encode("utf-8"),
                "application/json",
            )
            return
        if path == READYZ_PATH:
            monitor = getattr(self.server, "health_monitor", None)
            if monitor is None:
                ready, reasons = True, []
            else:
                ready, reasons = monitor.ready()
            self._answer_get(
                json.dumps(
                    {"ready": ready, "reasons": reasons}, sort_keys=True
                ).encode("utf-8"),
                "application/json",
                status=200 if ready else 503,
            )
            return
        if path == METRICS_PATH:
            registry = getattr(self.server, "metrics_registry", None)
            text = registry.render_prometheus() if registry is not None else ""
            self._answer_get(
                text.encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
            )
            return
        if path in (DEBUG_PROFILE_PATH, DEBUG_SLOW_PATH):
            if not self.authorize_debug():
                self.send_error(
                    403, "debug endpoints require an authenticated token"
                )
                return
            if path == DEBUG_PROFILE_PATH:
                profiler = getattr(self.server, "profiler", None)
                if profiler is None:
                    self.send_error(404, "no profiler attached")
                    return
                body = {
                    "profile": profiler.snapshot(),
                    "folded": profiler.folded(),
                }
            else:
                body = {"slow": self.slow_captures()}
            self._answer_get(
                json.dumps(body, sort_keys=True).encode("utf-8"),
                "application/json",
            )
            return
        self.send_error(404, self.unknown_endpoint_message)

    def _answer_get(
        self, body: bytes, content_type: str, status: int = 200
    ) -> None:
        limit = getattr(self.server, "request_limit", None)
        spent = limit is not None and self.requests_handled() >= limit
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            if spent:
                self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
            return
        if spent:
            self.close_connection = True

    def do_POST(self):  # noqa: N802 - http.server naming convention
        dispatch = self.route_request()
        if dispatch is None:
            self.count_request()
            self.send_error(404, self.unknown_endpoint_message)
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            length = -1
        if length < 0:
            self.count_request()
            self.send_error(400, "bad Content-Length")
            return
        limit = getattr(self.server, "max_request_bytes", None)
        if limit is not None and length > limit:
            self.count_request()
            self.send_error(413, "request exceeds the server's size limit")
            return
        try:
            payload = self.rfile.read(length)
        except OSError:
            # Stalled mid-body past the idle timeout — same treatment as
            # the short-read below (TimeoutError is an OSError).
            payload = b""
        if len(payload) < length:
            # The peer hung up (or stalled) mid-body; there is no request
            # to answer and no sane way to keep framing on this socket —
            # but it still spends one unit of a bounded-serve budget.
            self.count_request()
            self.close_connection = True
            return
        try:
            status = 200
            response = dispatch(payload)
        except Exception as error:  # noqa: BLE001 - dispatch contains its
            # own failures; this is the last-resort mapping to HTTP 500.
            status = 500
            response = error_response(
                RemoteProtocolError(
                    f"{self.internal_error_prefix}: "
                    f"{type(error).__name__}: {error}"
                )
            )
        # Bounded serving (request_limit): once the budget is spent, stop
        # honouring keep-alive so an active pipelining client cannot keep
        # its handler thread alive past the limit.
        limit = getattr(self.server, "request_limit", None)
        spent = limit is not None and self.requests_handled() >= limit
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/octet-stream")
            self.send_header("Content-Length", str(len(response)))
            if status != 200 or spent:
                self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(response)
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
            return
        if status != 200 or spent:
            self.close_connection = True

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)


class _Handler(BaseRPCHandler):
    """Single-repository endpoint: every POST to ``/rpc`` is dispatched
    to the server's one :class:`RepositoryServer`."""

    def route_request(self):
        if self.path.rstrip("/") != RPC_PATH:
            return None
        return self.server.repository_server.handle_bytes

    def count_request(self) -> None:
        self.server.repository_server.count_request()

    def requests_handled(self) -> int:
        return self.server.repository_server.requests_handled

    def slow_captures(self) -> list[dict]:
        slow = self.server.repository_server.slow_ops
        return slow.captures() if slow is not None else []


class SyncHTTPServer(http.server.ThreadingHTTPServer):
    """HTTP server bound to one :class:`RepositoryServer`.

    ``max_request_bytes`` (optional) rejects oversized request bodies with
    HTTP 413 before they are read into memory.
    """

    daemon_threads = True

    def __init__(
        self,
        address,
        repository_server,
        verbose=False,
        max_request_bytes: int | None = None,
        idle_timeout: float | None = None,
        metrics_registry=None,
        profiler=None,
        health_monitor=None,
    ):
        super().__init__(address, _Handler)
        self.repository_server = repository_server
        self.verbose = verbose
        self.max_request_bytes = max_request_bytes
        self.idle_timeout = idle_timeout
        # Rendered by GET /metrics; None answers an empty scrape.
        self.metrics_registry = metrics_registry
        # Read by GET /debug/profile; None answers 404 (not enabled).
        self.profiler = profiler
        # Read by GET /readyz; defaults to the repository server's own
        # monitor, None answers always-ready.
        self.health_monitor = (
            health_monitor
            if health_monitor is not None
            else getattr(repository_server, "health_monitor", None)
        )
        # When set, handlers stop honouring keep-alive once this many
        # requests have been handled (bounded serving, see the CLI).
        self.request_limit: int | None = None

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def serve(
    repo,
    host: str = "127.0.0.1",
    port: int = 0,
    on_change=None,
    verbose: bool = False,
    max_pack_bytes: int = pack.DEFAULT_MAX_PACK_BYTES,
    cache_entries: int = 128,
    exclusive: bool = False,
    max_request_bytes: int | None = None,
    idle_timeout: float | None = None,
    registry=None,
    tracer=None,
    slow_ops=None,
    profiler=None,
    slo: SLOConfig | None = None,
) -> SyncHTTPServer:
    """Expose ``repo`` at ``http://host:port/rpc``; returns the server.

    The caller drives the loop (``serve_forever()`` for a daemon,
    ``handle_request()`` N times for bounded serving in tests); ``port=0``
    binds an ephemeral port, readable from ``server.url``. Requests are
    handled on a thread per connection: reads run concurrently, pushes
    exclusively (see :class:`RepositoryServer`).

    ``registry``/``tracer`` default to fresh real instances — an HTTP
    endpoint should answer ``GET /metrics`` with something — and are
    readable back from ``server.metrics_registry`` /
    ``server.repository_server.tracer``. Pass
    :data:`repro.obs.metrics.NULL_REGISTRY` /
    :data:`repro.obs.trace.NULL_TRACER` to serve uninstrumented (the
    overhead benchmark's baseline arm).

    ``slow_ops`` defaults to a fresh :class:`SlowOpCapture` with the
    stock per-op budgets — an HTTP endpoint should be able to answer
    ``GET /debug/slow`` out of the box; check costs one comparison per
    request and nothing is snapshotted under budget. ``profiler``
    (optional, a started :class:`~repro.obs.profiler.SamplingProfiler`)
    backs ``GET /debug/profile``; the caller owns its lifecycle.

    ``slo`` (optional :class:`~repro.obs.slo.SLOConfig`, the
    ``--slo-config`` flag) parameterizes the health model behind
    ``GET /healthz`` / ``GET /readyz`` and the ``health`` op; the stock
    objectives apply when omitted.
    """
    registry = registry if registry is not None else MetricsRegistry()
    tracer = tracer if tracer is not None else Tracer()
    slow_ops = slow_ops if slow_ops is not None else SlowOpCapture()
    health_monitor = HealthMonitor(registry=registry, slo=slo, tracer=tracer)
    return SyncHTTPServer(
        (host, port),
        RepositoryServer(
            repo,
            on_change=on_change,
            max_pack_bytes=max_pack_bytes,
            cache_entries=cache_entries,
            exclusive=exclusive,
            registry=registry,
            tracer=tracer,
            slow_ops=slow_ops,
            health_monitor=health_monitor,
        ),
        verbose=verbose,
        max_request_bytes=max_request_bytes,
        idle_timeout=idle_timeout,
        metrics_registry=registry,
        profiler=profiler,
        health_monitor=health_monitor,
    )
