"""Wire format for the remote-sync protocol: framed JSON + raw chunks.

Every request and response is one *message*: a JSON header (the ``meta``
dict) followed by zero or more opaque binary blobs — chunk payloads
travelling to or from a peer's content-addressed store. The framing is
deliberately git-packfile-ish: metadata is cheap structured text, content
is raw bytes concatenated after it, so measured wire bytes honestly
reflect what a transfer costs (no base64 inflation of chunk data).

Layout::

    MAGIC (4 bytes) | header length (u32 BE) | header JSON (UTF-8) | blobs...

where the header is ``{"meta": {...}, "blob_sizes": [n0, n1, ...]}`` and
the blobs follow back-to-back in declared order. Decoding is strict: bad
magic, truncated frames, or trailing garbage raise
:class:`RemoteProtocolError` rather than yielding partial messages.

The ``meta`` dict carries the operation name (requests) or results
(responses); an error response carries ``{"error": {"type", "message",
...}}`` which :func:`raise_remote_error` maps back onto the library's
exception hierarchy client-side.
"""

from __future__ import annotations

import json
import struct

from ..errors import (
    AuthenticationError,
    AuthorizationError,
    HubError,
    LineageNotFoundError,
    PushRejectedError,
    QuotaExceededError,
    RateLimitedError,
    RemoteError,
    RemoteProtocolError,
    RepositoryNotFoundError,
    ServerOverloadedError,
)

MAGIC = b"MLCR"
#: v2: windowed ``get_chunks`` (``remaining`` count, server-enforced
#: ``max_pack_bytes`` bound) and the ``put_chunks`` operation. The bump is
#: deliberate: a v1 peer fetching from a windowing server would silently
#: import a truncated chunk set; a loud version error is the safe failure.
PROTOCOL_VERSION = 2

#: Operations a server understands; anything else is a protocol error.
#: ``stats`` (telemetry readout), ``lineage`` (provenance queries),
#: ``trace`` (distributed-trace / slow-op readout), and ``health``
#: (sliding-window health report, :mod:`repro.obs.health`) are
#: schema-additive: old clients never send them, and an old server
#: answers them with a typed unknown-operation error — no version bump
#: needed. The same rule covers the optional ``trace_ctx`` meta key
#: (distributed-trace propagation, :mod:`repro.obs.propagation`): an old
#: server ignores unknown meta keys, so traced clients interoperate with
#: legacy peers.
OPS = (
    "manifest",
    "known_commits",
    "missing_chunks",
    "get_chunks",
    "put_chunks",
    "fetch",
    "push",
    "stats",
    "lineage",
    "trace",
    "health",
)

#: Operations that mutate repository state (served under the exclusive
#: side of the server's reader-writer lock); everything else is a read.
WRITE_OPS = frozenset({"push", "put_chunks"})


def encode_message(meta: dict, blobs: list[bytes] | None = None) -> bytes:
    """Frame ``meta`` plus binary ``blobs`` into one wire message."""
    blobs = blobs or []
    header = json.dumps(
        {"v": PROTOCOL_VERSION, "meta": meta, "blob_sizes": [len(b) for b in blobs]},
        separators=(",", ":"),
        sort_keys=True,
    ).encode("utf-8")
    return b"".join([MAGIC, struct.pack(">I", len(header)), header, *blobs])


def decode_message(data: bytes) -> tuple[dict, list[bytes]]:
    """Inverse of :func:`encode_message`; strict about every byte."""
    if len(data) < 8 or data[:4] != MAGIC:
        raise RemoteProtocolError("bad magic: not a remote-sync message")
    (header_len,) = struct.unpack(">I", data[4:8])
    header_end = 8 + header_len
    if len(data) < header_end:
        raise RemoteProtocolError("truncated message header")
    try:
        header = json.loads(data[8:header_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise RemoteProtocolError(f"unparseable header: {error}") from None
    if header.get("v") != PROTOCOL_VERSION:
        raise RemoteProtocolError(
            f"unsupported protocol version {header.get('v')!r}"
        )
    if not isinstance(header.get("meta"), dict):
        raise RemoteProtocolError("header carries no meta object")
    sizes = header.get("blob_sizes", [])
    if not isinstance(sizes, list) or any(
        not isinstance(s, int) or isinstance(s, bool) or s < 0 for s in sizes
    ):
        raise RemoteProtocolError("invalid blob_sizes in header")
    blobs = []
    cursor = header_end
    for size in sizes:
        blob = data[cursor : cursor + size]
        if len(blob) != size:
            raise RemoteProtocolError("truncated message blob")
        blobs.append(blob)
        cursor += size
    if cursor != len(data):
        raise RemoteProtocolError("trailing bytes after declared blobs")
    return header["meta"], blobs


def error_response(error: Exception) -> bytes:
    """Serialize a server-side failure into an error message."""
    payload: dict = {
        "type": type(error).__name__,
        "message": str(error),
    }
    if isinstance(error, PushRejectedError):
        payload.update(
            pipeline=error.pipeline, branch=error.branch, reason=error.reason
        )
    if isinstance(error, ServerOverloadedError):
        payload.update(retry_after=error.retry_after)
    return encode_message({"error": payload})


#: Error types that reconstruct client-side from their message alone.
#: Hub admission denials live here: a client must be able to tell an
#: auth failure from a quota denial from a rate limit programmatically,
#: not by parsing prose. ``LineageNotFoundError`` rides along so a
#: lineage query about an unrecorded ref fails typed, not generic.
TYPED_ERRORS = {
    cls.__name__: cls
    for cls in (
        AuthenticationError,
        AuthorizationError,
        HubError,
        LineageNotFoundError,
        QuotaExceededError,
        RateLimitedError,
        RepositoryNotFoundError,
    )
}


def raise_remote_error(meta: dict) -> None:
    """Re-raise a server-reported error client-side, typed when possible."""
    error = meta.get("error")
    if error is None:
        return
    if error.get("type") == "PushRejectedError":
        raise PushRejectedError(
            error.get("pipeline", "?"),
            error.get("branch", "?"),
            error.get("reason", error.get("message", "rejected")),
        )
    if error.get("type") == "RemoteProtocolError":
        raise RemoteProtocolError(
            f"remote rejected request: {error.get('message')}"
        )
    if error.get("type") == "ServerOverloadedError":
        # Special-cased (not TYPED_ERRORS) to reconstruct the backoff
        # hint: clients schedule their retry off ``retry_after``.
        raise ServerOverloadedError(
            error.get("message", "server overloaded; retry later"),
            retry_after=float(error.get("retry_after", 1.0)),
        )
    typed = TYPED_ERRORS.get(error.get("type"))
    if typed is not None:
        raise typed(error.get("message", "rejected by the remote hub"))
    raise RemoteError(f"remote error: {error.get('type')}: {error.get('message')}")
