"""Parallel execution engine: DAG-parallel stage scheduling, multi-worker
merge search, and single-flight checkpoint deduplication.

The sequential :class:`~repro.core.executor.Executor` stays the reference
implementation; everything here is differential-tested against it — any
divergence in stage output refs, metrics, scores, reuse flags, or failure
stages between worker counts is a bug in this package.

Entry points:

* :class:`ParallelExecutor` — drop-in executor running independent DAG
  stages concurrently (work-stealing pool) with single-flight reuse;
* :func:`run_parallel_search` — multi-worker prioritized/random merge
  search preserving the paper's pick order via a fixed-window,
  commit-in-draw-order protocol;
* :class:`SingleFlight` — at-most-once computation per ``(component
  fingerprint, input ref)`` pair across concurrent runs;
* :class:`DagScheduler` — the generic work-stealing task pool.
"""

from .executor import ParallelExecutor
from .merge_driver import run_parallel_search
from .scheduler import DagScheduler, DagResult, SchedulerError
from .single_flight import COMPUTED, HIT, JOINED, FlightStats, SingleFlight

__all__ = [
    "ParallelExecutor",
    "run_parallel_search",
    "DagScheduler",
    "DagResult",
    "SchedulerError",
    "SingleFlight",
    "FlightStats",
    "COMPUTED",
    "HIT",
    "JOINED",
]
