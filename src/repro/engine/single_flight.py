"""Single-flight checkpoint computation: each key computed at most once.

The PR pruning invariant (paper section VI-B) says a component whose
``(component fingerprint, input ref)`` pair was executed before "does not
need to be executed again since its output has already been saved". A
thread-safe :class:`~repro.core.checkpoint.CheckpointStore` alone cannot
uphold that under concurrency: two merge workers whose candidates share an
un-checkpointed prefix both miss the lookup and both compute. The
single-flight layer closes the window — the first arrival (the *leader*)
computes and saves; later arrivals block on the in-flight call and adopt
the leader's record as a checkpoint reuse, exactly as if the leader's
candidate had finished before theirs started.

Failure is shared too: component execution is deterministic given the
``(component, input)`` pair (seeded RNGs, see
:class:`~repro.core.context.ExecutionContext`), so a follower of a failed
leader re-raises the leader's exception — the same failure the follower
would have computed itself. Failed calls leave no trace: nothing was
saved, the in-flight entry is removed, and a later non-concurrent attempt
recomputes, matching the sequential executor's behaviour.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..core.checkpoint import CheckpointRecord, CheckpointStore, checkpoint_key
from ..core.component import Component
from ..obs import metrics as obs_metrics

#: How a stage obtained its checkpoint record (the ``via`` of
#: :meth:`SingleFlight.compute_or_reuse`).
HIT = "hit"  # the store already held the record
COMPUTED = "computed"  # this caller led the computation
JOINED = "joined"  # another in-flight caller computed it; we waited


class _Call:
    """One in-flight computation: a latch plus its outcome."""

    __slots__ = ("done", "record", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.record: CheckpointRecord | None = None
        self.error: BaseException | None = None


@dataclass
class FlightStats:
    """Counters for observability and tests (guarded by the flight lock)."""

    computed: int = 0
    joined: int = 0
    hits: int = 0
    failures: int = 0


class SingleFlight:
    """Keyed in-flight deduplication over a checkpoint store.

    One instance is shared by every worker of a parallel run (and across
    the candidates of a parallel merge search); the keys are global
    checkpoint keys, so sharing one flight per checkpoint store is both
    sufficient and necessary.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: dict[str, _Call] = {}
        self.stats = FlightStats()
        # Registry mirror of the stats block (null unless installed).
        outcomes = obs_metrics.default_registry().counter(
            "repro_singleflight_total",
            "Checkpoint resolutions, by how the record was obtained",
            ("via",),
        )
        self._m_via = {
            via: outcomes.labels(via=via)
            for via in (HIT, COMPUTED, JOINED, "failed")
        }

    def compute_or_reuse(
        self,
        checkpoints: CheckpointStore,
        component: Component,
        input_ref: str,
        compute,
    ) -> tuple[CheckpointRecord, str]:
        """Return the checkpoint record for ``(component, input_ref)``.

        ``compute`` is a zero-argument callable that runs the component
        and saves its output, returning the new record; it is invoked by
        at most one caller per key at a time. Returns ``(record, via)``
        with ``via`` one of :data:`HIT`, :data:`COMPUTED`, :data:`JOINED`.
        Exceptions raised by ``compute`` propagate to the leader and to
        every joined caller alike.
        """
        key = checkpoint_key(component, input_ref)
        record = checkpoints.lookup(component, input_ref)
        if record is not None:
            with self._lock:
                self.stats.hits += 1
            self._m_via[HIT].inc()
            return record, HIT

        with self._lock:
            call = self._inflight.get(key)
            leader = call is None
            if leader:
                call = _Call()
                self._inflight[key] = call

        if not leader:
            call.done.wait()
            with self._lock:
                self.stats.joined += 1
            self._m_via[JOINED].inc()
            if call.error is not None:
                raise call.error
            return call.record, JOINED

        try:
            # Re-check under flight ownership: a previous leader may have
            # finished between our miss and our registration.
            record = checkpoints.lookup(component, input_ref)
            if record is None:
                record = compute()
                via = COMPUTED
            else:
                via = HIT
            call.record = record
        except BaseException as error:
            call.error = error
            with self._lock:
                self.stats.failures += 1
            self._m_via["failed"].inc()
            raise
        else:
            with self._lock:
                if via == COMPUTED:
                    self.stats.computed += 1
                else:
                    self.stats.hits += 1
            self._m_via[via].inc()
            return record, via
        finally:
            with self._lock:
                del self._inflight[key]
            call.done.set()

    def in_flight(self) -> int:
        """Number of keys currently being computed (for tests/monitoring)."""
        with self._lock:
            return len(self._inflight)
