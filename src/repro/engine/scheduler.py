"""Work-stealing DAG scheduler: independent stages run concurrently.

The sequential :class:`~repro.core.executor.Executor` walks a pipeline's
topological order one stage at a time; for DAG-shaped specs (a single
dataset feeding several independent feature branches that join at the
model) that leaves every core but one idle. This scheduler executes a
task DAG with a small pool of worker threads using the classic
work-stealing discipline:

* each worker owns a deque; finishing a task pushes its newly-enabled
  successors onto the *owner's* front (LIFO — depth-first locality, the
  data a successor consumes is hot);
* an idle worker steals from the *back* of a victim's deque (FIFO —
  stealing the oldest, widest work).

Failure policy mirrors the sequential executor's ``break``: when a task
fails, every task at-or-after it in topological order is cancelled (tasks
strictly earlier keep running — they cannot depend on the failure, and
completing them keeps the earliest-failure choice deterministic; see
:mod:`repro.engine.executor`). Successors of a failed or cancelled task
are transitively cancelled.

The scheduler is deliberately generic — tasks are opaque names with a
fixed topological index — so tests can drive it with scripted tasks and
the executor stays the only place that knows what a "stage" is.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

from ..errors import MLCaskError
from ..obs import metrics as obs_metrics

#: Task terminal states.
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"


class SchedulerError(MLCaskError):
    """A worker raised outside the task protocol (a bug, not a task failure)."""


@dataclass
class DagResult:
    """What happened to every task of one :meth:`DagScheduler.run`."""

    status: dict[str, str] = field(default_factory=dict)
    #: Execution trace as (worker index, task) in completion order.
    trace: list[tuple[int, str]] = field(default_factory=list)

    @property
    def failed(self) -> list[str]:
        return [t for t, s in self.status.items() if s == FAILED]

    @property
    def cancelled(self) -> list[str]:
        return [t for t, s in self.status.items() if s == CANCELLED]


class DagScheduler:
    """Executes one task DAG; construct per run (holds per-run state).

    ``order`` is the full task list in topological order; ``deps`` maps a
    task to the tasks it consumes. ``execute(task) -> bool`` runs one task
    on a worker thread and returns success; it must contain its own
    failures (an escaping exception aborts the whole run and re-raises on
    the caller's thread).
    """

    def __init__(
        self,
        order: list[str],
        deps: dict[str, list[str]],
        workers: int,
        registry=None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.order = list(order)
        self.index = {task: i for i, task in enumerate(self.order)}
        self.deps = {task: list(deps.get(task, ())) for task in self.order}
        self.successors: dict[str, list[str]] = {task: [] for task in self.order}
        for task, task_deps in self.deps.items():
            for dep in task_deps:
                self.successors[dep].append(task)
        self.workers = min(workers, max(1, len(self.order)))

        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._deques: list[deque[str]] = [deque() for _ in range(self.workers)]
        self._pending = {task: len(task_deps) for task, task_deps in self.deps.items()}
        self._settled = 0
        self._cancel_bar: int | None = None  # min topo index of any failure
        self._crash: BaseException | None = None
        self.result = DagResult()

        #: Tasks an idle worker took from a victim's deque — the
        #: work-stealing effectiveness number tests and dashboards read.
        self.steals = 0
        # Metric children resolved once (the default registry is null
        # unless installed, so an unobserved run pays empty calls).
        registry = (
            registry if registry is not None else obs_metrics.default_registry()
        )
        tasks_total = registry.counter(
            "repro_scheduler_tasks_total",
            "DAG tasks settled, by terminal status",
            ("status",),
        )
        self._m_tasks = {
            status: tasks_total.labels(status=status)
            for status in (DONE, FAILED, CANCELLED)
        }
        self._m_steals = registry.counter(
            "repro_scheduler_steals_total",
            "Tasks taken from another worker's deque",
        )
        self._m_depth = registry.gauge(
            "repro_scheduler_queue_depth",
            "Runnable tasks currently queued across worker deques",
        )

    # ------------------------------------------------------------- running
    def run(self, execute) -> DagResult:
        for i, task in enumerate(t for t in self.order if self._pending[t] == 0):
            self._deques[i % self.workers].appendleft(task)
        self._m_depth.set(sum(len(dq) for dq in self._deques))
        if self.workers == 1:
            self._worker(0, execute)
        else:
            threads = [
                threading.Thread(
                    target=self._worker,
                    args=(i, execute),
                    name=f"repro-dag-{i}",
                    daemon=True,
                )
                for i in range(self.workers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        if self._crash is not None:
            raise self._crash
        return self.result

    # ------------------------------------------------------------- workers
    def _worker(self, worker_id: int, execute) -> None:
        try:
            while True:
                with self._work:
                    task = self._next_task(worker_id)
                    while task is None:
                        if self._settled >= len(self.order) or self._crash is not None:
                            return
                        self._work.wait()
                        task = self._next_task(worker_id)
                success = execute(task)
                with self._work:
                    self.result.trace.append((worker_id, task))
                    self._settle(worker_id, task, DONE if success else FAILED)
                    self._work.notify_all()
        except BaseException as error:  # noqa: BLE001 - surfaced to caller
            with self._work:
                if self._crash is None:
                    self._crash = error
                self._work.notify_all()

    def _next_task(self, worker_id: int) -> str | None:
        """Pop own work (LIFO) or steal the oldest task from a victim."""
        own = self._deques[worker_id]
        while own:
            task = own.popleft()
            if self.result.status.get(task) != CANCELLED:
                return task
        for offset in range(1, self.workers):
            victim = self._deques[(worker_id + offset) % self.workers]
            while victim:
                task = victim.pop()
                if self.result.status.get(task) != CANCELLED:
                    # Callers hold the scheduler condition, so the plain
                    # increment is race-free.
                    self.steals += 1
                    self._m_steals.inc()
                    return task
        return None

    # ------------------------------------------------------------ settling
    def _settle(self, worker_id: int, task: str, status: str) -> None:
        if self.result.status.get(task) == CANCELLED:
            # Raced with a cancellation that landed while running; the
            # cancellation already settled it.
            return
        self.result.status[task] = status
        self._settled += 1
        self._m_tasks[status].inc()
        if status == DONE:
            for succ in self.successors[task]:
                if self.result.status.get(succ) == CANCELLED:
                    continue
                self._pending[succ] -= 1
                if self._pending[succ] == 0 and not self._past_bar(succ):
                    self._deques[worker_id].appendleft(succ)
            self._m_depth.set(sum(len(dq) for dq in self._deques))
        else:  # FAILED
            bar = self.index[task]
            if self._cancel_bar is None or bar < self._cancel_bar:
                self._cancel_bar = bar
            for other in self.order:
                if (
                    self.index[other] >= bar
                    and other != task
                    and self.result.status.get(other) is None
                    and not self._running_somewhere(other)
                ):
                    self._cancel(other)
            self._cancel_descendants(task)

    def _past_bar(self, task: str) -> bool:
        blocked = self._cancel_bar is not None and self.index[task] >= self._cancel_bar
        if blocked and self.result.status.get(task) is None:
            self._cancel(task)
        return blocked

    def _cancel(self, task: str) -> None:
        self.result.status[task] = CANCELLED
        self._settled += 1
        self._m_tasks[CANCELLED].inc()

    def _cancel_descendants(self, task: str) -> None:
        stack = list(self.successors[task])
        while stack:
            succ = stack.pop()
            if self.result.status.get(succ) is None:
                self._cancel(succ)
                stack.extend(self.successors[succ])

    def _running_somewhere(self, task: str) -> bool:
        """A task not in any deque and not settled is running on a worker."""
        return all(task not in dq for dq in self._deques) and self._pending[
            task
        ] == 0 and self.result.status.get(task) is None
