"""Multi-worker prioritized merge search (paper section VII-E, parallel).

The sequential :func:`~repro.core.merge.prioritized.run_ordered_search`
alternates strictly: pick a leaf, execute it, propagate its score, pick
the next. The parallel driver keeps several candidates in flight while
preserving the paper's pick semantics through a fixed-window protocol:

* **One draw stream.** A single coordinator state (tree, RNG, run set)
  issues draws in order ``j = 0, 1, 2, ...`` under a lock — workers
  *draw from the same* ``pick_prioritized_leaf`` *stream*, they never
  pick independently.
* **Commit in draw order.** Finished candidates park their reports in a
  result buffer; results commit (tree marks, ``leaf.score``, score
  propagation, the evaluation record) strictly in draw order.
* **Fixed lookahead window.** With ``workers = W``, draw ``j`` is issued
  only once results ``0 .. j-W`` have committed, and result ``i`` commits
  only once draw ``i+W-1`` has been issued (or drawing has stopped). The
  picker's view at draw ``j`` is therefore *exactly* the scores of the
  first ``j-W+1`` results — independent of thread timing — so a search is
  deterministic for a given ``(seed, workers)`` pair, and ``workers=1``
  degenerates to the sequential search: same RNG stream, same draw
  sequence, same evaluations.

With ``workers > 1`` the draw *sequence* may differ from sequential (the
picker sees scores ``W-1`` draws late — the price of concurrency), but
every executed candidate is still deterministic: output refs are
content-addressed, and the shared single-flight layer guarantees each
``(component fingerprint, input ref)`` pair executes at most once even
when two in-flight candidates race to a shared prefix — the later one
blocks and records a reuse, so an unbudgeted parallel search reaches
identical final scores, stage output refs, and total executed/reused
counts as the sequential search.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from ..core.context import ExecutionContext
from ..core.executor import Executor
from ..obs import propagation
from ..obs import trace as obs_trace
from ..core.merge.prioritized import (
    RunSet,
    pick_prioritized_leaf,
    pick_random_leaf,
    propagate_leaf_score,
    refresh_scores,
)
from ..core.merge.search_space import MergeScope
from ..core.merge.traversal import (
    CandidateEvaluation,
    apply_candidate_result,
    path_key_of,
    run_candidate,
)
from ..core.merge.tree import TreeNode
from .executor import ParallelExecutor
from .single_flight import SingleFlight

_PICKERS = {"prioritized": pick_prioritized_leaf, "random": pick_random_leaf}


def run_parallel_search(
    root: TreeNode,
    scope: MergeScope,
    executor: Executor | ParallelExecutor,
    context: ExecutionContext,
    method: str = "prioritized",
    workers: int = 2,
    budget: int | None = None,
    time_budget_seconds: float | None = None,
    seed: int = 0,
    flight: SingleFlight | None = None,
) -> list[CandidateEvaluation]:
    """Execute candidates in prioritized or random order on ``workers``
    threads; same contract and return shape as
    :func:`~repro.core.merge.prioritized.run_ordered_search`.

    ``executor`` supplies the checkpoint store, metric, and reuse policy;
    candidate paths are chains, so each candidate runs sequentially
    within itself while candidates run concurrently with each other.
    """
    if method not in _PICKERS:
        raise ValueError(f"unknown search method {method!r}")
    if time_budget_seconds is not None and time_budget_seconds < 0:
        raise ValueError("time_budget_seconds must be non-negative")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    picker = _PICKERS[method]
    engine = ParallelExecutor.from_executor(executor, flight=flight)
    coordinator = _Coordinator(
        root,
        scope,
        engine,
        context,
        picker=picker,
        propagate=method == "prioritized",
        workers=workers,
        budget=budget,
        time_budget_seconds=time_budget_seconds,
        seed=seed,
    )
    return coordinator.search()


class _Coordinator:
    """The draw stream, result buffer, and commit logic behind one search."""

    def __init__(
        self,
        root: TreeNode,
        scope: MergeScope,
        engine: ParallelExecutor,
        context: ExecutionContext,
        picker,
        propagate: bool,
        workers: int,
        budget: int | None,
        time_budget_seconds: float | None,
        seed: int,
    ) -> None:
        self.root = root
        self.scope = scope
        self.engine = engine
        self.context = context
        self.picker = picker
        self.propagate = propagate
        self.workers = workers
        self.budget = budget
        self.time_budget_seconds = time_budget_seconds

        # Trace continuity across the fan-out: worker threads start with
        # an *empty* contextvar context, so without capturing the caller's
        # current span here every candidate span would root a disjoint
        # trace. Workers adopt this parent (adopt-only: with workers=1
        # the caller's span is already current and adoption no-ops), so a
        # traced merge yields one tree — search root over every
        # merge.candidate — that the critical-path analyzer can walk.
        self._trace_parent = obs_trace.current_span()
        self._tracer = obs_trace.default_tracer()

        self._cond = threading.Condition()
        self._rng = np.random.default_rng(seed)
        refresh_scores(root)
        self._run = RunSet(root)
        self._drawn = 0
        self._committed = 0
        self._results: dict[int, tuple] = {}
        self._drawing_done = False
        self._crash: BaseException | None = None
        self._evaluations: list[CandidateEvaluation] = []
        self._clock_start = time.perf_counter()

    # ------------------------------------------------------------- protocol
    def search(self) -> list[CandidateEvaluation]:
        if self.workers == 1:
            self._worker()
        else:
            threads = [
                threading.Thread(
                    target=self._worker, name=f"repro-merge-{i}", daemon=True
                )
                for i in range(self.workers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        if self._crash is not None:
            raise self._crash
        return self._evaluations

    def _worker(self) -> None:
        try:
            with propagation.adopt_remote_context(self._trace_parent):
                self._worker_loop()
        except BaseException as error:  # noqa: BLE001 - surfaced to caller
            with self._cond:
                if self._crash is None:
                    self._crash = error
                self._cond.notify_all()

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                self._drain_commits()
                if self._finished():
                    self._cond.notify_all()
                    return
                drew = self._try_draw()
                if drew is None:
                    if self._finished():
                        self._cond.notify_all()
                        return
                    self._cond.wait()
                    continue
                index, leaf = drew
                if leaf is None:
                    continue  # drawing just stopped; loop to drain/exit
            # Execute outside the lock: this is the parallelism.
            with self._tracer.span("merge.candidate", draw=index):
                report = run_candidate(leaf, self.scope, self.engine, self.context)
            with self._cond:
                self._results[index] = ("run", leaf, report)
                self._drain_commits()
                self._cond.notify_all()

    def _finished(self) -> bool:
        return self._crash is not None or (
            self._drawing_done and self._committed == self._drawn
        )

    def _try_draw(self):
        """Issue the next draw if the window allows; returns ``None`` when
        the caller must wait, ``(index, None)`` when drawing stopped, and
        ``(index, leaf)`` for an executable draw. History-scored leaves
        are buffered as free results immediately. Runs under the lock."""
        if self._drawing_done:
            return None
        j = self._drawn
        if j >= self.workers and self._committed < j - self.workers + 1:
            return None
        if self.budget is not None and j >= self.budget:
            self._drawing_done = True
            self._cond.notify_all()
            return (j, None)
        if (
            self.time_budget_seconds is not None
            and self._evaluations
            and time.perf_counter() - self._clock_start >= self.time_budget_seconds
        ):
            self._drawing_done = True
            self._cond.notify_all()
            return (j, None)
        leaf = self.picker(self.root, self._run, self._rng)
        if leaf is None:
            self._drawing_done = True
            self._cond.notify_all()
            return (j, None)
        self._drawn += 1
        self._run.add(id(leaf))
        if leaf.score is not None and leaf.executed:
            # History-trained candidate: score known, nothing to execute.
            self._results[j] = ("history", leaf)
            self._drain_commits()
            self._cond.notify_all()
            return (j, None)
        return (j, leaf)

    def _drain_commits(self) -> None:
        """Commit buffered results in draw order while the window (or the
        end of drawing) allows. Runs under the lock — this is the only
        place the tree mutates during a search."""
        while True:
            i = self._committed
            if i not in self._results:
                return
            if not self._drawing_done and self._drawn < i + self.workers:
                return
            entry = self._results.pop(i)
            elapsed = time.perf_counter() - self._clock_start
            if entry[0] == "history":
                leaf = entry[1]
                self._evaluations.append(
                    CandidateEvaluation(
                        index=len(self._evaluations),
                        path_key=path_key_of(leaf),
                        components={
                            n.stage: n.component for n in leaf.path_from_root()
                        },
                        report=None,
                        score=leaf.score,
                        elapsed_seconds=elapsed,
                    )
                )
            else:
                _, leaf, report = entry
                if report.failed:
                    leaf.score = None
                apply_candidate_result(leaf, report)
                self._evaluations.append(
                    CandidateEvaluation(
                        index=len(self._evaluations),
                        path_key=path_key_of(leaf),
                        components={
                            n.stage: n.component for n in leaf.path_from_root()
                        },
                        report=report,
                        score=None if report.failed else report.score,
                        elapsed_seconds=elapsed,
                    )
                )
                if self.propagate:
                    propagate_leaf_score(leaf)
            self._committed += 1
