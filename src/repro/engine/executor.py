"""Parallel pipeline executor: DAG-parallel stages + single-flight reuse.

Drop-in for :class:`repro.core.executor.Executor` — same ``run(instance,
context) -> RunReport`` contract, same per-stage semantics, differential-
tested against it — with two additions:

* stages with no dependency between them execute concurrently on a
  work-stealing pool (:class:`~repro.engine.scheduler.DagScheduler`);
* a checkpoint miss is computed through a shared
  :class:`~repro.engine.single_flight.SingleFlight`, so concurrent runs
  (the workers of a parallel merge search) execute each ``(component
  fingerprint, input ref)`` pair at most once — later arrivals block on
  the in-flight computation and record a checkpoint *reuse*, preserving
  the PR pruning invariant under concurrency.

Determinism contract (the differential tests' ground truth): for any
worker count, a run produces the same stage output refs, metrics, score,
reuse flags, and failure stage as the sequential executor given the same
starting checkpoint state. Output refs are content-addressed and every
component draws a seeded RNG from its own fingerprint, so execution
*order* cannot leak into results. On failure the report is trimmed to the
topological prefix ending at the earliest failed stage — exactly the
prefix the sequential executor would have produced — even if concurrent
independent stages beyond it already ran (their checkpoints persist
harmlessly; the store is content-addressed).

Only wall-clock fields (``run_seconds``/``store_seconds``) may differ
between worker counts; nothing else may.
"""

from __future__ import annotations

import threading
import time

from ..core.checkpoint import CheckpointStore
from ..core.component import DatasetComponent, LibraryComponent
from ..core.context import ExecutionContext
from ..core.executor import Executor, RunReport, StageReport
from ..errors import ComponentError
from ..ml.metrics import score_from_metric
from ..storage.hashing import fingerprint_many
from ..core.pipeline import PipelineInstance
from .scheduler import DagScheduler
from .single_flight import COMPUTED, SingleFlight


class ParallelExecutor:
    """Runs pipeline instances with stage-level parallelism.

    ``workers=1`` executes inline in topological order (no threads) but
    still routes checkpoint misses through the single-flight layer, so a
    pool of sequential-looking executors sharing one ``flight`` dedups
    across runs — how the parallel merge driver uses it.
    """

    def __init__(
        self,
        checkpoints: CheckpointStore,
        metric: str = "accuracy",
        reuse: bool = True,
        workers: int = 1,
        flight: SingleFlight | None = None,
        lineage=None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.checkpoints = checkpoints
        self.metric = metric
        self.reuse = reuse
        self.workers = workers
        self.flight = flight if flight is not None else SingleFlight()
        #: optional :class:`repro.provenance.LineageLedger`; records are
        #: emitted during assembly (caller's thread, topological order),
        #: never from worker threads — the ledger stays bit-identical to
        #: the sequential executor's for any worker count.
        self.lineage = lineage

    @classmethod
    def from_executor(
        cls,
        executor: Executor,
        workers: int | None = None,
        flight: SingleFlight | None = None,
    ) -> "ParallelExecutor":
        """Adopt a sequential executor's configuration (store, metric,
        reuse policy) — what the merge driver does with the executor the
        merge built. ``workers``/``flight`` left as ``None`` inherit the
        executor's own (default 1 / a fresh flight); when given, they are
        honored even for an already-parallel executor — a requested
        worker count is never silently dropped."""
        if isinstance(executor, cls):
            if (workers is None or workers == executor.workers) and (
                flight is None or flight is executor.flight
            ):
                return executor
            return cls(
                executor.checkpoints,
                metric=executor.metric,
                reuse=executor.reuse,
                workers=workers if workers is not None else executor.workers,
                flight=flight if flight is not None else executor.flight,
                lineage=executor.lineage,
            )
        return cls(
            executor.checkpoints,
            metric=executor.metric,
            reuse=executor.reuse,
            workers=workers if workers is not None else 1,
            flight=flight,
            lineage=getattr(executor, "lineage", None),
        )

    # ----------------------------------------------------------------- run
    def run(
        self,
        instance: PipelineInstance,
        context: ExecutionContext | None = None,
    ) -> RunReport:
        context = context or ExecutionContext(metric=self.metric)
        state = _RunState(instance)
        order = state.order

        if self.workers == 1:
            for stage in order:
                self._process_stage(stage, instance, context, state)
                if state.failed_bar is not None:
                    break
        else:
            deps = {stage: instance.spec.predecessors(stage) for stage in order}
            scheduler = DagScheduler(order, deps, self.workers)
            scheduler.run(
                lambda stage: self._process_stage(stage, instance, context, state)
            )
        return self._assemble(instance, state, context)

    # ---------------------------------------------------------- one stage
    def _process_stage(
        self,
        stage: str,
        instance: PipelineInstance,
        context: ExecutionContext,
        state: "_RunState",
    ) -> bool:
        """Mirror of the sequential executor's loop body for one stage.

        Returns success (the scheduler's protocol); every divergence from
        ``Executor.run`` here is a differential-test failure waiting.
        """
        component = instance.component(stage)
        stage_report = StageReport(
            stage=stage,
            component_id=component.identifier,
            is_model=isinstance(component, LibraryComponent) and component.is_model,
        )
        state.reports[stage] = stage_report

        preds = instance.spec.predecessors(stage)
        if isinstance(component, DatasetComponent):
            input_ref = component.fingerprint
        else:
            incompatible = [
                p
                for p in preds
                if not component.accepts(instance.component(p).output_schema)
            ]
            if incompatible:
                stage_report.failed = True
                state.mark_failed(stage, reason=None)
                return False
            input_ref = fingerprint_many(
                ["input", *(state.refs[p] for p in preds)]
            )

        if self.reuse:
            record = self.checkpoints.lookup(component, input_ref)
            if record is not None:
                return state.adopt_reuse(stage, stage_report, record)

        rng = context.rng_for(component.fingerprint)
        start = time.perf_counter()

        def compute():
            if isinstance(component, DatasetComponent):
                run_start = time.perf_counter()
                cpu_start = time.thread_time()
                output = component.materialize(rng)
                stage_report.run_seconds = time.perf_counter() - run_start
                stage_report.cpu_seconds = time.thread_time() - cpu_start
            else:
                load_start = time.perf_counter()
                inputs = [state.payload_of(p, self.checkpoints) for p in preds]
                stage_report.store_seconds += time.perf_counter() - load_start
                payload = (
                    inputs[0]
                    if len(inputs) == 1
                    else {p: v for p, v in zip(preds, inputs)}
                )
                run_start = time.perf_counter()
                cpu_start = time.thread_time()
                output = component.run(payload, rng)
                stage_report.run_seconds = time.perf_counter() - run_start
                stage_report.cpu_seconds = time.thread_time() - cpu_start

            metrics = None
            if stage_report.is_model:
                metrics = output.get("metrics", {})
            state.executed_metrics[stage] = metrics

            store_start = time.perf_counter()
            saved = self.checkpoints.save(
                component,
                input_ref,
                output,
                run_seconds=stage_report.run_seconds,
                metrics=metrics,
            )
            stage_report.store_seconds += time.perf_counter() - store_start
            state.set_payload(stage, output)
            return saved

        try:
            if self.reuse:
                record, via = self.flight.compute_or_reuse(
                    self.checkpoints, component, input_ref, compute
                )
            else:
                record, via = compute(), COMPUTED
        except Exception as error:  # noqa: BLE001 - component code is untrusted
            stage_report.run_seconds = time.perf_counter() - start
            stage_report.failed = True
            state.mark_failed(stage, reason=f"{type(error).__name__}: {error}")
            return False

        if via != COMPUTED:
            # Another run computed it while we raced (or the store learned
            # it between our lookup and the flight's re-check): a reuse,
            # exactly as if their run had finished before ours started.
            return state.adopt_reuse(stage, stage_report, record)

        stage_report.executed = True
        stage_report.output_ref = record.output_ref
        stage_report.output_bytes = record.output_bytes
        stage_report.checkpoint_key = record.key
        state.set_ref(stage, record.output_ref)
        return True

    # ------------------------------------------------------------ assembly
    def _assemble(
        self,
        instance: PipelineInstance,
        state: "_RunState",
        context: ExecutionContext,
    ) -> RunReport:
        """Deterministic report construction: walk the topological order
        applying the sequential executor's metric/score rules, trimming to
        the failure prefix when a stage failed. Lineage records are
        emitted here — caller's thread, topological order — so ledger
        content and order never depend on worker interleaving."""
        report = RunReport(pipeline=instance.spec.name)
        order = state.order
        bar = state.failed_bar
        included = order if bar is None else order[: bar + 1]
        for stage in included:
            stage_report = state.reports.get(stage)
            if stage_report is None:  # unreachable: scheduler settles the prefix
                raise ComponentError(f"stage {stage!r} was never processed")
            report.stage_reports.append(stage_report)
            if stage_report.failed:
                continue
            if stage_report.reused:
                record = state.records[stage]
                if record.metrics:
                    report.metrics = dict(record.metrics)
            elif stage_report.executed and stage_report.is_model:
                report.metrics = dict(state.executed_metrics.get(stage) or {})
        if bar is not None:
            report.failed = True
            report.failure_stage = order[bar]
            report.failure_reason = state.failure_reasons.get(order[bar])
            if self.lineage is not None:
                report.lineage_rows = self.lineage.record_run(
                    instance, report, state.refs, seed=context.seed
                )
            return report
        if not report.metrics:
            raise ComponentError(
                f"pipeline {instance.spec.name!r} produced no metrics; "
                "is the sink stage a model component?"
            )
        if self.metric in report.metrics:
            report.score = score_from_metric(self.metric, report.metrics[self.metric])
        if self.lineage is not None:
            report.lineage_rows = self.lineage.record_run(
                instance, report, state.refs, seed=context.seed
            )
        return report


class _RunState:
    """Shared per-run state, guarded by one run-local lock.

    Refs and records are written by the producing stage before any
    consumer is scheduled (the DAG order guarantees it), so readers see
    settled values; the lock makes each update atomic and keeps the
    failure bar consistent across workers.
    """

    def __init__(self, instance: PipelineInstance) -> None:
        self.order = instance.spec.topological_order()
        self._indices = {stage: i for i, stage in enumerate(self.order)}
        self._lock = threading.Lock()
        self.reports: dict[str, StageReport] = {}
        self.refs: dict[str, str] = {}
        self.records: dict[str, object] = {}
        self.payloads: dict[str, object] = {}
        self.executed_metrics: dict[str, dict | None] = {}
        self.failure_reasons: dict[str, str | None] = {}
        self.failed_bar: int | None = None

    def mark_failed(self, stage: str, reason: str | None) -> None:
        with self._lock:
            self.failure_reasons[stage] = reason
            index = self._indices[stage]
            if self.failed_bar is None or index < self.failed_bar:
                self.failed_bar = index

    def adopt_reuse(self, stage: str, stage_report: StageReport, record) -> bool:
        stage_report.reused = True
        stage_report.output_ref = record.output_ref
        stage_report.output_bytes = record.output_bytes
        stage_report.checkpoint_key = record.key
        with self._lock:
            self.refs[stage] = record.output_ref
            self.records[stage] = record
        return True

    def set_ref(self, stage: str, ref: str) -> None:
        with self._lock:
            self.refs[stage] = ref

    def set_payload(self, stage: str, payload) -> None:
        with self._lock:
            self.payloads[stage] = payload

    def payload_of(self, stage: str, checkpoints: CheckpointStore):
        """Lazily materialize a predecessor's output (sequential
        ``Executor._payload_of``). Two consumers may race the same load;
        the loads are deterministic so the duplicate is waste, not a bug."""
        with self._lock:
            if stage in self.payloads:
                return self.payloads[stage]
            record = self.records.get(stage)
        if record is None:
            raise ComponentError(f"no payload or checkpoint for stage {stage!r}")
        payload = checkpoints.load(record)
        with self._lock:
            self.payloads.setdefault(stage, payload)
            return self.payloads[stage]
