"""Admission throttles: per-tenant token buckets and quota arithmetic.

Both mechanisms run *before* a request reaches repository state, so a
denial is always clean — nothing was grafted, no ref moved. Rate
limiting answers "how often", quotas answer "how much":

* :class:`TokenBucket` — the classic leaky-bucket dual. Each request
  spends one token; tokens refill continuously at ``rate_per_second``
  up to ``burst``. The clock is injectable so tests are deterministic.
* :func:`incoming_new_bytes` — how much *new* tenant-logical storage a
  write request would commit if admitted, counting only blobs whose
  digest the target repository does not already hold (replays and
  within-request duplicates are free, matching the store's own dedup).
"""

from __future__ import annotations

import threading
import time


class TokenBucket:
    """Continuous-refill token bucket; thread-safe.

    ``burst`` is both the bucket capacity and the initial fill, so a
    fresh tenant can do a burst of work (a clone is several requests)
    before the steady-state rate applies.
    """

    def __init__(
        self,
        rate_per_second: float,
        burst: float,
        clock=time.monotonic,
    ):
        if rate_per_second <= 0:
            raise ValueError("rate_per_second must be positive")
        if burst <= 0:
            raise ValueError("burst must be positive")
        self.rate_per_second = float(rate_per_second)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()
        self._lock = threading.Lock()

    def _refill_locked(self) -> None:
        now = self._clock()
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(
                self.burst, self._tokens + elapsed * self.rate_per_second
            )
        self._stamp = now

    def try_acquire(self, cost: float = 1.0) -> bool:
        """Spend ``cost`` tokens if available; False means throttled."""
        with self._lock:
            self._refill_locked()
            if self._tokens + 1e-9 < cost:
                return False
            self._tokens -= cost
            return True

    def available(self) -> float:
        with self._lock:
            self._refill_locked()
            return self._tokens


def incoming_new_bytes(view, digests, blobs) -> int:
    """Tenant-logical bytes a write would add to ``view`` if admitted.

    ``digests``/``blobs`` are the request's parallel chunk lists (schema
    validation has already guaranteed the pairing). A digest the view
    already holds adds nothing; a digest repeated within the request is
    charged once. Chunks *other* tenants hold still count in full —
    quotas charge logical usage, the physical dedup is the operator's.
    """
    seen: set[str] = set()
    new_bytes = 0
    for digest, blob in zip(digests, blobs):
        if digest in seen or view.contains(digest):
            continue
        seen.add(digest)
        new_bytes += len(blob)
    return new_bytes
