"""HTTP front of the hub: path-routed, bearer-authenticated RPC.

One endpoint per hosted repository::

    POST /t/<tenant>/<repo>/rpc        Authorization: Bearer <token>

The handler is deliberately thin: it extracts (tenant, repo, token,
body) and hands them to :meth:`RepositoryHub.handle_request`, which owns
admission and routing and *never raises* — so every application-level
outcome, including auth/quota/rate denials, travels as an HTTP 200 with
a typed error body the client maps back onto the exception hierarchy
(:func:`repro.remote.protocol.raise_remote_error`). HTTP status codes
are reserved for transport-level problems: unknown paths (404), bad
framing (400), oversized bodies (413), handler crashes (500).

Connection discipline mirrors :mod:`repro.remote.server`: HTTP/1.1
keep-alive, Nagle disabled, idle timeout, and bounded serving via a
request budget — ``repro hub serve --requests N`` works exactly like the
single-repo ``repro serve``.
"""

from __future__ import annotations

import http.server
import re

from ..errors import AuthenticationError
from ..remote.server import BaseRPCHandler
from .auth import NAME_FRAGMENT
from .hub import RepositoryHub

#: /t/<tenant>/<repo> with an optional /rpc suffix (HttpTransport always
#: appends one). Composed from the one authoritative name grammar.
ROUTE = re.compile(
    f"^/t/(?P<tenant>{NAME_FRAGMENT})/(?P<repo>{NAME_FRAGMENT})(?:/rpc)?/?$"
)


def bearer_token(header_value: str | None) -> str | None:
    """The token of an ``Authorization: Bearer ...`` header, else None."""
    if not header_value:
        return None
    scheme, _, credential = header_value.partition(" ")
    if scheme.lower() != "bearer" or not credential.strip():
        return None
    return credential.strip()


class _HubHandler(BaseRPCHandler):
    """Path-routed multi-repository endpoint: tenant, repo, and bearer
    token are extracted here; admission and execution live in
    :meth:`RepositoryHub.handle_request`. All hardened HTTP plumbing
    (body validation, 413, short-read teardown, 500 mapping, bounded
    serving) is inherited from :class:`BaseRPCHandler`."""

    server_version = "mlcask-hub/1"
    unknown_endpoint_message = "unknown endpoint (expected /t/<tenant>/<repo>/rpc)"
    internal_error_prefix = "internal hub error"

    def route_request(self):
        route = ROUTE.match(self.path)
        if route is None:
            return None
        hub: RepositoryHub = self.server.hub
        token = bearer_token(self.headers.get("Authorization"))
        return lambda payload: hub.handle_request(
            route["tenant"], route["repo"], token, payload
        )

    def count_request(self) -> None:
        self.server.hub.count_request()

    def requests_handled(self) -> int:
        return self.server.hub.requests_handled

    def authorize_debug(self) -> bool:
        """Debug readouts (profiler, slow-op captures) are multi-tenant
        forensics — code paths, tenant names, span attributes — so they
        require *a* valid tenant token (any tenant: the data is not
        partitioned, exactly like /metrics label values; unlike /metrics
        it is gated because it exposes live stacks)."""
        try:
            self.server.hub.authenticator.authenticate(
                bearer_token(self.headers.get("Authorization"))
            )
        except AuthenticationError:
            return False
        return True

    def slow_captures(self) -> list[dict]:
        return self.server.hub.slow_ops.captures()


class HubHTTPServer(http.server.ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`RepositoryHub`."""

    daemon_threads = True

    def __init__(
        self,
        address,
        hub: RepositoryHub,
        verbose: bool = False,
        max_request_bytes: int | None = None,
        idle_timeout: float | None = None,
        profiler=None,
    ):
        super().__init__(address, _HubHandler)
        self.hub = hub
        self.verbose = verbose
        self.max_request_bytes = max_request_bytes
        self.idle_timeout = idle_timeout
        # GET /metrics renders the hub's registry: admission outcomes,
        # per-repo request/latency series, chunk bytes — one scrape.
        self.metrics_registry = hub.registry
        # GET /healthz and /readyz answer from the hub's health model
        # (unauthenticated, boolean-plus-reasons only; the detailed
        # report is the token-gated health op).
        self.health_monitor = hub.health
        # GET /debug/profile (token-gated) reads this; None answers 404.
        self.profiler = profiler
        # When set, handlers stop honouring keep-alive once this many
        # requests have been handled (bounded serving, see the CLI).
        self.request_limit: int | None = None

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def repo_url(self, tenant: str, repo: str) -> str:
        """The clone/push/pull URL of one hosted repository."""
        return f"{self.url}/t/{tenant}/{repo}"


def serve_hub(
    hub: RepositoryHub,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    max_request_bytes: int | None = None,
    idle_timeout: float | None = None,
    profiler=None,
) -> HubHTTPServer:
    """Expose every repository of ``hub`` at
    ``http://host:port/t/<tenant>/<repo>/rpc``; returns the server
    (caller drives the loop, ``port=0`` binds an ephemeral port).

    ``profiler`` (optional, a started
    :class:`~repro.obs.profiler.SamplingProfiler`) backs the token-gated
    ``GET /debug/profile`` endpoint; the caller owns its lifecycle."""
    return HubHTTPServer(
        (host, port),
        hub,
        verbose=verbose,
        max_request_bytes=max_request_bytes,
        idle_timeout=idle_timeout,
        profiler=profiler,
    )
