"""RepositoryHub: many repositories, many tenants, one process.

The hub is the piece that turns a single-repo ``RepositoryServer`` into
a hosting service: it routes ``{tenant}/{repo}`` addresses to per-repo
servers, keeps only a bounded working set of them loaded (LRU-evicting
idle repos back to disk), shares one chunk backend across every
repository it hosts, and runs an admission pipeline — authentication,
rate limiting, quota — in front of every request.

Request path (:meth:`RepositoryHub.handle_request`)::

    token ──authorize──▶ tenant ──token bucket──▶ decode op
        reads:  route to the loaded server, concurrent per repo
        writes: per-tenant serialization ▶ quota pre-check ▶ server

The quota check happens *before* the repository server sees the
request, and every admission denial is raised before any state is
touched — a rejected push leaves the target repo bit-identical, which
the hub tests assert. Inside a repository, the PR-2 reader-writer lock
and response cache still apply unchanged; the hub adds nothing to the
per-repo hot path beyond one dict lookup and a token-bucket tick.

Persistence layout (``root`` directory)::

    <root>/hub.json                      tenant registry (tokens, quotas)
    <root>/chunks/ab/cdef...             the shared chunk backend (bytes,
                                         stored once deployment-wide)
    <root>/tenants/<t>/<r>/state.json    per-repo version-control state
    <root>/tenants/<t>/<r>/recipes.json  blob digest -> chunk digests
    <root>/tenants/<t>/<r>/checkpoints.json
    <root>/tenants/<t>/<r>/lineage.json  provenance ledger (append-only)
    <root>/tenants/<t>/<r>/chunks.json   holdings manifest: [digest, size]
                                         pairs — the repo's membership in
                                         the shared backend

A repository directory holds *no* chunk bytes of its own: the holdings
manifest is the per-repo claim on the shared backend, and backend
refcounts are rebuilt from these manifests at startup. With
``root=None`` the hub is fully in-memory (tests, examples): eviction is
disabled and nothing persists.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict

from ..core.persistence import (
    CHECKPOINTS_FILE,
    LINEAGE_FILE,
    RECIPES_FILE,
    STATE_FILE,
    load_repository,
    recipe_from_dict,
    recipe_to_dict,
    record_from_dict,
    record_to_dict,
    repository_state,
    write_json_atomic,
)
from ..core.repository import MLCask
from ..errors import (
    AuthenticationError,
    AuthorizationError,
    HubError,
    QuotaExceededError,
    RateLimitedError,
    RemoteProtocolError,
    RepositoryNotFoundError,
    ServerOverloadedError,
)
from ..obs import propagation
from ..obs.health import HealthMonitor
from ..obs.metrics import MetricsRegistry
from ..obs.slo import SLOConfig
from ..obs.slowops import SlowOpCapture
from ..obs.trace import Tracer
from ..remote import pack
from ..remote.protocol import OPS, WRITE_OPS, decode_message, error_response
from ..remote.server import RepositoryServer
from ..remote.transport import Transport
from ..storage.chunk_store import FileChunkStore
from ..storage.object_store import ObjectStore
from .auth import TenantConfig, TokenAuthenticator, validate_name
from .backend import SharedChunkBackend, TenantChunkStore
from .quota import TokenBucket, incoming_new_bytes

HUB_CONFIG_FILE = "hub.json"

#: Admission-denial reasons, as the ``repro_admission_denied_total``
#: ``reason`` label reports them; keyed by most-specific error type.
_DENIAL_REASONS = (
    (AuthenticationError, "auth"),
    (AuthorizationError, "auth"),
    (QuotaExceededError, "quota"),
    (RateLimitedError, "rate"),
    (RepositoryNotFoundError, "not_found"),
    (ServerOverloadedError, "overload"),
    (HubError, "hub"),
    (RemoteProtocolError, "protocol"),
)


def _denial_reason(error: Exception) -> str:
    for cls, reason in _DENIAL_REASONS:
        if isinstance(error, cls):
            return reason
    return "internal"

CHUNKS_DIR = "chunks"
TENANTS_DIR = "tenants"
HOLDINGS_FILE = "chunks.json"
HUB_FORMAT_VERSION = 1

#: Default bound on simultaneously loaded repositories. Sized for "many
#: repos, few hot": a hub serving hundreds of repos keeps only the
#: working set resident, everything else lives as metadata + shared
#: chunks on disk until a request touches it.
DEFAULT_MAX_LOADED_REPOS = 16

#: Read operations a push performs *before* its first write. A missing
#: repository answers these with empty-repo semantics (served from an
#: ephemeral, never-registered instance) so "push to a repo that does
#: not exist yet" bootstraps naturally; content reads (``fetch``,
#: ``get_chunks``) on a missing repo stay a typed not-found, so a
#: typo'd clone fails loudly instead of yielding an empty repository.
PREFLIGHT_OPS = frozenset({"manifest", "known_commits", "missing_chunks"})


class HostedRepository:
    """One loaded repository: its server, its backend view, its traffic."""

    __slots__ = (
        "tenant", "name", "view", "server", "inflight",
        "adopt_config", "provisional",
    )

    def __init__(self, tenant: str, name: str, view: TenantChunkStore):
        self.tenant = tenant
        self.name = name
        self.view = view
        self.server: RepositoryServer | None = None
        #: Requests currently executing against this repo; an LRU victim
        #: must be idle (inflight == 0) so eviction never persists a repo
        #: mid-mutation.
        self.inflight = 0
        #: True only for repos auto-created by an incoming push: those
        #: adopt the pusher's metric/seed on first contact. Repos an
        #: operator created explicitly (``create_repo``) or that were
        #: loaded from disk keep their configuration.
        self.adopt_config = False
        #: An auto-created repo stays provisional until something lands
        #: in it; a provisional repo that goes idle while still empty is
        #: discarded (see :meth:`RepositoryHub._release`) so a denied or
        #: rejected creating push never squats the name.
        self.provisional = False

    @property
    def key(self) -> tuple[str, str]:
        return (self.tenant, self.name)


class RepositoryHub:
    """Multi-tenant repository host over one shared chunk backend."""

    def __init__(
        self,
        root: str | os.PathLike[str] | None = None,
        *,
        authenticator: TokenAuthenticator | None = None,
        backend: SharedChunkBackend | None = None,
        max_loaded_repos: int = DEFAULT_MAX_LOADED_REPOS,
        max_pack_bytes: int = pack.DEFAULT_MAX_PACK_BYTES,
        cache_entries: int = 128,
        default_metric: str = "accuracy",
        default_seed: int = 0,
        clock=time.monotonic,
        registry=None,
        tracer=None,
        slow_ops=None,
        slo: SLOConfig | None = None,
    ):
        self.root = os.fspath(root) if root is not None else None
        self.authenticator = authenticator or TokenAuthenticator()
        if backend is not None:
            self.backend = backend
        elif self.root is not None:
            self.backend = SharedChunkBackend(
                FileChunkStore(os.path.join(self.root, CHUNKS_DIR))
            )
        else:
            self.backend = SharedChunkBackend()
        self.max_loaded_repos = max(1, max_loaded_repos)
        self.max_pack_bytes = max_pack_bytes
        self.cache_entries = cache_entries
        self.default_metric = default_metric
        self.default_seed = default_seed
        self.clock = clock

        self._lock = threading.RLock()
        self._loaded: OrderedDict[tuple[str, str], HostedRepository] = OrderedDict()
        #: Logical bytes of *unloaded* persisted repos, keyed (tenant,
        #: repo); loaded repos report live through their views instead.
        #: ``_persisted_by_tenant`` is the per-tenant aggregate of the
        #: same numbers, so the quota check on every write costs O(the
        #: tenant's *loaded* repos), never a hub-wide scan.
        self._persisted_usage: dict[tuple[str, str], int] = {}
        self._persisted_by_tenant: dict[str, int] = {}
        #: Keys currently being loaded from or persisted to disk. The
        #: I/O itself runs *outside* the hub lock (a cold load must not
        #: stall every tenant's traffic); requests racing the same key
        #: wait on its event and retry.
        self._pending: dict[tuple[str, str], threading.Event] = {}
        self._tenant_locks: dict[str, threading.Lock] = {}
        self._buckets: dict[str, TokenBucket] = {}
        #: Serializes config writes only (never request-path state): the
        #: snapshot happens inside it, so the last writer to the file
        #: always carries every registration that preceded its turn.
        self._config_lock = threading.Lock()
        self.requests_handled = 0
        self.evictions = 0
        self.loads = 0

        # Telemetry: a hub defaults to *real* instruments (it fronts the
        # /metrics endpoint), one registry/tracer shared by every hosted
        # RepositoryServer so per-repo series land in one scrape and a
        # request's spans — admission, op, lock wait, chunk import —
        # share one trace. Pass the null singletons to opt out.
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        # One slow-op capture ring shared by every hosted server, so the
        # hub's /debug/slow readout covers all tenants (each capture is
        # stamped with its tenant/repo context by the server).
        self.slow_ops = slow_ops if slow_ops is not None else SlowOpCapture()
        # The health model behind /healthz, /readyz, the health op, and
        # admission shedding. One deployment-wide monitor over the shared
        # registry/tracer: hosted servers answer the health op from it,
        # so a tenant's view is the hub's view (per-op windows aggregate
        # across tenants — overload is a shared-substrate condition).
        self.slo = slo if slo is not None else SLOConfig.default()
        self.health = HealthMonitor(
            registry=self.registry, slo=self.slo, tracer=self.tracer
        )
        self._m_admission = self.registry.counter(
            "repro_admission_total",
            "Hub admission decisions, by tenant and outcome",
            ("tenant", "outcome"),
        )
        self._m_denied = self.registry.counter(
            "repro_admission_denied_total",
            "Hub admission denials, by tenant and reason",
            ("tenant", "reason"),
        )
        self._m_loaded = self.registry.gauge(
            "repro_hub_loaded_repos",
            "Repositories currently resident in the hub's working set",
        )
        self._m_loads = self.registry.counter(
            "repro_hub_loads_total", "Cold repository loads from disk"
        )
        self._m_evictions = self.registry.counter(
            "repro_hub_evictions_total",
            "Idle repositories evicted back to disk",
        )

        if self.root is not None:
            os.makedirs(self.root, exist_ok=True)
            self._load_config()
            self._scan_persisted()

    # ----------------------------------------------------------- tenants
    def add_tenant(
        self,
        name: str,
        tokens=(),
        quota_bytes: int | None = None,
        rate_per_second: float | None = None,
        burst: float | None = None,
    ) -> TenantConfig:
        """Register (or reconfigure) a tenant; persists when disk-backed.

        Re-adding an existing tenant *replaces* its config — that is how
        tokens rotate and quotas change."""
        config = TenantConfig(
            name=name,
            tokens=tuple(tokens),
            quota_bytes=quota_bytes,
            rate_per_second=rate_per_second,
            burst=burst,
        )
        with self._lock:
            self.authenticator.add_tenant(config)
            self._buckets.pop(name, None)  # rebuilt from the new terms
        # LK002: the config write is disk I/O and must not run under the
        # hub lock — it would stall every tenant's admission for the
        # duration of an fsync. _save_config serializes itself.
        self._save_config()
        return config

    def _bucket_for(self, config: TenantConfig) -> TokenBucket | None:
        if config.rate_per_second is None:
            return None
        with self._lock:
            bucket = self._buckets.get(config.name)
            if bucket is None:
                burst = (
                    config.burst
                    if config.burst is not None
                    else max(1.0, config.rate_per_second)
                )
                bucket = TokenBucket(
                    config.rate_per_second, burst, clock=self.clock
                )
                self._buckets[config.name] = bucket
            return bucket

    def _tenant_lock(self, tenant: str) -> threading.Lock:
        # Naming contract with repro.analysis.conventions: a helper
        # named ``_<entity>_lock`` returning a per-key Lock is treated
        # as a lock *map* by the lint — per-entity, never service-wide —
        # so LK002 does not fire under it, but LK001 still orders it
        # against every other lock. Rename only together with the lint.
        with self._lock:
            lock = self._tenant_locks.get(tenant)
            if lock is None:
                lock = self._tenant_locks[tenant] = threading.Lock()
            return lock

    # ------------------------------------------------------------ config
    def _config_path(self) -> str:
        return os.path.join(self.root, HUB_CONFIG_FILE)

    def _save_config(self) -> None:
        if self.root is None:
            return
        # _config_lock orders concurrent writers; because the tenant
        # snapshot is taken *after* acquiring it, the last writer's file
        # reflects every registration that happened before its turn.
        # The write below is the lock's whole purpose, so it is exempt
        # from the I/O-under-lock rule (it guards no request-path
        # state; admission never touches it).
        with self._config_lock:
            state = {
                "format": HUB_FORMAT_VERSION,
                "tenants": {
                    config.name: config.to_dict()
                    for config in self.authenticator.tenants()
                },
            }
            write_json_atomic(  # repro-lint: disable=LK002 - see above
                self._config_path(), state, indent=2, sort_keys=True
            )

    def _load_config(self) -> None:
        path = self._config_path()
        if not os.path.isfile(path):
            return
        with open(path) as fh:
            state = json.load(fh)
        if state.get("format") != HUB_FORMAT_VERSION:
            raise HubError(
                f"unsupported hub config format {state.get('format')!r}"
            )
        for name, entry in state.get("tenants", {}).items():
            self.authenticator.add_tenant(TenantConfig.from_dict(name, entry))

    # ------------------------------------------------------- persistence
    def _repo_dir(self, tenant: str, name: str) -> str:
        return os.path.join(self.root, TENANTS_DIR, tenant, name)

    def _scan_persisted(self) -> None:
        """Rebuild backend refcounts and usage from on-disk manifests."""
        tenants_root = os.path.join(self.root, TENANTS_DIR)
        if not os.path.isdir(tenants_root):
            return
        for tenant in sorted(os.listdir(tenants_root)):
            tenant_dir = os.path.join(tenants_root, tenant)
            if not os.path.isdir(tenant_dir):
                continue
            for name in sorted(os.listdir(tenant_dir)):
                repo_dir = os.path.join(tenant_dir, name)
                if not os.path.isfile(os.path.join(repo_dir, STATE_FILE)):
                    continue
                holdings = self._read_holdings(repo_dir)
                self.backend.register_holdings(holdings)
                self._record_persisted_locked(
                    (tenant, name), sum(holdings.values())
                )

    def _record_persisted_locked(self, key: tuple[str, str], size: int) -> None:
        self._forget_persisted_locked(key)
        self._persisted_usage[key] = size
        self._persisted_by_tenant[key[0]] = (
            self._persisted_by_tenant.get(key[0], 0) + size
        )

    def _forget_persisted_locked(self, key: tuple[str, str]) -> None:
        size = self._persisted_usage.pop(key, None)
        if size is not None:
            self._persisted_by_tenant[key[0]] -= size

    @staticmethod
    def _read_holdings(repo_dir: str) -> dict[str, int]:
        path = os.path.join(repo_dir, HOLDINGS_FILE)
        if not os.path.isfile(path):
            return {}
        with open(path) as fh:
            return {
                digest: size for digest, size in json.load(fh)["chunks"]
            }

    def _persist_hosted(self, hosted: HostedRepository) -> None:
        """Write a repo's metadata + holdings manifest (bytes already
        live in the shared backend, written at request time)."""
        if self.root is None:
            return
        repo = hosted.server.repo
        repo_dir = self._repo_dir(hosted.tenant, hosted.name)
        os.makedirs(repo_dir, exist_ok=True)
        write_json_atomic(
            os.path.join(repo_dir, STATE_FILE),
            repository_state(repo),
            sort_keys=True,
        )
        write_json_atomic(
            os.path.join(repo_dir, RECIPES_FILE),
            {"recipes": [recipe_to_dict(r) for r in repo.objects.recipes()]},
            sort_keys=True,
        )
        write_json_atomic(
            os.path.join(repo_dir, CHECKPOINTS_FILE),
            {"records": [record_to_dict(r) for r in repo.checkpoints.records()]},
            sort_keys=True,
        )
        write_json_atomic(
            os.path.join(repo_dir, LINEAGE_FILE),
            repo.lineage.to_payload(),
            sort_keys=True,
        )
        write_json_atomic(
            os.path.join(repo_dir, HOLDINGS_FILE),
            {"chunks": sorted(hosted.view.holdings().items())},
            sort_keys=True,
        )

    # ------------------------------------------------------- repo lookup
    def _new_hosted(
        self,
        tenant: str,
        name: str,
        metric: str,
        seed: int,
        holdings: dict[str, int] | None = None,
    ) -> HostedRepository:
        view = TenantChunkStore(self.backend, holdings)
        hosted = HostedRepository(tenant, name, view)
        repo = MLCask(
            metric=metric, seed=seed, objects=ObjectStore(chunk_store=view)
        )
        # Lineage records minted on the hub (none today — hosted repos
        # never run pipelines — but imported ones keep the stamp they
        # arrived with) attribute to this tenant.
        repo.lineage.tenant = tenant
        hosted.server = RepositoryServer(
            repo,
            on_change=lambda _repo: self._persist_hosted(hosted),
            max_pack_bytes=self.max_pack_bytes,
            cache_entries=self.cache_entries,
            registry=self.registry,
            tracer=self.tracer,
            metric_labels={"tenant": tenant, "repo": name},
            slow_ops=self.slow_ops,
            health_monitor=self.health,
        )
        return hosted

    def _load_repo(self, tenant: str, name: str) -> HostedRepository:
        repo_dir = self._repo_dir(tenant, name)
        state_path = os.path.join(repo_dir, STATE_FILE)
        with open(state_path) as fh:
            state = json.load(fh)
        holdings = self._read_holdings(repo_dir)
        hosted = self._new_hosted(
            tenant, name, state["metric"], state["seed"], holdings
        )
        repo = hosted.server.repo
        load_repository(state_path, repo=repo)
        recipes_path = os.path.join(repo_dir, RECIPES_FILE)
        if os.path.isfile(recipes_path):
            with open(recipes_path) as fh:
                for entry in json.load(fh)["recipes"]:
                    repo.objects.add_recipe(recipe_from_dict(entry))
        checkpoints_path = os.path.join(repo_dir, CHECKPOINTS_FILE)
        if os.path.isfile(checkpoints_path):
            with open(checkpoints_path) as fh:
                for entry in json.load(fh)["records"]:
                    repo.checkpoints.import_record(record_from_dict(entry))
        lineage_path = os.path.join(repo_dir, LINEAGE_FILE)
        if os.path.isfile(lineage_path):  # absent in pre-ledger directories
            with open(lineage_path) as fh:
                repo.lineage.load_payload(json.load(fh))
        self.loads += 1
        self._m_loads.inc()
        return hosted

    def create_repo(
        self,
        tenant: str,
        name: str,
        metric: str | None = None,
        seed: int | None = None,
    ) -> HostedRepository:
        """Explicitly create an empty repository in a tenant's namespace.

        Pushes to a missing repo auto-create it (adopting the pushing
        client's metric/seed), so this exists for operators who want the
        repo configured before first contact."""
        validate_name("tenant", tenant)
        validate_name("repository", name)
        if not self.authenticator.has_tenant(tenant):
            raise HubError(f"unknown tenant {tenant!r}; add the tenant first")
        key = (tenant, name)
        with self._lock:
            if (
                key in self._loaded
                or key in self._persisted_usage
                or key in self._pending
            ):
                raise HubError(f"repository {tenant}/{name} already exists")
            hosted = self._new_hosted(
                tenant,
                name,
                metric if metric is not None else self.default_metric,
                seed if seed is not None else self.default_seed,
            )
            self._loaded[key] = hosted
            # Pin through the initial persist: the inflight count keeps
            # eviction off the brand-new repo, the pending event keeps
            # concurrent requests (whose on_change would race this very
            # persist on the same files) waiting until it is complete.
            hosted.inflight += 1
            event = self._pending[key] = threading.Event()
            victims = self._select_victims_locked()
            self._m_loaded.set(len(self._loaded))
        try:
            self._persist_hosted(hosted)
        finally:
            with self._lock:
                hosted.inflight -= 1
                del self._pending[key]
            event.set()
        self._persist_victims(victims)
        return hosted

    def _acquire(self, tenant: str, name: str, create: bool) -> HostedRepository:
        """The loaded repo for ``key``, loading or creating as needed.

        Disk I/O (cold load, eviction persist) runs outside the hub
        lock; concurrent requests for a key mid-I/O wait on its pending
        event and retry.
        """
        key = (tenant, name)
        while True:
            with self._lock:
                pending = self._pending.get(key)
                if pending is None:
                    hosted = self._loaded.get(key)
                    if hosted is not None:
                        self._loaded.move_to_end(key)
                        hosted.inflight += 1
                        return hosted
                    load = key in self._persisted_usage
                    if not load and not create:
                        raise RepositoryNotFoundError(
                            f"no repository {tenant}/{name} on this hub"
                        )
                    event = self._pending[key] = threading.Event()
            if pending is not None:
                pending.wait()
                continue
            # This thread owns the slot: do the I/O unlocked.
            try:
                if load:
                    hosted = self._load_repo(tenant, name)
                else:
                    hosted = self._new_hosted(
                        tenant, name, self.default_metric, self.default_seed
                    )
                    hosted.adopt_config = True
                    hosted.provisional = True
            except BaseException:
                with self._lock:
                    del self._pending[key]
                event.set()
                raise
            with self._lock:
                self._loaded[key] = hosted
                self._forget_persisted_locked(key)
                hosted.inflight += 1
                del self._pending[key]
                victims = self._select_victims_locked()
                self._m_loaded.set(len(self._loaded))
            event.set()
            self._persist_victims(victims)
            return hosted

    def _release(self, hosted: HostedRepository) -> None:
        with self._lock:
            hosted.inflight -= 1
            if not hosted.provisional or hosted.inflight:
                return
            # An auto-created repo that goes idle without anything having
            # landed in it (denied push, server-side rejection, plain
            # probe) must not outlive its requests: a phantom empty repo
            # would shadow RepositoryNotFoundError for every later read
            # and squat the name forever. Checked at *every* release so
            # a concurrent reader overlapping the creating request only
            # defers the discard to whichever request finishes last.
            repo = hosted.server.repo
            if len(repo.graph) or repo.branches.pipelines() or hosted.view.held_bytes:
                hosted.provisional = False  # something landed: keep it
                return
            if self._loaded.get(hosted.key) is hosted:
                del self._loaded[hosted.key]
                self._m_loaded.set(len(self._loaded))

    def _select_victims_locked(self) -> list[HostedRepository]:
        """Pop idle LRU repos beyond capacity; caller persists them
        *outside* the hub lock (:meth:`_persist_victims`).

        Selection already moves each victim's usage to the persisted
        table (its holdings cannot change while idle and pending), so
        quota arithmetic never sees a gap; the pending event keeps
        re-acquisition of the key waiting until its files are complete.
        """
        if self.root is None:
            return []  # nowhere to persist evicted state; keep resident
        victims = []
        while len(self._loaded) > self.max_loaded_repos:
            victim = next(
                (h for h in self._loaded.values() if h.inflight == 0), None
            )
            if victim is None:
                break  # everything is mid-request; retry on a later call
            del self._loaded[victim.key]
            self._record_persisted_locked(victim.key, victim.view.held_bytes)
            self._pending[victim.key] = threading.Event()
            self.evictions += 1
            self._m_evictions.inc()
            victims.append(victim)
        self._m_loaded.set(len(self._loaded))
        return victims

    def _persist_victims(self, victims: list[HostedRepository]) -> None:
        for victim in victims:
            try:
                self._persist_hosted(victim)
            except Exception:  # noqa: BLE001 - eviction is asynchronous to
                # the request that triggered it; failing *that* client (and
                # leaking its inflight count) for an unrelated repo's disk
                # problem would be wrong. Keep the victim resident instead
                # of pointing the persisted table at incomplete files — the
                # failure resurfaces on the next push's on_change persist,
                # which reports to the right client.
                with self._lock:
                    self._forget_persisted_locked(victim.key)
                    self._loaded[victim.key] = victim
                    self._loaded.move_to_end(victim.key, last=False)
                    event = self._pending.pop(victim.key)
                    self._m_loaded.set(len(self._loaded))
                event.set()
            else:
                with self._lock:
                    event = self._pending.pop(victim.key)
                event.set()

    def loaded_repos(self) -> list[tuple[str, str]]:
        with self._lock:
            return list(self._loaded)

    def list_repos(self, tenant: str) -> list[str]:
        with self._lock:
            names = {r for (t, r) in self._loaded if t == tenant}
            names.update(r for (t, r) in self._persisted_usage if t == tenant)
            return sorted(names)

    # ------------------------------------------------------- maintenance
    def gc_repo(self, tenant: str, name: str):
        """Sweep a hosted repository's unreferenced content.

        The hub-side mirror of ``repro gc``: live roots are the stage
        outputs of every commit, everything else the repo holds —
        orphan chunks from interrupted streamed pushes included — is
        released from the shared backend (physically reclaimed only when
        the last holding repo lets go) and the tenant's logical usage
        shrinks accordingly. Runs under the repo's exclusive lock and
        re-persists, so readers never observe a half-swept store.
        Returns the :class:`~repro.storage.gc.GCReport`.
        """
        from ..storage.gc import collect_garbage, live_digests_of_repo

        hosted = self._acquire(tenant, name, create=False)
        try:
            with self._tenant_lock(tenant):
                with hosted.server.maintenance() as repo:
                    live = live_digests_of_repo(repo)
                    repo.checkpoints.prune(live)
                    # Append-only ledger: records for swept outputs are
                    # kept but flagged, so provenance survives the sweep.
                    repo.lineage.mark_collected(live)
                    report = collect_garbage(repo.objects, live)
                self._persist_hosted(hosted)
                return report
        finally:
            self._release(hosted)

    # -------------------------------------------------------- accounting
    def tenant_usage(self, tenant: str) -> int:
        """Tenant-logical reachable bytes across all of its repos —
        what the quota is checked against.

        O(loaded repos), which ``max_loaded_repos`` bounds: unloaded
        repos are pre-aggregated per tenant, so the per-write quota
        check never scans the hub-wide repo table."""
        with self._lock:
            usage = self._persisted_by_tenant.get(tenant, 0)
            usage += sum(
                hosted.view.held_bytes
                for (t, _), hosted in self._loaded.items()
                if t == tenant
            )
            return usage

    def stats(self) -> dict:
        """Hub-wide numbers the benchmark and tests read."""
        # Health computed before taking the hub lock: the monitor reads
        # the registry (its own lock) and must not extend this hold.
        ready, reasons = self.health.ready()
        health_window = self.health.window()
        with self._lock:
            return {
                "health": {
                    "ready": ready,
                    "reasons": reasons,
                    "queue_depth": health_window["queue_depth"],
                    "window_seconds": health_window["seconds"],
                },
                "physical_bytes": self.backend.physical_bytes,
                "chunks": self.backend.chunk_count(),
                "loaded_repos": len(self._loaded),
                "requests_handled": self.requests_handled,
                "evictions": self.evictions,
                "loads": self.loads,
                "tenant_usage": {
                    config.name: self.tenant_usage(config.name)
                    for config in self.authenticator.tenants()
                },
                "slow_ops": self.slow_ops.snapshot(),
                "trace": {
                    "spans_recorded": getattr(
                        self.tracer, "spans_recorded", 0
                    ),
                    "sample_rate": getattr(self.tracer, "sample_rate", 1.0),
                },
            }

    # --------------------------------------------------------- admission
    def count_request(self) -> None:
        with self._lock:
            self.requests_handled += 1

    def _enforce_quota(
        self,
        config: TenantConfig,
        hosted: HostedRepository,
        op: str,
        meta: dict,
        blobs: list,
    ) -> None:
        if config.quota_bytes is None:
            return
        digests = meta.get("chunk_digests" if op == "push" else "digests", [])
        if not isinstance(digests, list):
            digests = []  # malformed; the server rejects it after us
        new_bytes = incoming_new_bytes(hosted.view, digests, blobs)
        usage = self.tenant_usage(config.name)
        if usage + new_bytes > config.quota_bytes:
            raise QuotaExceededError(
                f"tenant {config.name!r} is using {usage} of "
                f"{config.quota_bytes} quota bytes; this write would add "
                f"{new_bytes} more — have the operator sweep unreferenced "
                "content (repro hub gc) or raise the quota"
            )

    @staticmethod
    def _maybe_adopt_config(hosted: HostedRepository, meta: dict) -> None:
        """First push into a still-empty *auto-created* repo fixes its
        metric/seed. Repos configured explicitly (``create_repo
        --metric/--seed``) or loaded from disk are never overwritten —
        the operator's configuration wins over the pusher's."""
        repo = hosted.server.repo
        if not hosted.adopt_config:
            return
        if len(repo.graph) or repo.branches.pipelines():
            return
        config = meta.get("repo_config")
        if not isinstance(config, dict):
            return
        metric = config.get("metric")
        seed = config.get("seed")
        if isinstance(metric, str) and metric:
            repo.metric = metric
            repo.executor.metric = metric
        if isinstance(seed, int) and not isinstance(seed, bool):
            repo.seed = seed

    def handle_request(
        self,
        tenant: str,
        repo: str,
        token: str | None,
        payload: bytes,
    ) -> bytes:
        """Admit and execute one wire request; never raises.

        Denials (auth, rate, quota, unknown repo, overload shed) are
        answered as typed error responses *before* the repository server
        — and therefore any repository state — is touched.

        Telemetry: the whole request runs under a ``hub.request`` root
        span (admission itself under a ``hub.admission`` child, the
        hosted server's op/lock/storage spans nest below via the
        shared tracer), and every decision lands in the admission
        counters — ``repro_admission_total{tenant,outcome}`` plus, for
        denials, ``repro_admission_denied_total{tenant,reason}``. A
        propagated ``trace_ctx`` in the request envelope parents the
        root span into the client's trace (correlation only — admission
        decisions never read the propagated ids)."""
        self.count_request()
        # Decoding moved ahead of admission so the envelope's trace
        # context can parent the root span; the work is wasted on a
        # denied request, which is accepted — denials are the rare path.
        # A decode failure is *stashed* and re-raised exactly where the
        # decode used to happen (after auth and rate limiting), so the
        # externally observable denial ordering is unchanged: an
        # unauthenticated peer still gets the auth error, never a
        # protocol error that would confirm its payload was parsed.
        meta: dict = {}
        blobs: list = []
        decode_error: RemoteProtocolError | None = None
        try:
            meta, blobs = decode_message(payload)
        except RemoteProtocolError as error:
            decode_error = error
        inherited = propagation.parse_trace_context(meta)
        with propagation.adopt_remote_context(inherited):
            return self._handle_admitted(
                tenant, repo, token, payload, meta, blobs, decode_error
            )

    def _handle_admitted(
        self,
        tenant: str,
        repo: str,
        token: str | None,
        payload: bytes,
        meta: dict,
        blobs: list,
        decode_error: RemoteProtocolError | None,
    ) -> bytes:
        with self.tracer.span("hub.request", tenant=tenant, repo=repo) as root:
            try:
                with self.tracer.span("hub.admission", tenant=tenant):
                    validate_name("tenant", tenant)
                    validate_name("repository", repo)
                    config = self.authenticator.authorize(token, tenant)
                    bucket = self._bucket_for(config)
                    if bucket is not None and not bucket.try_acquire():
                        raise RateLimitedError(
                            f"tenant {tenant!r} exceeded "
                            f"{config.rate_per_second:g} requests/s "
                            f"(burst {bucket.burst:g}); retry after a pause"
                        )
                    if decode_error is not None:
                        raise decode_error
                    op = meta.get("op")
                    write = op in WRITE_OPS
                    # Observability-driven load shedding: the last
                    # admission gate, still before any repository state
                    # is touched (same never-partially-mutate contract
                    # as auth/quota/rate — _acquire runs strictly after
                    # this). Only known ops shed, so an unknown op keeps
                    # its typed protocol error; exempt ops (health,
                    # stats, trace) always pass so probes work under the
                    # very overload they diagnose.
                    if op in OPS:
                        retry_after = self.health.shed_decision(op)
                        if retry_after is not None:
                            self.health.note_shed(op)
                            raise ServerOverloadedError(
                                f"hub overloaded; shedding {op!r} "
                                "admissions — retry with backoff",
                                retry_after=retry_after,
                            )
                try:
                    hosted = self._acquire(tenant, repo, create=write)
                except RepositoryNotFoundError:
                    if op not in PREFLIGHT_OPS:
                        raise
                    ephemeral = self._new_hosted(
                        tenant, repo, self.default_metric, self.default_seed
                    )
                    self._note_admitted(root, tenant)
                    return ephemeral.server.handle_bytes(
                        payload, decoded=(meta, blobs)
                    )
                try:
                    if write:
                        # Per-tenant serialization makes the quota check
                        # race-free across a tenant's repositories; writes
                        # of different tenants still run concurrently.
                        with self._tenant_lock(tenant):
                            self._enforce_quota(config, hosted, op, meta, blobs)
                            if op == "push":
                                self._maybe_adopt_config(hosted, meta)
                            response = hosted.server.handle_bytes(
                                payload, decoded=(meta, blobs)
                            )
                    else:
                        response = hosted.server.handle_bytes(
                            payload, decoded=(meta, blobs)
                        )
                finally:
                    # Auto-created repos are kept only if something landed
                    # in them (the provisional check in _release).
                    self._release(hosted)
                self._note_admitted(root, tenant)
                return response
            except (HubError, RemoteProtocolError) as error:
                self._note_denied(root, tenant, error)
                return error_response(error)
            except Exception as error:  # noqa: BLE001 - last-resort containment
                self._note_denied(root, tenant, error)
                return error_response(
                    RemoteProtocolError(
                        f"internal hub error: {type(error).__name__}: {error}"
                    )
                )

    def _note_admitted(self, span, tenant: str) -> None:
        self._m_admission.labels(tenant=tenant, outcome="allowed").inc()
        span.set(outcome="allowed")

    def _note_denied(self, span, tenant: str, error: Exception) -> None:
        reason = _denial_reason(error)
        self._m_admission.labels(tenant=tenant, outcome="denied").inc()
        self._m_denied.labels(tenant=tenant, reason=reason).inc()
        span.set(outcome="denied", reason=reason)

    # --------------------------------------------------------- transports
    def local_transport(
        self, tenant: str, repo: str, token: str | None = None
    ) -> "HubLocalTransport":
        return HubLocalTransport(self, tenant, repo, token)


class HubLocalTransport(Transport):
    """In-process transport addressing one ``{tenant}/{repo}`` on a hub.

    The local twin of pointing an :class:`HttpTransport` at
    ``http://host/t/<tenant>/<repo>`` with a bearer token: same admission
    pipeline, no socket."""

    def __init__(
        self,
        hub: RepositoryHub,
        tenant: str,
        repo: str,
        token: str | None = None,
    ):
        super().__init__()
        self.hub = hub
        self.tenant = tenant
        self.repo = repo
        self.token = token

    def _call(self, payload: bytes) -> bytes:
        return self.hub.handle_request(
            self.tenant, self.repo, self.token, payload
        )
