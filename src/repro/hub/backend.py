"""Shared chunk backend: one physical copy of every chunk, hub-wide.

This is the storage story of the multi-tenant hub, DataHub-style: a
chunk pushed by *any* tenant is stored once per deployment, while each
tenant still sees — and is charged for — its own logical holdings.
Two classes split the work:

* :class:`SharedChunkBackend` owns the bytes. It wraps any
  :class:`~repro.storage.chunk_store.ChunkStore` (memory for tests,
  :class:`~repro.storage.chunk_store.FileChunkStore` for a durable hub)
  and refcounts each digest by the number of *holders* — repositories,
  loaded or persisted, that list the chunk among their holdings. Bytes
  are physically discarded only when the last holder releases them.
* :class:`TenantChunkStore` is one repository's *view* of the backend.
  It implements the full ``ChunkStore`` interface, so a hub-hosted
  ``MLCask`` plugs it in unchanged, but membership is per-view: a
  tenant can neither read nor enumerate chunks it never stored, even
  when the backend happens to hold them for someone else (no
  cross-tenant existence oracle). Writes that hit bytes another tenant
  already contributed cost no new physical storage — that is the
  deployment-wide dedup the hub benchmark measures.

Accounting: a view's ``held_bytes`` is the tenant-logical usage quotas
charge (every held chunk counted in full); the backend's
``physical_bytes`` is what the deployment actually stores.
"""

from __future__ import annotations

import threading

from ..errors import ChunkNotFoundError
from ..storage.chunk_store import ChunkStore, MemoryChunkStore


class SharedChunkBackend:
    """Deployment-wide content-addressed bytes with holder refcounts.

    ``store`` is the byte holder (defaults to an in-memory store). The
    refcount table is rebuilt at hub startup from every persisted
    repository's holdings manifest — see
    :meth:`register_holdings` — so restarts never double-count.
    """

    def __init__(self, store: ChunkStore | None = None):
        self.store = store if store is not None else MemoryChunkStore()
        self._lock = threading.RLock()
        self._refcounts: dict[str, int] = {}
        #: Digests whose first write is in flight (digest -> completion
        #: event). The byte write — hash verification plus, for a file
        #: store, a disk write — runs *outside* the backend lock so two
        #: tenants pushing different chunks make parallel progress;
        #: racers on the *same* digest wait here instead of re-writing.
        self._writing: dict[str, threading.Event] = {}
        # Tracked here, not read off the store's stats: a restarted hub
        # wraps a fresh FileChunkStore whose counters start at zero even
        # though the bytes are on disk — the refcount rebuild
        # (:meth:`register_holdings`) restores this number with them.
        self._physical_bytes = 0

    # ------------------------------------------------------------ queries
    @property
    def physical_bytes(self) -> int:
        """Bytes the deployment actually stores (post cross-tenant dedup)."""
        with self._lock:
            return self._physical_bytes

    def chunk_count(self) -> int:
        with self._lock:
            return len(self._refcounts)

    def refcount(self, digest: str) -> int:
        with self._lock:
            return self._refcounts.get(digest, 0)

    def read(self, digest: str) -> bytes:
        return self.store.get(digest)

    # ---------------------------------------------------------- mutation
    def acquire(self, digest: str, data: bytes) -> bool:
        """Register one new holder of ``digest``, storing bytes if novel.

        Returns True when this call took the digest from zero holders to
        one (physical accounting grew), False when another holder
        already contributed it. The write path is integrity-checked:
        bytes that do not hash to ``digest`` are rejected before
        anything lands.

        Lock discipline: only the refcount/ownership bookkeeping runs
        under the backend lock. The byte write itself happens unlocked —
        the writer of a digest is elected under the lock, concurrent
        acquirers of the *same* digest block on its completion event,
        and everyone else proceeds in parallel. A chunk is refcounted
        only once its bytes are durable, so a holder can always read
        what it holds.
        """
        while True:
            with self._lock:
                count = self._refcounts.get(digest, 0)
                if count:
                    # Bytes are durable (refcounts are only set after a
                    # completed write or a startup manifest scan).
                    self._refcounts[digest] = count + 1
                    return False
                writing = self._writing.get(digest)
                if writing is None:
                    writing = self._writing[digest] = threading.Event()
                    break  # this thread owns the write
            # Another thread is writing these bytes right now: wait for
            # it, then retry — the fast path above will take the ref.
            writing.wait()

        try:
            if not self.store.contains(digest):
                self.store.import_chunk(digest, data)
            # else: leftover bytes from a crashed hub — adopt, don't
            # re-write. Either way this commit takes the digest from
            # zero holders to one, so the bytes start counting now.
        except BaseException:
            with self._lock:
                del self._writing[digest]
            writing.set()
            raise
        with self._lock:
            self._physical_bytes += len(data)
            self._refcounts[digest] = self._refcounts.get(digest, 0) + 1
            del self._writing[digest]
        writing.set()
        return True

    def release(self, digest: str) -> int:
        """Drop one holder; physically discard at refcount zero.

        Returns the physical bytes reclaimed (0 while other holders
        remain). Same lock discipline as :meth:`acquire`: the refcount
        decision runs under the lock, the disk unlink does not — a big
        GC sweep must not stall every other tenant's writes — and the
        digest is marked in-flight so a racing re-acquire waits for the
        delete to finish instead of adopting bytes about to vanish.
        """
        while True:
            with self._lock:
                count = self._refcounts.get(digest, 0)
                if count > 1:
                    self._refcounts[digest] = count - 1
                    return 0
                writing = self._writing.get(digest)
                if writing is None:
                    self._refcounts.pop(digest, None)
                    writing = self._writing[digest] = threading.Event()
                    break  # this thread owns the discard
            # The digest is mid-write or mid-discard elsewhere: wait for
            # that to settle, then re-evaluate.
            writing.wait()
        try:
            reclaimed = self.store.discard(digest)
            with self._lock:
                self._physical_bytes -= reclaimed
        finally:
            with self._lock:
                del self._writing[digest]
            writing.set()
        return reclaimed

    def register_holdings(self, holdings: dict[str, int]) -> None:
        """Adopt a persisted repository's holdings (digest -> size) into
        the refcounts.

        Called once per persisted repo at hub startup; the bytes are
        already in the underlying store (they were written through a
        live view before the repo was persisted), so only the first
        holder of a digest re-adds its size to the physical total.
        """
        with self._lock:
            for digest, size in holdings.items():
                count = self._refcounts.get(digest, 0)
                if count == 0:
                    self._physical_bytes += size
                self._refcounts[digest] = count + 1

    def release_holdings(self, digests) -> int:
        """Drop a whole repository's holdings (repo deletion); returns
        the physical bytes reclaimed."""
        reclaimed = 0
        for digest in digests:
            reclaimed += self.release(digest)
        return reclaimed


class TenantChunkStore(ChunkStore):
    """One hosted repository's membership-scoped view of the backend.

    ``holdings`` (digest -> size) re-attaches a view to chunks a
    persisted repository already holds; refcounts are *not* touched for
    adopted holdings — they were registered when the hub scanned the
    repo's manifest (or never dropped, for an evict/reload cycle).
    """

    def __init__(
        self,
        backend: SharedChunkBackend,
        holdings: dict[str, int] | None = None,
    ):
        super().__init__()
        self.backend = backend
        self._held: dict[str, int] = dict(holdings or {})
        self._held_bytes = sum(self._held.values())
        # The view's stats speak tenant-logical language: "physical" here
        # is what this repository holds, regardless of how many other
        # tenants share the bytes underneath.
        self.stats.physical_bytes = self._held_bytes

    # ------------------------------------------------- ChunkStore hooks
    def _contains(self, digest: str) -> bool:
        return digest in self._held

    def _write(self, digest: str, data: bytes) -> None:
        self.backend.acquire(digest, data)
        self._held[digest] = len(data)
        self._held_bytes += len(data)

    def _read(self, digest: str) -> bytes:
        try:
            return self.backend.read(digest)
        except ChunkNotFoundError:
            # A held digest missing from the backend means the shared
            # store lost bytes out-of-band; surface it as this view's
            # miss so the caller sees a normal not-found.
            raise ChunkNotFoundError(digest) from None

    def _delete(self, digest: str) -> None:
        size = self._held.pop(digest)
        self._held_bytes -= size
        self.backend.release(digest)

    def _size(self, digest: str) -> int:
        return self._held[digest]

    def digests(self) -> list[str]:
        return list(self._held)

    # ------------------------------------------------------- accounting
    @property
    def held_bytes(self) -> int:
        """Tenant-logical bytes this repository holds (quota currency)."""
        return self._held_bytes

    def holdings(self) -> dict[str, int]:
        """Snapshot of digest -> size, for the persisted manifest."""
        return dict(self._held)

    def size_of(self, digest: str) -> int | None:
        return self._held.get(digest)
