"""Admission identity: bearer tokens, tenants, and their service terms.

A *tenant* is the unit of isolation, accounting, and admission on the
hub: tokens authenticate to exactly one tenant, quotas and rate limits
are per tenant, and a tenant's repositories live under its own
``/t/<tenant>/...`` namespace. The authenticator is deliberately tiny —
a token registry with constant-time comparison — because the hub's
security posture is *containment*, not cryptography: a request either
proves it belongs to the namespace it addresses or it is answered with
a typed denial before any repository state is touched.
"""

from __future__ import annotations

import hmac
import re
import threading
from dataclasses import dataclass

from ..errors import AuthenticationError, AuthorizationError, HubError

#: Tenant and repository names share one grammar: path-safe, no dots at
#: the front (hidden files), no separators (path traversal). Enforced at
#: both config time and request time; the HTTP route regex is composed
#: from the same fragment so the two can never diverge.
NAME_FRAGMENT = r"[A-Za-z0-9][A-Za-z0-9._-]{0,63}"
NAME_PATTERN = re.compile(f"^{NAME_FRAGMENT}$")


def validate_name(kind: str, name: str) -> str:
    if not isinstance(name, str) or not NAME_PATTERN.match(name):
        raise HubError(
            f"invalid {kind} name {name!r}: must match {NAME_PATTERN.pattern}"
        )
    return name


@dataclass
class TenantConfig:
    """One tenant's identity and service terms.

    ``quota_bytes`` bounds tenant-*logical* usage (reachable bytes across
    the tenant's repositories, every chunk counted in full); ``None``
    means unlimited. ``rate_per_second``/``burst`` parameterize the
    token-bucket rate limiter; ``rate_per_second=None`` disables it.
    """

    name: str
    tokens: tuple[str, ...] = ()
    quota_bytes: int | None = None
    rate_per_second: float | None = None
    burst: float | None = None

    def __post_init__(self) -> None:
        validate_name("tenant", self.name)
        self.tokens = tuple(self.tokens)

    def to_dict(self) -> dict:
        return {
            "tokens": list(self.tokens),
            "quota_bytes": self.quota_bytes,
            "rate_per_second": self.rate_per_second,
            "burst": self.burst,
        }

    @classmethod
    def from_dict(cls, name: str, entry: dict) -> "TenantConfig":
        return cls(
            name=name,
            tokens=tuple(entry.get("tokens", ())),
            quota_bytes=entry.get("quota_bytes"),
            rate_per_second=entry.get("rate_per_second"),
            burst=entry.get("burst"),
        )


class TokenAuthenticator:
    """Maps bearer tokens to tenants; rejects everything else.

    Lookup compares the presented token against every registered token
    with :func:`hmac.compare_digest` and never exits early, so response
    timing does not reveal which tenant (or how much of a token) almost
    matched.
    """

    def __init__(self) -> None:
        # Registration is a live operation (token rotation on a serving
        # hub); the lock keeps request-thread scans off a mutating dict.
        self._lock = threading.Lock()
        self._tenants: dict[str, TenantConfig] = {}

    def add_tenant(self, config: TenantConfig) -> TenantConfig:
        """Register or replace a tenant.

        A token already registered to a *different* tenant is rejected
        here, at config time: with duplicates, :meth:`authenticate`
        would resolve the token to whichever tenant happened to iterate
        last — requests silently landing in the wrong namespace.
        """
        with self._lock:
            for other in self._tenants.values():
                if other.name == config.name:
                    continue
                if set(other.tokens) & set(config.tokens):
                    raise HubError(
                        f"token already registered to tenant {other.name!r}; "
                        "tokens must be unique across tenants"
                    )
            self._tenants[config.name] = config
        return config

    def tenant(self, name: str) -> TenantConfig:
        with self._lock:
            if name not in self._tenants:
                raise AuthenticationError(f"unknown tenant {name!r}")
            return self._tenants[name]

    def tenants(self) -> list[TenantConfig]:
        with self._lock:
            return [self._tenants[name] for name in sorted(self._tenants)]

    def has_tenant(self, name: str) -> bool:
        with self._lock:
            return name in self._tenants

    def authenticate(self, token: str | None) -> str:
        """The tenant a token belongs to; :class:`AuthenticationError`
        otherwise. The scan is exhaustive on purpose (constant-time-ish)."""
        if not token:
            raise AuthenticationError(
                "request carries no bearer token; this hub requires "
                "authentication for every operation"
            )
        matched: str | None = None
        with self._lock:
            configs = list(self._tenants.values())
        for config in configs:
            for registered in config.tokens:
                if hmac.compare_digest(
                    registered.encode("utf-8"), token.encode("utf-8")
                ):
                    matched = config.name
        if matched is None:
            raise AuthenticationError("bearer token is not recognized")
        return matched

    def authorize(self, token: str | None, tenant: str) -> TenantConfig:
        """Authenticate, then require the token's tenant to be ``tenant``.

        Tokens are namespace-scoped: there is no cross-tenant read grant,
        so a mismatch is an authorization failure even for pure reads.
        """
        owner = self.authenticate(token)
        if owner != tenant:
            raise AuthorizationError(
                f"token authenticates tenant {owner!r}, which cannot act "
                f"in tenant {tenant!r}'s namespace"
            )
        return self.tenant(owner)
