"""Multi-tenant repository hub: many repos, one process, shared storage.

MLCask's collaboration story (paper section V) assumes many teams
evolving pipelines against hosted version history. PR 1–3 built the
wire protocol, a hardened single-repo server, and concurrency; this
subsystem adds the *hosting* layer on top:

* **Routing** — one :class:`RepositoryHub` serves any number of
  repositories addressed as ``{tenant}/{repo}``, loading them lazily
  from disk, LRU-evicting idle ones, and persisting on eviction and
  after every ref-moving push.
* **Cross-tenant dedup** — every hosted repository stores chunks
  through one :class:`SharedChunkBackend`: a chunk pushed by any tenant
  is stored once deployment-wide (the DataHub observation that hosting
  many versioned datasets pays off when storage dedups across tenants),
  while per-tenant views keep membership isolated and charge quotas
  the full *logical* usage.
* **Admission** — bearer-token auth (:class:`TokenAuthenticator`),
  per-tenant storage quotas, and a token-bucket rate limiter, all
  enforced before a request touches repository state, all answered
  with typed protocol errors clients can distinguish.

Layering::

    backend.py   SharedChunkBackend + TenantChunkStore (refcounted views)
    auth.py      TenantConfig, TokenAuthenticator, name grammar
    quota.py     TokenBucket, incoming-bytes arithmetic
    hub.py       RepositoryHub (routing, LRU, persistence, admission)
    server.py    path-routed HTTP front (/t/<tenant>/<repo>/rpc)

Quickstart::

    from repro.hub import RepositoryHub

    hub = RepositoryHub("/srv/mlcask-hub")
    hub.add_tenant("ana", tokens=["ana-secret"], quota_bytes=10**9)
    hub.add_tenant("ben", tokens=["ben-secret"], quota_bytes=10**9)

    # clients: repro push <dir> http://host:8321/t/ana/pipelines --token ana-secret
    from repro.hub import serve_hub
    serve_hub(hub, port=8321).serve_forever()
"""

from .auth import TenantConfig, TokenAuthenticator, validate_name
from .backend import SharedChunkBackend, TenantChunkStore
from .hub import HostedRepository, HubLocalTransport, RepositoryHub
from .quota import TokenBucket, incoming_new_bytes
from .server import HubHTTPServer, serve_hub

__all__ = [
    "HostedRepository",
    "HubHTTPServer",
    "HubLocalTransport",
    "RepositoryHub",
    "SharedChunkBackend",
    "TenantChunkStore",
    "TenantConfig",
    "TokenAuthenticator",
    "TokenBucket",
    "incoming_new_bytes",
    "serve_hub",
    "validate_name",
]
