"""Baseline tracking systems: the shared run loop.

Paper section VII-B compares MLCask against ModelDB and MLflow on the
linear-versioning workload. What differentiates the three systems in that
experiment is *policy*, not modelling power:

===========  ===================  =============================  ==========
system       intermediate reuse   storage mechanism              incompat.
===========  ===================  =============================  ==========
ModelDB      none (rerun all)     separate folders (full copies)  runtime
MLflow       yes                  separate folders (full copies)  runtime
MLCask       yes                  ForkBase chunks (deduped)       static
===========  ===================  =============================  ==========

All three run the *same* executor over the *same* component update
schedule, so measured differences are attributable to the policies alone.
Each system also archives every new library version it sees — the
baselines as full folder copies, MLCask through its chunk-deduplicating
engine (section VII-C's library-version dedup).

Per-run time accounting is *simulated*, not wall clock: the
:class:`SimulatedCostModel` charges deterministic seconds for the stages
executed and the physical bytes written, so the cross-system orderings
the figures plot (and the tests assert) are stable properties of the
policies rather than of scheduler noise.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..core.component import Component, LibraryComponent
from ..core.context import ExecutionContext
from ..core.executor import Executor
from ..core.pipeline import PipelineInstance
from ..workloads.base import Workload, library_code_blob
from .cost_model import SimulatedCostModel


@dataclass
class IterationRecord:
    """Per-iteration measurements (the points plotted in Figs. 5-7)."""

    iteration: int
    total_seconds: float = 0.0
    preprocessing_seconds: float = 0.0
    training_seconds: float = 0.0
    storage_seconds: float = 0.0
    storage_bytes: int = 0  # physical bytes held after this iteration
    failed: bool = False
    skipped_incompatible: bool = False
    score: float | None = None
    n_executed: int = 0
    n_reused: int = 0


class TrackingSystem(ABC):
    """A pipeline manager replaying a linear update schedule."""

    name: str = "base"

    def __init__(self, workload: Workload, seed: int = 0):
        self.workload = workload
        self.seed = seed
        self.instance: PipelineInstance | None = None
        self._known_libraries: set[str] = set()
        self.records: list[IterationRecord] = []
        self.cost = SimulatedCostModel()

    # ------------------------------------------------------------ interface
    @abstractmethod
    def _executor(self) -> Executor: ...

    @abstractmethod
    def _archive_library(self, component: LibraryComponent, blob: bytes) -> float:
        """Persist a library version; return *simulated* seconds spent
        (physical bytes written, priced by the cost model)."""

    @abstractmethod
    def _storage_bytes(self) -> int:
        """Physical bytes currently held by this system's stores."""

    def _detects_incompatibility_statically(self) -> bool:
        """MLCask validates schemas before running; the baselines do not."""
        return False

    # ------------------------------------------------------------- run loop
    def run_iteration(self, iteration: int, updates: dict[str, Component]) -> IterationRecord:
        """Apply ``updates``, retrain, and record the cost."""
        if self.instance is None:
            components = self.workload.initial_components()
            components.update(updates)
            self.instance = PipelineInstance(
                spec=self.workload.spec, components=components
            )
        else:
            self.instance = self.instance.with_updates(dict(updates))

        record = IterationRecord(iteration=iteration)
        store_seconds = 0.0
        for component in self.instance.components.values():
            if (
                isinstance(component, LibraryComponent)
                and component.identifier not in self._known_libraries
            ):
                self._known_libraries.add(component.identifier)
                blob = library_code_blob(component.name, component.version)
                store_seconds += self._archive_library(component, blob)

        if self._detects_incompatibility_statically() and not self.instance.is_compatible():
            # MLCask skips the run entirely: "it does not run the pipeline,
            # which leads to no increase in the total time" (section VII-C).
            record.skipped_incompatible = True
            record.storage_seconds = store_seconds
            record.total_seconds = store_seconds
            record.storage_bytes = self._storage_bytes()
            self.records.append(record)
            return record

        physical_before = self._storage_bytes()
        report = self._executor().run(
            self.instance, ExecutionContext(seed=self.seed, metric=self.workload.metric)
        )
        written = self._storage_bytes() - physical_before
        record.failed = report.failed
        record.preprocessing_seconds = self.cost.preprocessing_seconds(report)
        record.training_seconds = self.cost.training_seconds(report)
        record.storage_seconds = (
            self.cost.checkpoint_storage_seconds(report, written) + store_seconds
        )
        record.total_seconds = (
            record.preprocessing_seconds
            + record.training_seconds
            + record.storage_seconds
        )
        record.score = report.score
        record.n_executed = report.n_executed
        record.n_reused = report.n_reused
        record.storage_bytes = self._storage_bytes()
        self.records.append(record)
        return record

    # ------------------------------------------------------------ summaries
    @property
    def cumulative_seconds(self) -> list[float]:
        total = 0.0
        out = []
        for record in self.records:
            total += record.total_seconds
            out.append(total)
        return out

    @property
    def cumulative_bytes(self) -> list[int]:
        return [record.storage_bytes for record in self.records]
