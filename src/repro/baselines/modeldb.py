"""ModelDB-like baseline (Vartak et al. 2016) for the linear experiments.

Per paper section VII-B/VII-C: "ModelDB does not offer automatic reuse of
intermediate results" and "has to start all over in every iteration due to
the lack of historical information on reusable outputs"; its storage
"archives different versions of libraries and intermediate results into
separate folders". Policy: ``reuse=False`` over a folder checkpoint store.
"""

from __future__ import annotations

from ..core.checkpoint import FolderCheckpointStore
from ..core.component import LibraryComponent
from ..core.executor import Executor
from ..storage.folder_store import FolderStore
from ..workloads.base import Workload
from .base import TrackingSystem


class ModelDBSim(TrackingSystem):
    """No reuse, folder archival: the linear-growth baseline of Figs. 5-7."""

    name = "modeldb"

    def __init__(self, workload: Workload, seed: int = 0):
        super().__init__(workload, seed)
        self.output_store = FolderCheckpointStore(FolderStore())
        self.library_store = FolderStore()
        self.executor = Executor(
            self.output_store, metric=workload.metric, reuse=False
        )

    def _executor(self) -> Executor:
        return self.executor

    def _archive_library(self, component: LibraryComponent, blob: bytes) -> float:
        before = self.library_store.stats.physical_bytes
        self.library_store.archive(
            component.name, component.version.full, blob
        )
        return self.cost.store_seconds(
            self.library_store.stats.physical_bytes - before
        )

    def _storage_bytes(self) -> int:
        return (
            self.output_store.stats.physical_bytes
            + self.library_store.stats.physical_bytes
        )
