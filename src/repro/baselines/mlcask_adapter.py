"""MLCask as a tracking system, for like-for-like linear comparisons.

Same run loop as the baselines, but with MLCask's policies: reuse through
the chunk-deduplicating checkpoint store, library archives through the
same engine (chunk-level dedup across versions, section VII-C), and
*static* incompatibility detection — the final designed-incompatible
iteration is refused before any component runs.
"""

from __future__ import annotations

from ..core.checkpoint import ChunkedCheckpointStore
from ..core.component import LibraryComponent
from ..core.executor import Executor
from ..storage.object_store import ObjectStore
from ..workloads.base import Workload
from .base import TrackingSystem


class MLCaskLinear(TrackingSystem):
    """MLCask's policies in the shared linear-versioning harness."""

    name = "mlcask"

    def __init__(self, workload: Workload, seed: int = 0):
        super().__init__(workload, seed)
        self.objects = ObjectStore()
        self.output_store = ChunkedCheckpointStore(self.objects)
        self.library_objects = ObjectStore()
        self.executor = Executor(
            self.output_store, metric=workload.metric, reuse=True
        )

    def _executor(self) -> Executor:
        return self.executor

    def _archive_library(self, component: LibraryComponent, blob: bytes) -> float:
        before = self.library_objects.stats.physical_bytes
        self.library_objects.put(blob)
        return self.cost.store_seconds(
            self.library_objects.stats.physical_bytes - before
        )

    def _storage_bytes(self) -> int:
        return (
            self.objects.stats.physical_bytes
            + self.library_objects.stats.physical_bytes
        )

    def _detects_incompatibility_statically(self) -> bool:
        return True
