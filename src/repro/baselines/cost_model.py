"""Deterministic simulated cost model for the baseline comparisons.

The linear-versioning experiment (Figs. 5-7) compares *policies* — rerun
vs reuse, folder copies vs chunk dedup — yet measuring them with
wall-clock timers makes the comparison hostage to scheduler noise: at
test scale, a few milliseconds of jitter can invert the ModelDB/MLCask
ordering that the paper's figures show at full scale. The cross-system
shape tests were flaky for exactly this reason.

This model replaces wall clock with a simulated clock driven only by
deterministic quantities: which stages executed, how many bytes they
produced, and how many physical bytes the stores wrote. The *shape* of
every figure is preserved — systems that execute more components are
charged more compute, systems that copy more bytes are charged more
storage time, and dedup savings show up as storage-time savings — while
runs become exactly reproducible across machines and loads.

The rates are arbitrary but fixed; only ratios matter for the figures.
Training is charged an order of magnitude more per byte than
pre-processing (models dominate pipeline time in the paper's workloads),
and storage is charged per physical byte written so the folder-archival
baselines pay for every full copy while chunk dedup pays once.
"""

from __future__ import annotations


class SimulatedCostModel:
    """Charges simulated seconds for compute and storage work."""

    #: Compute: fixed dispatch cost plus per-output-byte processing cost.
    STAGE_FIXED_SECONDS = 1e-3
    PREPROCESS_SECONDS_PER_BYTE = 2e-8
    TRAINING_SECONDS_PER_BYTE = 2e-7

    #: Storage: fixed per archive operation plus per physical byte written.
    STORE_FIXED_SECONDS = 2e-4
    STORE_SECONDS_PER_BYTE = 5e-9

    # ------------------------------------------------------------- compute
    def stage_compute_seconds(self, stage_report) -> float:
        """Simulated compute cost of one stage (zero unless executed)."""
        if not stage_report.executed:
            return 0.0
        rate = (
            self.TRAINING_SECONDS_PER_BYTE
            if stage_report.is_model
            else self.PREPROCESS_SECONDS_PER_BYTE
        )
        return self.STAGE_FIXED_SECONDS + rate * stage_report.output_bytes

    def preprocessing_seconds(self, report) -> float:
        return sum(
            self.stage_compute_seconds(r)
            for r in report.stage_reports
            if not r.is_model
        )

    def training_seconds(self, report) -> float:
        return sum(
            self.stage_compute_seconds(r)
            for r in report.stage_reports
            if r.is_model
        )

    # ------------------------------------------------------------- storage
    def store_seconds(self, physical_bytes_written: int) -> float:
        """Simulated cost of persisting ``physical_bytes_written`` bytes.

        Charged on *physical* bytes, so a deduplicating store is faster
        exactly where it is smaller — the CST/CSS coupling of the paper's
        evaluation.
        """
        return (
            self.STORE_FIXED_SECONDS
            + self.STORE_SECONDS_PER_BYTE * physical_bytes_written
        )

    def checkpoint_storage_seconds(self, report, physical_bytes_written: int) -> float:
        """Simulated storage time of one run's checkpoint writes."""
        executed = sum(1 for r in report.stage_reports if r.executed)
        if executed == 0:
            return 0.0
        return (
            executed * self.STORE_FIXED_SECONDS
            + self.STORE_SECONDS_PER_BYTE * physical_bytes_written
        )
