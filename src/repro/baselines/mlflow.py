"""MLflow-like baseline (Zaharia et al. 2018) for the linear experiments.

Per paper section VII-B: "MLflow is able to reuse intermediate results"
but, like ModelDB, "archives different versions of libraries and
intermediate results into separate folders". Policy: ``reuse=True`` over a
folder checkpoint store — so it skips executed components (tracking MLCask
closely on time) but pays full-copy storage (the gap in Fig. 7).
"""

from __future__ import annotations

from ..core.checkpoint import FolderCheckpointStore
from ..core.component import LibraryComponent
from ..core.executor import Executor
from ..storage.folder_store import FolderStore
from ..workloads.base import Workload
from .base import TrackingSystem


class MLflowSim(TrackingSystem):
    """Reuse intermediates, folder archival."""

    name = "mlflow"

    def __init__(self, workload: Workload, seed: int = 0):
        super().__init__(workload, seed)
        self.output_store = FolderCheckpointStore(FolderStore())
        self.library_store = FolderStore()
        self.executor = Executor(
            self.output_store, metric=workload.metric, reuse=True
        )

    def _executor(self) -> Executor:
        return self.executor

    def _archive_library(self, component: LibraryComponent, blob: bytes) -> float:
        before = self.library_store.stats.physical_bytes
        self.library_store.archive(
            component.name, component.version.full, blob
        )
        return self.cost.store_seconds(
            self.library_store.stats.physical_bytes - before
        )

    def _storage_bytes(self) -> int:
        return (
            self.output_store.stats.physical_bytes
            + self.library_store.stats.physical_bytes
        )
