"""Baseline systems: policy-faithful ModelDB and MLflow simulators."""

from .base import IterationRecord, TrackingSystem
from .cost_model import SimulatedCostModel
from .mlcask_adapter import MLCaskLinear
from .mlflow import MLflowSim
from .modeldb import ModelDBSim

ALL_SYSTEMS = {
    "modeldb": ModelDBSim,
    "mlflow": MLflowSim,
    "mlcask": MLCaskLinear,
}

__all__ = [
    "IterationRecord",
    "SimulatedCostModel",
    "TrackingSystem",
    "MLCaskLinear",
    "MLflowSim",
    "ModelDBSim",
    "ALL_SYSTEMS",
]
