"""Synthetic EHR for the Readmission pipeline (paper section VII-A).

The real pipeline predicts 30-day hospital readmission from NUHS inpatient
data. That data is private, so we generate a relational table with the same
structural properties the pipeline's pre-processing steps depend on:

* demographic and utilization features with a planted logistic signal;
* a categorical ``diagnosis_code`` column with *missing values* — the
  pipeline's first step is "clean the dataset by filling in the missing
  diagnosis codes";
* categorical ``procedure_code`` and numeric lab columns for the feature
  extraction step.

Generation is fully seeded; the ``day`` parameter shifts the sampled
cohort so successive "daily feeds" (paper section II, challenge C1) produce
overlapping-but-not-identical tables, which is what gives chunk-level
dedup something to work with.
"""

from __future__ import annotations

import numpy as np

from ..table import Table

_DIAG_PREFIXES = ("E11", "I10", "N18", "J44", "I50", "K21", "F32", "M54")
_PROC_CODES = ("dialysis", "angioplasty", "transfusion", "endoscopy", "none")


def make_readmission(
    n_patients: int = 600,
    seed: int = 7,
    missing_rate: float = 0.15,
    day: int = 0,
) -> Table:
    """Generate a readmission cohort table with a planted outcome signal."""
    if not 0.0 <= missing_rate < 1.0:
        raise ValueError(f"missing_rate must be in [0, 1), got {missing_rate}")
    rng = np.random.default_rng(seed + 104729 * day)

    age = rng.normal(62.0, 14.0, n_patients).clip(18, 99)
    gender = rng.integers(0, 2, n_patients)
    n_prior = rng.poisson(1.4, n_patients)
    los = rng.gamma(2.0, 2.5, n_patients).clip(0.5, 60.0)
    creatinine = rng.lognormal(0.1, 0.45, n_patients)
    hba1c = rng.normal(6.8, 1.3, n_patients).clip(4.0, 14.0)
    charlson = rng.poisson(2.0, n_patients)

    diag_idx = rng.integers(0, len(_DIAG_PREFIXES), n_patients)
    diag = np.array(
        [f"{_DIAG_PREFIXES[i]}.{rng.integers(0, 10)}" for i in diag_idx],
        dtype=object,
    )
    missing_mask = rng.random(n_patients) < missing_rate
    diag[missing_mask] = None

    proc = np.array(
        [_PROC_CODES[i] for i in rng.integers(0, len(_PROC_CODES), n_patients)],
        dtype=object,
    )

    # Planted signal: utilization + severity drive readmission risk.
    logits = (
        -1.4
        + 0.45 * n_prior
        + 0.06 * (los - 5.0)
        + 0.35 * (creatinine - 1.0)
        + 0.18 * (charlson - 2.0)
        + 0.012 * (age - 60.0)
        + 0.3 * (diag_idx == 2)  # CKD (N18) raises risk
    )
    probs = 1.0 / (1.0 + np.exp(-logits))
    label = (rng.random(n_patients) < probs).astype(np.int64)

    return Table({
        "patient_id": np.arange(n_patients, dtype=np.int64) + 100000 * (day + 1),
        "age": age,
        "gender": gender.astype(np.int64),
        "n_prior_admissions": n_prior.astype(np.int64),
        "length_of_stay": los,
        "diagnosis_code": diag,
        "procedure_code": proc,
        "lab_creatinine": creatinine,
        "lab_hba1c": hba1c,
        "charlson_index": charlson.astype(np.int64),
        "readmitted_30d": label,
    })
