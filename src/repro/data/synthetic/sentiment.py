"""Synthetic movie-review corpus for the SA pipeline (section VII-A).

The sentiment-analysis pipeline's first three steps "process the external
corpora and pre-trained word embeddings". With no network, we synthesize a
corpus from two class-conditional unigram mixtures over a shared
vocabulary: sentiment-bearing words are sampled preferentially by their
class, neutral words by both. The embedding step (PPMI + SVD in
:mod:`repro.ml.embeddings`) then has real co-occurrence structure to learn,
and the classifier has a planted signal to find.
"""

from __future__ import annotations

import numpy as np

from ..table import Table


def vocabulary(n_sentiment: int = 60, n_neutral: int = 240) -> list[str]:
    """Deterministic synthetic vocabulary: pos_i, neg_i, w_i tokens."""
    pos = [f"pos{i}" for i in range(n_sentiment)]
    neg = [f"neg{i}" for i in range(n_sentiment)]
    neutral = [f"w{i}" for i in range(n_neutral)]
    return pos + neg + neutral


def make_reviews(
    n_docs: int = 400,
    doc_len: int = 40,
    n_sentiment: int = 60,
    n_neutral: int = 240,
    sentiment_strength: float = 0.35,
    seed: int = 13,
    day: int = 0,
) -> Table:
    """Generate labelled synthetic reviews.

    Each document mixes neutral tokens with class-matched sentiment tokens
    at rate ``sentiment_strength``; a small fraction of off-class sentiment
    tokens keeps the task non-trivial.
    """
    if not 0.0 < sentiment_strength < 1.0:
        raise ValueError("sentiment_strength must be in (0, 1)")
    rng = np.random.default_rng(seed + 104729 * day)

    pos_words = [f"pos{i}" for i in range(n_sentiment)]
    neg_words = [f"neg{i}" for i in range(n_sentiment)]
    neutral_words = [f"w{i}" for i in range(n_neutral)]

    # Zipf-ish weights make co-occurrence statistics realistic.
    neutral_weights = 1.0 / np.arange(1, n_neutral + 1)
    neutral_weights /= neutral_weights.sum()
    sent_weights = 1.0 / np.arange(1, n_sentiment + 1)
    sent_weights /= sent_weights.sum()

    labels = rng.integers(0, 2, n_docs)
    docs: list[str] = []
    for label in labels:
        own = pos_words if label == 1 else neg_words
        other = neg_words if label == 1 else pos_words
        tokens: list[str] = []
        for _ in range(doc_len):
            roll = rng.random()
            if roll < sentiment_strength:
                tokens.append(own[rng.choice(n_sentiment, p=sent_weights)])
            elif roll < sentiment_strength + 0.05:
                tokens.append(other[rng.choice(n_sentiment, p=sent_weights)])
            else:
                tokens.append(neutral_words[rng.choice(n_neutral, p=neutral_weights)])
        docs.append(" ".join(tokens))

    return Table({
        "doc_id": np.arange(n_docs, dtype=np.int64) + 10000 * (day + 1),
        "text": np.array(docs, dtype=object),
        "sentiment": labels.astype(np.int64),
    })
