"""Synthetic longitudinal CKD data for the DPM pipeline (section VII-A).

The Disease Progression Modeling pipeline predicts progression trajectories
of chronic kidney disease patients from one year of diagnoses and lab
results. We generate patient-visit rows whose lab values are emitted from a
*hidden Markov ground truth* over CKD stages — precisely the structure the
pipeline's third step (an HMM that "unbiases" the extracted features) is
designed to recover.

Stages follow a left-to-right-biased Markov chain (kidney function rarely
improves); each stage emits Gaussian-distributed eGFR / creatinine / UACR
values. The prediction target is whether the patient's stage worsens by the
final visit.
"""

from __future__ import annotations

import numpy as np

from ..table import Table

N_STAGES = 4

# Stage-conditional emission means for (egfr, creatinine, uacr, sbp).
_STAGE_MEANS = np.array([
    [85.0, 0.9, 20.0, 122.0],
    [65.0, 1.3, 80.0, 130.0],
    [42.0, 1.9, 280.0, 138.0],
    [22.0, 3.2, 700.0, 147.0],
])
_STAGE_STDS = np.array([
    [8.0, 0.12, 10.0, 9.0],
    [7.0, 0.18, 30.0, 10.0],
    [6.0, 0.30, 80.0, 11.0],
    [5.0, 0.55, 160.0, 12.0],
])

# Progression-biased transition matrix.
_TRANSITIONS = np.array([
    [0.86, 0.12, 0.02, 0.00],
    [0.05, 0.80, 0.13, 0.02],
    [0.01, 0.06, 0.81, 0.12],
    [0.00, 0.01, 0.07, 0.92],
])
_INITIAL = np.array([0.45, 0.30, 0.17, 0.08])


def true_transition_matrix() -> np.ndarray:
    """Ground-truth stage transition matrix (for HMM recovery tests)."""
    return _TRANSITIONS.copy()


def make_dpm(
    n_patients: int = 120,
    n_visits: int = 12,
    seed: int = 11,
    day: int = 0,
) -> Table:
    """Generate patient-visit rows with hidden-stage Gaussian emissions."""
    rng = np.random.default_rng(seed + 104729 * day)
    rows_per = n_patients * n_visits

    patient_id = np.repeat(np.arange(n_patients, dtype=np.int64), n_visits)
    visit_idx = np.tile(np.arange(n_visits, dtype=np.int64), n_patients)

    stages = np.empty((n_patients, n_visits), dtype=np.int64)
    for p in range(n_patients):
        stage = rng.choice(N_STAGES, p=_INITIAL)
        for v in range(n_visits):
            stages[p, v] = stage
            stage = rng.choice(N_STAGES, p=_TRANSITIONS[stage])

    flat_stages = stages.ravel()
    emissions = (
        _STAGE_MEANS[flat_stages]
        + rng.standard_normal((rows_per, 4)) * _STAGE_STDS[flat_stages]
    )

    # Label per row: does this patient's stage worsen from first to last visit?
    progressed = (stages[:, -1] > stages[:, 0]).astype(np.int64)
    label = np.repeat(progressed, n_visits)

    return Table({
        "patient_id": patient_id + 1000 * (day + 1),
        "visit_idx": visit_idx,
        "egfr": emissions[:, 0].clip(2.0, 130.0),
        "creatinine": emissions[:, 1].clip(0.3, 12.0),
        "uacr": emissions[:, 2].clip(0.0, 5000.0),
        "sbp": emissions[:, 3].clip(80.0, 220.0),
        "true_stage": flat_stages,
        "progressed": label,
    })
