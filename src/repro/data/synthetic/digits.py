"""Procedural digit images for the Autolearn pipeline (section VII-A).

The Autolearn pipeline classifies digit images using Zernike moments as
features. We render digits 0-9 as seven-segment glyphs on a small grid with
random translation, per-pixel noise, and stroke-intensity jitter — enough
variation that the Zernike feature extractor and AdaBoost classifier do
real work, while staying fully offline and seeded.
"""

from __future__ import annotations

import numpy as np

# Seven-segment encoding per digit: (top, top-left, top-right, middle,
# bottom-left, bottom-right, bottom).
_SEGMENTS = {
    0: (1, 1, 1, 0, 1, 1, 1),
    1: (0, 0, 1, 0, 0, 1, 0),
    2: (1, 0, 1, 1, 1, 0, 1),
    3: (1, 0, 1, 1, 0, 1, 1),
    4: (0, 1, 1, 1, 0, 1, 0),
    5: (1, 1, 0, 1, 0, 1, 1),
    6: (1, 1, 0, 1, 1, 1, 1),
    7: (1, 0, 1, 0, 0, 1, 0),
    8: (1, 1, 1, 1, 1, 1, 1),
    9: (1, 1, 1, 1, 0, 1, 1),
}


def _render_glyph(digit: int, size: int, thickness: int) -> np.ndarray:
    """Draw the seven-segment glyph for ``digit`` onto a ``size``² canvas."""
    canvas = np.zeros((size, size), dtype=np.float64)
    margin = max(2, size // 8)
    top, bottom = margin, size - margin - 1
    left, right = margin + 1, size - margin - 2
    middle = (top + bottom) // 2
    seg = _SEGMENTS[digit]

    def hline(row: int) -> None:
        canvas[row : row + thickness, left : right + 1] = 1.0

    def vline(col: int, r0: int, r1: int) -> None:
        canvas[r0 : r1 + 1, col : col + thickness] = 1.0

    if seg[0]:
        hline(top)
    if seg[1]:
        vline(left, top, middle)
    if seg[2]:
        vline(right - thickness + 1, top, middle)
    if seg[3]:
        hline(middle)
    if seg[4]:
        vline(left, middle, bottom)
    if seg[5]:
        vline(right - thickness + 1, middle, bottom)
    if seg[6]:
        hline(bottom - thickness + 1)
    return canvas


def make_digits(
    n_samples: int = 500,
    size: int = 16,
    noise: float = 0.08,
    max_shift: int = 1,
    seed: int = 17,
    day: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(images, labels)``: images ``(n, size, size)`` in [0, 1]."""
    if size < 10:
        raise ValueError(f"size must be >= 10 to render glyphs, got {size}")
    rng = np.random.default_rng(seed + 104729 * day)
    thickness = max(1, size // 8)

    glyphs = {d: _render_glyph(d, size, thickness) for d in range(10)}
    labels = rng.integers(0, 10, n_samples)
    images = np.zeros((n_samples, size, size), dtype=np.float64)
    for i, digit in enumerate(labels):
        img = glyphs[int(digit)] * rng.uniform(0.75, 1.0)
        dx, dy = rng.integers(-max_shift, max_shift + 1, 2)
        img = np.roll(np.roll(img, dx, axis=0), dy, axis=1)
        img = img + rng.standard_normal((size, size)) * noise
        images[i] = img.clip(0.0, 1.0)
    return images, labels.astype(np.int64)
