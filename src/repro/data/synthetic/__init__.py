"""Seeded synthetic datasets standing in for the paper's private data."""

from .digits import make_digits
from .dpm import make_dpm, true_transition_matrix
from .readmission import make_readmission
from .sentiment import make_reviews, vocabulary

__all__ = [
    "make_digits",
    "make_dpm",
    "true_transition_matrix",
    "make_readmission",
    "make_reviews",
    "vocabulary",
]
