"""Columnar table: the relational payload flowing through pipelines.

A :class:`Table` is an ordered mapping of column name to 1-D numpy array.
It carries the paper's relational schema hash (section IV-B): standardized,
sorted, concatenated column headers under SHA-256. Renaming, adding, or
dropping a column changes the schema hash; editing values does not — which
is exactly the compatibility signal the merge machinery needs.

String columns use numpy object arrays with ``None`` for missing values;
numeric columns use ``np.nan``.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from ..errors import ComponentError
from ..storage.hashing import relational_schema_hash


def _as_column(values) -> np.ndarray:
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ComponentError(f"table columns must be 1-D, got shape {arr.shape}")
    if arr.dtype.kind in ("U", "S"):
        arr = arr.astype(object)
    return arr


class Table:
    """Immutable-by-convention columnar table."""

    def __init__(self, columns: Mapping[str, Iterable]):
        if not columns:
            raise ComponentError("a table needs at least one column")
        self._columns: dict[str, np.ndarray] = {}
        length: int | None = None
        for name, values in columns.items():
            col = _as_column(values)
            if length is None:
                length = col.shape[0]
            elif col.shape[0] != length:
                raise ComponentError(
                    f"column {name!r} has {col.shape[0]} rows, expected {length}"
                )
            self._columns[str(name)] = col
        self._length = int(length or 0)

    # ------------------------------------------------------------ properties
    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    @property
    def n_rows(self) -> int:
        return self._length

    @property
    def n_columns(self) -> int:
        return len(self._columns)

    @property
    def schema_hash(self) -> str:
        """Relational schema hash per paper section IV-B."""
        return relational_schema_hash(self._columns)

    # -------------------------------------------------------------- access
    def column(self, name: str) -> np.ndarray:
        if name not in self._columns:
            raise KeyError(f"no column {name!r}; have {self.column_names}")
        return self._columns[name]

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def items(self):
        return self._columns.items()

    def to_dict(self) -> dict[str, np.ndarray]:
        return dict(self._columns)

    # ------------------------------------------------------------ transforms
    def select(self, names: Sequence[str]) -> "Table":
        """New table with only ``names``, in the given order."""
        return Table({name: self.column(name) for name in names})

    def drop(self, names: Sequence[str]) -> "Table":
        dropped = set(names)
        kept = {n: c for n, c in self._columns.items() if n not in dropped}
        return Table(kept)

    def with_column(self, name: str, values) -> "Table":
        """New table with ``name`` added or replaced."""
        cols = dict(self._columns)
        cols[name] = _as_column(values)
        return Table(cols)

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        cols = {mapping.get(n, n): c for n, c in self._columns.items()}
        return Table(cols)

    def take(self, indices) -> "Table":
        """Row subset by integer indices or boolean mask."""
        idx = np.asarray(indices)
        return Table({n: c[idx] for n, c in self._columns.items()})

    def head(self, n: int) -> "Table":
        return self.take(np.arange(min(n, self._length)))

    def numeric_matrix(self, names: Sequence[str] | None = None) -> np.ndarray:
        """Stack numeric columns into an ``(n_rows, n_cols)`` float matrix."""
        selected = names if names is not None else [
            n for n, c in self._columns.items() if c.dtype.kind in "fiub"
        ]
        if not selected:
            raise ComponentError("no numeric columns to stack")
        return np.column_stack([
            self.column(n).astype(np.float64) for n in selected
        ])

    # ------------------------------------------------------------- equality
    def equals(self, other: "Table") -> bool:
        if self.column_names != other.column_names or self.n_rows != other.n_rows:
            return False
        for name in self.column_names:
            a, b = self.column(name), other.column(name)
            if a.dtype.kind == "f" and b.dtype.kind == "f":
                if not np.allclose(a, b, equal_nan=True):
                    return False
            elif not np.array_equal(a, b):
                return False
        return True

    def __repr__(self) -> str:
        cols = ", ".join(self.column_names[:6])
        suffix = ", ..." if self.n_columns > 6 else ""
        return f"Table({self.n_rows} rows x {self.n_columns} cols: {cols}{suffix})"


def concat_rows(tables: Sequence[Table]) -> Table:
    """Vertically concatenate tables with identical column names."""
    if not tables:
        raise ComponentError("need at least one table to concatenate")
    names = tables[0].column_names
    for t in tables[1:]:
        if t.column_names != names:
            raise ComponentError("cannot concatenate tables with different schemas")
    return Table({
        n: np.concatenate([t.column(n) for t in tables]) for n in names
    })
