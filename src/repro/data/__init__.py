"""Data substrate: columnar tables, serialization, synthetic datasets."""

from .serialize import payload_from_bytes, payload_to_bytes
from .table import Table, concat_rows

__all__ = ["payload_from_bytes", "payload_to_bytes", "Table", "concat_rows"]
