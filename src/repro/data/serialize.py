"""Deterministic binary serialization for pipeline payloads.

Everything a component emits must become bytes before the storage engine
can chunk and dedup it. Determinism matters: the same logical value must
serialize to the same bytes on every run, otherwise content addressing
would see phantom changes. We therefore avoid pickle and write a small
tagged format covering the payload kinds pipelines actually produce:

* ``Table`` (columnar, numeric + string columns)
* ``numpy.ndarray`` of any shape/dtype
* ``dict`` with string keys (e.g. model parameter sets), ``list``/``tuple``
* scalars: ``str``, ``int``, ``float``, ``bool``, ``None``, ``bytes``

The format is length-prefixed throughout, so payloads survive chunking
boundaries and truncation is always detected.
"""

from __future__ import annotations

import io
import json
import struct

import numpy as np

from ..errors import StorageError
from .table import Table

MAGIC = b"RPR1"

_TAG_NONE = b"N"
_TAG_BOOL = b"b"
_TAG_INT = b"i"
_TAG_FLOAT = b"f"
_TAG_STR = b"s"
_TAG_BYTES = b"y"
_TAG_LIST = b"L"
_TAG_DICT = b"D"
_TAG_ARRAY = b"A"
_TAG_TABLE = b"T"


def _write_len(out: io.BytesIO, n: int) -> None:
    out.write(struct.pack(">Q", n))


def _read_len(buf: io.BytesIO) -> int:
    raw = buf.read(8)
    if len(raw) != 8:
        raise StorageError("truncated payload: missing length prefix")
    return struct.unpack(">Q", raw)[0]


def _read_exact(buf: io.BytesIO, n: int) -> bytes:
    raw = buf.read(n)
    if len(raw) != n:
        raise StorageError(f"truncated payload: wanted {n} bytes, got {len(raw)}")
    return raw


# --------------------------------------------------------------------- array
def _write_array(out: io.BytesIO, arr: np.ndarray) -> None:
    if arr.dtype == object:
        _write_string_column(out, arr)
        return
    header = json.dumps({
        "dtype": arr.dtype.str,
        "shape": list(arr.shape),
        "kind": "dense",
    }, sort_keys=True).encode("utf-8")
    _write_len(out, len(header))
    out.write(header)
    raw = np.ascontiguousarray(arr).tobytes()
    _write_len(out, len(raw))
    out.write(raw)


def _write_string_column(out: io.BytesIO, arr: np.ndarray) -> None:
    header = json.dumps({
        "dtype": "object",
        "shape": list(arr.shape),
        "kind": "strings",
    }, sort_keys=True).encode("utf-8")
    _write_len(out, len(header))
    out.write(header)
    body = io.BytesIO()
    for item in arr.ravel():
        if item is None:
            body.write(struct.pack(">q", -1))
        else:
            encoded = str(item).encode("utf-8")
            body.write(struct.pack(">q", len(encoded)))
            body.write(encoded)
    raw = body.getvalue()
    _write_len(out, len(raw))
    out.write(raw)


def _read_array(buf: io.BytesIO) -> np.ndarray:
    header = json.loads(_read_exact(buf, _read_len(buf)).decode("utf-8"))
    raw = _read_exact(buf, _read_len(buf))
    shape = tuple(header["shape"])
    if header["kind"] == "strings":
        body = io.BytesIO(raw)
        items: list[object] = []
        total = int(np.prod(shape)) if shape else 1
        for _ in range(total):
            (n,) = struct.unpack(">q", _read_exact(body, 8))
            items.append(None if n < 0 else _read_exact(body, n).decode("utf-8"))
        arr = np.empty(total, dtype=object)
        arr[:] = items
        return arr.reshape(shape)
    arr = np.frombuffer(raw, dtype=np.dtype(header["dtype"]))
    return arr.reshape(shape).copy()


# -------------------------------------------------------------------- values
def _write_value(out: io.BytesIO, value) -> None:
    if value is None:
        out.write(_TAG_NONE)
    elif isinstance(value, bool):  # before int: bool is an int subclass
        out.write(_TAG_BOOL)
        out.write(b"\x01" if value else b"\x00")
    elif isinstance(value, (int, np.integer)):
        out.write(_TAG_INT)
        encoded = str(int(value)).encode("ascii")
        _write_len(out, len(encoded))
        out.write(encoded)
    elif isinstance(value, (float, np.floating)):
        out.write(_TAG_FLOAT)
        out.write(struct.pack(">d", float(value)))
    elif isinstance(value, str):
        out.write(_TAG_STR)
        encoded = value.encode("utf-8")
        _write_len(out, len(encoded))
        out.write(encoded)
    elif isinstance(value, (bytes, bytearray)):
        out.write(_TAG_BYTES)
        _write_len(out, len(value))
        out.write(bytes(value))
    elif isinstance(value, np.ndarray):
        out.write(_TAG_ARRAY)
        _write_array(out, value)
    elif isinstance(value, Table):
        out.write(_TAG_TABLE)
        names = value.column_names
        _write_len(out, len(names))
        for name in names:
            encoded = name.encode("utf-8")
            _write_len(out, len(encoded))
            out.write(encoded)
            _write_array(out, value.column(name))
    elif isinstance(value, (list, tuple)):
        out.write(_TAG_LIST)
        _write_len(out, len(value))
        for item in value:
            _write_value(out, item)
    elif isinstance(value, dict):
        out.write(_TAG_DICT)
        keys = list(value)
        for key in keys:
            if not isinstance(key, str):
                raise StorageError(f"dict keys must be str, got {type(key).__name__}")
        _write_len(out, len(keys))
        # Preserve insertion order: parameter dicts are ordered on purpose.
        for key in keys:
            encoded = key.encode("utf-8")
            _write_len(out, len(encoded))
            out.write(encoded)
            _write_value(out, value[key])
    else:
        raise StorageError(f"cannot serialize value of type {type(value).__name__}")


def _read_value(buf: io.BytesIO):
    tag = buf.read(1)
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_BOOL:
        return _read_exact(buf, 1) == b"\x01"
    if tag == _TAG_INT:
        return int(_read_exact(buf, _read_len(buf)).decode("ascii"))
    if tag == _TAG_FLOAT:
        return struct.unpack(">d", _read_exact(buf, 8))[0]
    if tag == _TAG_STR:
        return _read_exact(buf, _read_len(buf)).decode("utf-8")
    if tag == _TAG_BYTES:
        return _read_exact(buf, _read_len(buf))
    if tag == _TAG_ARRAY:
        return _read_array(buf)
    if tag == _TAG_TABLE:
        n = _read_len(buf)
        columns: dict[str, np.ndarray] = {}
        for _ in range(n):
            name = _read_exact(buf, _read_len(buf)).decode("utf-8")
            columns[name] = _read_array(buf)
        return Table(columns)
    if tag == _TAG_LIST:
        n = _read_len(buf)
        return [_read_value(buf) for _ in range(n)]
    if tag == _TAG_DICT:
        n = _read_len(buf)
        result = {}
        for _ in range(n):
            key = _read_exact(buf, _read_len(buf)).decode("utf-8")
            result[key] = _read_value(buf)
        return result
    raise StorageError(f"unknown payload tag: {tag!r}")


# ---------------------------------------------------------------- public API
def payload_to_bytes(value) -> bytes:
    """Serialize any supported payload to deterministic bytes."""
    out = io.BytesIO()
    out.write(MAGIC)
    _write_value(out, value)
    return out.getvalue()


def payload_from_bytes(data: bytes):
    """Inverse of :func:`payload_to_bytes`."""
    buf = io.BytesIO(data)
    magic = buf.read(len(MAGIC))
    if magic != MAGIC:
        raise StorageError(f"bad payload magic: {magic!r}")
    value = _read_value(buf)
    trailing = buf.read(1)
    if trailing:
        raise StorageError("trailing bytes after payload")
    return value
