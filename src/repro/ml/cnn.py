"""Small convolutional network (im2col convolution, max-pool, dense head).

The Readmission pipeline's running example trains "a convolutional neural
network (CNN) model" (paper Fig. 1-4 label the model stage ``CNN``). This
numpy CNN is the faithful stand-in: one conv layer, 2x2 max-pool, one dense
hidden layer, softmax output, trained with mini-batch SGD. It accepts
either image batches ``(n, h, w)`` or flat feature rows (reshaped to a
square-ish 2-D grid) so the same model component can sit behind tabular
feature extractors, matching how the paper's CNN consumes extracted EHR
features.
"""

from __future__ import annotations

import numpy as np

from .base import Classifier, encode_labels, one_hot
from .utils import minibatches, relu, resolve_rng, softmax, xavier_init


def _to_grid(X: np.ndarray) -> np.ndarray:
    """Coerce input to (n, h, w): pad flat rows into a near-square grid."""
    arr = np.asarray(X, dtype=np.float64)
    if arr.ndim == 3:
        return arr
    if arr.ndim != 2:
        raise ValueError(f"expected 2-D or 3-D input, got shape {arr.shape}")
    n, d = arr.shape
    side = int(np.ceil(np.sqrt(d)))
    padded = np.zeros((n, side * side), dtype=np.float64)
    padded[:, :d] = arr
    return padded.reshape(n, side, side)


def im2col(images: np.ndarray, kernel: int) -> np.ndarray:
    """Unfold (n, h, w) into (n, out_h*out_w, kernel*kernel) patches."""
    n, h, w = images.shape
    out_h, out_w = h - kernel + 1, w - kernel + 1
    if out_h < 1 or out_w < 1:
        raise ValueError(f"kernel {kernel} too large for images {h}x{w}")
    strides = images.strides
    windows = np.lib.stride_tricks.as_strided(
        images,
        shape=(n, out_h, out_w, kernel, kernel),
        strides=(strides[0], strides[1], strides[2], strides[1], strides[2]),
        writeable=False,
    )
    return windows.reshape(n, out_h * out_w, kernel * kernel)


class SimpleCNN(Classifier):
    """Conv(k filters) -> ReLU -> max-pool 2x2 -> dense -> softmax."""

    def __init__(
        self,
        n_filters: int = 6,
        kernel_size: int = 3,
        hidden_size: int = 32,
        learning_rate: float = 0.05,
        n_epochs: int = 12,
        batch_size: int = 32,
        l2: float = 1e-4,
        seed: int = 0,
    ):
        if kernel_size < 2:
            raise ValueError(f"kernel_size must be >= 2, got {kernel_size}")
        self.n_filters = n_filters
        self.kernel_size = kernel_size
        self.hidden_size = hidden_size
        self.learning_rate = learning_rate
        self.n_epochs = n_epochs
        self.batch_size = batch_size
        self.l2 = l2
        self.seed = seed
        self.loss_history_: list[float] = []

    # ------------------------------------------------------------- internals
    def _pool_shape(self, h: int, w: int) -> tuple[int, int, int, int]:
        conv_h, conv_w = h - self.kernel_size + 1, w - self.kernel_size + 1
        return conv_h, conv_w, conv_h // 2, conv_w // 2

    def _forward(self, images: np.ndarray):
        n, h, w = images.shape
        conv_h, conv_w, pool_h, pool_w = self._pool_shape(h, w)
        cols = im2col(images, self.kernel_size)  # (n, conv_h*conv_w, k*k)
        conv = cols @ self.filters_.T + self.conv_bias_  # (n, positions, filters)
        conv = conv.reshape(n, conv_h, conv_w, self.n_filters)
        activated = relu(conv)
        # 2x2 max-pool (truncate odd edges).
        trimmed = activated[:, : pool_h * 2, : pool_w * 2, :]
        blocks = trimmed.reshape(n, pool_h, 2, pool_w, 2, self.n_filters)
        pooled = blocks.max(axis=(2, 4))
        flat = pooled.reshape(n, -1)
        hidden = relu(flat @ self.W1_ + self.b1_)
        logits = hidden @ self.W2_ + self.b2_
        cache = (cols, conv, activated, blocks, pooled, flat, hidden)
        return logits, cache

    def fit(self, X, y) -> "SimpleCNN":
        images = _to_grid(X)
        n, h, w = images.shape
        self.input_shape_ = (h, w)
        self.classes_, indices = encode_labels(y)
        n_classes = self.classes_.size
        targets_full = one_hot(indices, n_classes)
        rng = resolve_rng(self.seed)

        k2 = self.kernel_size * self.kernel_size
        conv_h, conv_w, pool_h, pool_w = self._pool_shape(h, w)
        flat_size = pool_h * pool_w * self.n_filters
        self.filters_ = rng.standard_normal((self.n_filters, k2)) * np.sqrt(2.0 / k2)
        self.conv_bias_ = np.zeros(self.n_filters)
        self.W1_ = xavier_init(rng, flat_size, self.hidden_size)
        self.b1_ = np.zeros(self.hidden_size)
        self.W2_ = xavier_init(rng, self.hidden_size, n_classes)
        self.b2_ = np.zeros(n_classes)
        self.loss_history_ = []

        for _ in range(self.n_epochs):
            epoch_loss, n_batches = 0.0, 0
            for batch in minibatches(n, self.batch_size, rng):
                logits, cache = self._forward(images[batch])
                proba = softmax(logits)
                batch_targets = targets_full[batch]
                epoch_loss += -np.mean(
                    np.sum(batch_targets * np.log(np.clip(proba, 1e-12, 1.0)), axis=1)
                )
                n_batches += 1
                self._backward(images[batch], proba, batch_targets, cache)
            self.loss_history_.append(epoch_loss / max(n_batches, 1))
        self._mark_fitted()
        return self

    def _backward(self, images, proba, targets, cache) -> None:
        cols, conv, activated, blocks, pooled, flat, hidden = cache
        n = images.shape[0]
        lr = self.learning_rate
        grad_logits = (proba - targets) / n

        grad_W2 = hidden.T @ grad_logits + self.l2 * self.W2_
        grad_b2 = grad_logits.sum(axis=0)
        grad_hidden = (grad_logits @ self.W2_.T) * (hidden > 0)
        grad_W1 = flat.T @ grad_hidden + self.l2 * self.W1_
        grad_b1 = grad_hidden.sum(axis=0)
        grad_flat = grad_hidden @ self.W1_.T

        grad_pooled = grad_flat.reshape(pooled.shape)
        # Route pool gradients to the max positions. blocks has axes
        # (n, ph, 2, pw, 2, f); bring the two window axes together first.
        n_, pool_h, _, pool_w, _, f = blocks.shape
        rearranged = blocks.transpose(0, 1, 3, 2, 4, 5)  # (n, ph, pw, 2, 2, f)
        flat_blocks = rearranged.reshape(n_, pool_h, pool_w, 4, f)
        argmax = flat_blocks.argmax(axis=3)  # (n, ph, pw, f)
        grad_flat_blocks = np.zeros_like(flat_blocks)
        idx_n, idx_ph, idx_pw, idx_f = np.indices(argmax.shape)
        grad_flat_blocks[idx_n, idx_ph, idx_pw, argmax, idx_f] = grad_pooled
        grad_windows = grad_flat_blocks.reshape(n_, pool_h, pool_w, 2, 2, f)
        grad_act = np.zeros_like(activated)
        grad_act[:, : pool_h * 2, : pool_w * 2, :] = (
            grad_windows.transpose(0, 1, 3, 2, 4, 5)  # back to (n, ph, 2, pw, 2, f)
            .reshape(n_, pool_h * 2, pool_w * 2, f)
        )
        grad_conv = grad_act * (conv > 0)
        grad_conv_flat = grad_conv.reshape(n, -1, self.n_filters)  # (n, pos, f)
        grad_filters = np.einsum("npk,npf->fk", cols, grad_conv_flat) + self.l2 * self.filters_
        grad_conv_bias = grad_conv_flat.sum(axis=(0, 1))

        self.W2_ -= lr * grad_W2
        self.b2_ -= lr * grad_b2
        self.W1_ -= lr * grad_W1
        self.b1_ -= lr * grad_b1
        self.filters_ -= lr * grad_filters
        self.conv_bias_ -= lr * grad_conv_bias

    def predict_proba(self, X) -> np.ndarray:
        self.check_fitted()
        images = _to_grid(X)
        logits, _ = self._forward(images)
        return softmax(logits)

    def get_params(self) -> dict:
        self.check_fitted()
        return {
            "filters": self.filters_,
            "conv_bias": self.conv_bias_,
            "W1": self.W1_,
            "b1": self.b1_,
            "W2": self.W2_,
            "b2": self.b2_,
        }
