"""Estimator and transformer base classes for the numpy ML substrate.

The paper's pipelines treat every library component as a transformation
``y = f(x | θ)`` (Definition 3). Our ML building blocks follow a minimal
sklearn-like contract so that pipeline components can wrap them uniformly:

* ``Transformer.fit(X) -> self``, ``transform(X) -> X'``
* ``Estimator.fit(X, y) -> self``, ``predict(X)``, and for classifiers
  ``predict_proba(X)``

Every fitted object exposes ``get_params()`` returning a dict of numpy
arrays/scalars so models serialize deterministically through
:mod:`repro.data.serialize` (that is what gets checkpointed into the
storage engine).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..errors import NotFittedError


class Fitted(ABC):
    """Mixin: track and assert fitted state."""

    _fitted: bool = False

    def _mark_fitted(self) -> None:
        self._fitted = True

    def check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(type(self).__name__)

    @abstractmethod
    def get_params(self) -> dict:
        """Learned state as a serializable dict (arrays and scalars)."""


class Transformer(Fitted):
    """Stateless-interface feature transformer."""

    @abstractmethod
    def fit(self, X: np.ndarray) -> "Transformer": ...

    @abstractmethod
    def transform(self, X: np.ndarray) -> np.ndarray: ...

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class Estimator(Fitted):
    """Supervised model."""

    @abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "Estimator": ...

    @abstractmethod
    def predict(self, X: np.ndarray) -> np.ndarray: ...


class Classifier(Estimator):
    """Adds class probabilities; ``classes_`` is set by ``fit``."""

    classes_: np.ndarray

    @abstractmethod
    def predict_proba(self, X: np.ndarray) -> np.ndarray: ...

    def predict(self, X: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]


def as_2d(X) -> np.ndarray:
    """Coerce input to a 2-D float64 matrix."""
    arr = np.asarray(X, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ValueError(f"expected 2-D input, got shape {arr.shape}")
    return arr


def encode_labels(y) -> tuple[np.ndarray, np.ndarray]:
    """Return (classes, indices) with indices into the sorted class set."""
    arr = np.asarray(y).ravel()
    classes, indices = np.unique(arr, return_inverse=True)
    return classes, indices


def one_hot(indices: np.ndarray, n_classes: int) -> np.ndarray:
    out = np.zeros((indices.shape[0], n_classes), dtype=np.float64)
    out[np.arange(indices.shape[0]), indices] = 1.0
    return out
