"""Gaussian hidden Markov model (scaled forward-backward + Baum-Welch).

The DPM pipeline's third step designs "a Hidden Markov Modeling (HMM) model
... to process the extracted medical features so that they become unbiased"
(paper section VII-A). We implement a full diagonal-covariance Gaussian HMM:

* scaled forward/backward recursions (no underflow on long sequences),
* Baum-Welch EM for transitions, means, variances, and initial state probs,
* Viterbi decoding and posterior state probabilities.

In the DPM workload the posterior state probabilities are appended to the
visit features — the "unbiasing" — before the downstream classifier. The
HMM is deliberately the expensive pre-processing step: the paper observes
"HMM processing is time consuming", which drives the reuse savings in
Figs. 5-6.
"""

from __future__ import annotations

import numpy as np

from ..errors import NotFittedError
from .utils import resolve_rng

_MIN_VAR = 1e-4
_MIN_PROB = 1e-10


class GaussianHMM:
    """Diagonal-covariance Gaussian HMM trained with Baum-Welch."""

    def __init__(
        self,
        n_states: int = 4,
        n_iterations: int = 25,
        tol: float = 1e-4,
        seed: int = 0,
    ):
        if n_states < 2:
            raise ValueError(f"need at least 2 states, got {n_states}")
        self.n_states = n_states
        self.n_iterations = n_iterations
        self.tol = tol
        self.seed = seed
        self._fitted = False
        self.initial_: np.ndarray | None = None
        self.transitions_: np.ndarray | None = None
        self.means_: np.ndarray | None = None
        self.variances_: np.ndarray | None = None
        self.log_likelihood_history_: list[float] = []

    # --------------------------------------------------------------- helpers
    def _log_emission(self, X: np.ndarray) -> np.ndarray:
        """Log density of each frame under each state: (T, n_states)."""
        diff = X[:, None, :] - self.means_[None, :, :]
        inv_var = 1.0 / self.variances_
        quad = np.sum(diff * diff * inv_var[None, :, :], axis=2)
        log_norm = np.sum(np.log(2.0 * np.pi * self.variances_), axis=1)
        return -0.5 * (quad + log_norm[None, :])

    def _emission_probs(self, X: np.ndarray) -> tuple[np.ndarray, float]:
        """Return per-frame-normalized emission probs and the log offset.

        Normalizing each frame by its max log-density avoids underflow; the
        subtracted offsets are returned so the exact sequence log-likelihood
        can be recovered as ``sum(log(scale)) + offset``.
        """
        log_b = self._log_emission(X)
        frame_max = log_b.max(axis=1, keepdims=True)
        log_b = log_b - frame_max
        return np.clip(np.exp(log_b), _MIN_PROB, None), float(frame_max.sum())

    def _forward(self, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        T = b.shape[0]
        alpha = np.zeros((T, self.n_states))
        scale = np.zeros(T)
        alpha[0] = self.initial_ * b[0]
        scale[0] = alpha[0].sum()
        alpha[0] /= max(scale[0], _MIN_PROB)
        for t in range(1, T):
            alpha[t] = (alpha[t - 1] @ self.transitions_) * b[t]
            scale[t] = alpha[t].sum()
            alpha[t] /= max(scale[t], _MIN_PROB)
        return alpha, scale

    def _backward(self, b: np.ndarray, scale: np.ndarray) -> np.ndarray:
        T = b.shape[0]
        beta = np.zeros((T, self.n_states))
        beta[-1] = 1.0
        for t in range(T - 2, -1, -1):
            beta[t] = self.transitions_ @ (b[t + 1] * beta[t + 1])
            beta[t] /= max(scale[t + 1], _MIN_PROB)
        return beta

    # ------------------------------------------------------------ public API
    def fit(self, sequences: list[np.ndarray]) -> "GaussianHMM":
        """Baum-Welch over a list of (T_i, n_features) sequences."""
        if not sequences:
            raise ValueError("need at least one sequence")
        sequences = [np.atleast_2d(np.asarray(s, dtype=np.float64)) for s in sequences]
        n_features = sequences[0].shape[1]
        stacked = np.vstack(sequences)
        rng = resolve_rng(self.seed)

        # init: k-means-free heuristic — spread means over data quantiles
        quantiles = np.linspace(0.1, 0.9, self.n_states)
        self.means_ = np.quantile(stacked, quantiles, axis=0)
        self.means_ = self.means_ + rng.standard_normal(self.means_.shape) * 1e-3
        global_var = stacked.var(axis=0).clip(_MIN_VAR, None)
        self.variances_ = np.tile(global_var, (self.n_states, 1))
        self.initial_ = np.full(self.n_states, 1.0 / self.n_states)
        self.transitions_ = np.full(
            (self.n_states, self.n_states), 0.1 / max(self.n_states - 1, 1)
        )
        np.fill_diagonal(self.transitions_, 0.9)

        self.log_likelihood_history_ = []
        prev_ll = -np.inf
        for _ in range(self.n_iterations):
            total_ll = 0.0
            init_acc = np.zeros(self.n_states)
            trans_acc = np.zeros((self.n_states, self.n_states))
            mean_num = np.zeros((self.n_states, n_features))
            var_num = np.zeros((self.n_states, n_features))
            gamma_sum = np.zeros(self.n_states)

            for seq in sequences:
                b, log_offset = self._emission_probs(seq)
                alpha, scale = self._forward(b)
                beta = self._backward(b, scale)
                total_ll += (
                    float(np.sum(np.log(np.clip(scale, _MIN_PROB, None)))) + log_offset
                )
                gamma = alpha * beta
                gamma /= np.clip(gamma.sum(axis=1, keepdims=True), _MIN_PROB, None)

                init_acc += gamma[0]
                if seq.shape[0] > 1:
                    # xi[t] proportional to alpha[t] A b[t+1] beta[t+1]
                    xi = (
                        alpha[:-1, :, None]
                        * self.transitions_[None, :, :]
                        * (b[1:] * beta[1:])[:, None, :]
                    )
                    xi /= np.clip(xi.sum(axis=(1, 2), keepdims=True), _MIN_PROB, None)
                    trans_acc += xi.sum(axis=0)
                gamma_sum += gamma.sum(axis=0)
                mean_num += gamma.T @ seq
                var_num += gamma.T @ (seq * seq)

            self.initial_ = init_acc / init_acc.sum()
            row_sums = np.clip(trans_acc.sum(axis=1, keepdims=True), _MIN_PROB, None)
            self.transitions_ = trans_acc / row_sums
            denom = np.clip(gamma_sum[:, None], _MIN_PROB, None)
            self.means_ = mean_num / denom
            self.variances_ = (var_num / denom - self.means_**2).clip(_MIN_VAR, None)

            self.log_likelihood_history_.append(total_ll)
            if abs(total_ll - prev_ll) < self.tol * max(abs(prev_ll), 1.0):
                break
            prev_ll = total_ll

        self._fitted = True
        return self

    def posterior(self, sequence: np.ndarray) -> np.ndarray:
        """Per-frame state posteriors gamma: (T, n_states)."""
        self._check()
        seq = np.atleast_2d(np.asarray(sequence, dtype=np.float64))
        b, _ = self._emission_probs(seq)
        alpha, scale = self._forward(b)
        beta = self._backward(b, scale)
        gamma = alpha * beta
        return gamma / np.clip(gamma.sum(axis=1, keepdims=True), _MIN_PROB, None)

    def viterbi(self, sequence: np.ndarray) -> np.ndarray:
        """Most likely state path."""
        self._check()
        seq = np.atleast_2d(np.asarray(sequence, dtype=np.float64))
        log_b = self._log_emission(seq)
        log_a = np.log(np.clip(self.transitions_, _MIN_PROB, None))
        T = seq.shape[0]
        delta = np.zeros((T, self.n_states))
        psi = np.zeros((T, self.n_states), dtype=np.int64)
        delta[0] = np.log(np.clip(self.initial_, _MIN_PROB, None)) + log_b[0]
        for t in range(1, T):
            scores = delta[t - 1][:, None] + log_a
            psi[t] = scores.argmax(axis=0)
            delta[t] = scores.max(axis=0) + log_b[t]
        path = np.zeros(T, dtype=np.int64)
        path[-1] = delta[-1].argmax()
        for t in range(T - 2, -1, -1):
            path[t] = psi[t + 1][path[t + 1]]
        return path

    def log_likelihood(self, sequence: np.ndarray) -> float:
        self._check()
        seq = np.atleast_2d(np.asarray(sequence, dtype=np.float64))
        b, log_offset = self._emission_probs(seq)
        _, scale = self._forward(b)
        return float(np.sum(np.log(np.clip(scale, _MIN_PROB, None)))) + log_offset

    def get_params(self) -> dict:
        self._check()
        return {
            "initial": self.initial_,
            "transitions": self.transitions_,
            "means": self.means_,
            "variances": self.variances_,
        }

    def _check(self) -> None:
        if not self._fitted:
            raise NotFittedError("GaussianHMM")
