"""Zernike moment features for image classification.

The Autolearn pipeline "is built for image classification of digits using
Zernike moments as features" (paper section VII-A). Zernike moments project
an image onto an orthogonal polynomial basis over the unit disk; the
*magnitudes* |Z_nm| are rotation-invariant, which is what makes them good
shape descriptors.

Implementation notes: the radial polynomial R_nm uses the standard
factorial formula, evaluated with log-gamma for stability; pixels outside
the unit disk are ignored; moments are computed for all (n, m) with
n <= max_order, n - |m| even, m >= 0 (negative m duplicates magnitude).
"""

from __future__ import annotations

from math import lgamma

import numpy as np


def _radial_coefficients(n: int, m: int) -> list[tuple[float, int]]:
    """Coefficients (c_s, power) of R_nm(rho) = sum c_s * rho^(n-2s)."""
    coeffs = []
    for s in range((n - m) // 2 + 1):
        log_num = lgamma(n - s + 1)
        log_den = (
            lgamma(s + 1)
            + lgamma((n + m) // 2 - s + 1)
            + lgamma((n - m) // 2 - s + 1)
        )
        value = (-1.0) ** s * np.exp(log_num - log_den)
        coeffs.append((value, n - 2 * s))
    return coeffs


def zernike_basis_indices(max_order: int) -> list[tuple[int, int]]:
    """All (n, m) with 0 <= m <= n <= max_order and n - m even."""
    return [
        (n, m)
        for n in range(max_order + 1)
        for m in range(n + 1)
        if (n - m) % 2 == 0
    ]


class ZernikeExtractor:
    """Compute |Z_nm| magnitudes for batches of square grayscale images."""

    def __init__(self, max_order: int = 8):
        if max_order < 1:
            raise ValueError(f"max_order must be >= 1, got {max_order}")
        self.max_order = max_order
        self.indices = zernike_basis_indices(max_order)
        self._cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    @property
    def n_features(self) -> int:
        return len(self.indices)

    def _grid(self, size: int) -> tuple[np.ndarray, np.ndarray]:
        """(rho, theta) polar coordinates of in-disk pixels, cached by size."""
        if size not in self._cache:
            coords = (np.arange(size) + 0.5) / size * 2.0 - 1.0
            xx, yy = np.meshgrid(coords, coords)
            rho = np.sqrt(xx**2 + yy**2)
            theta = np.arctan2(yy, xx)
            self._cache[size] = (rho, theta)
        return self._cache[size]

    def _basis(self, size: int) -> np.ndarray:
        """Complex conjugate basis stack (n_moments, size, size), 0 off-disk."""
        rho, theta = self._grid(size)
        inside = rho <= 1.0
        stack = np.zeros((len(self.indices), size, size), dtype=np.complex128)
        for k, (n, m) in enumerate(self.indices):
            radial = np.zeros_like(rho)
            for coeff, power in _radial_coefficients(n, m):
                radial += coeff * np.power(rho, power, where=inside, out=np.zeros_like(rho))
            phase = np.exp(-1j * m * theta)
            stack[k] = np.where(inside, radial * phase, 0.0)
            stack[k] *= (n + 1) / np.pi
        return stack

    def transform(self, images: np.ndarray) -> np.ndarray:
        """Return (n_images, n_moments) magnitude features."""
        images = np.asarray(images, dtype=np.float64)
        if images.ndim == 2:
            images = images[None, :, :]
        if images.ndim != 3 or images.shape[1] != images.shape[2]:
            raise ValueError(f"expected (n, s, s) images, got shape {images.shape}")
        size = images.shape[1]
        basis = self._basis(size)
        # moment = sum over pixels of image * conj basis, normalized by area
        flat_images = images.reshape(images.shape[0], -1)
        flat_basis = basis.reshape(basis.shape[0], -1)
        moments = flat_images @ flat_basis.T * (4.0 / (size * size))
        return np.abs(moments)
