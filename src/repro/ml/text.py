"""Tokenization and vocabulary for the sentiment-analysis pipeline."""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

import numpy as np


def tokenize(text: str) -> list[str]:
    """Lower-case whitespace tokenizer with punctuation stripping."""
    tokens = []
    for raw in text.lower().split():
        token = raw.strip(".,!?;:\"'()[]")
        if token:
            tokens.append(token)
    return tokens


class Vocabulary:
    """Token <-> id mapping built from a corpus, ordered by frequency.

    The vocabulary size doubles as the *schema* of text payloads (paper
    section IV-B: "vocabulary size for text datasets"), so changing
    ``max_size`` or ``min_count`` is a schema-changing update in the SA
    workload's component version family.
    """

    UNK = "<unk>"

    def __init__(self, max_size: int | None = None, min_count: int = 1):
        if min_count < 1:
            raise ValueError(f"min_count must be >= 1, got {min_count}")
        self.max_size = max_size
        self.min_count = min_count
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []

    @classmethod
    def from_tokens(cls, tokens: list[str]) -> "Vocabulary":
        """Rebuild a vocabulary from a previously-fitted token list
        (index order is the id assignment)."""
        vocab = cls(max_size=len(tokens))
        vocab._id_to_token = list(tokens)
        vocab._token_to_id = {t: i for i, t in enumerate(vocab._id_to_token)}
        return vocab

    def fit(self, documents: Iterable[list[str]]) -> "Vocabulary":
        counts = Counter()
        for doc in documents:
            counts.update(doc)
        # stable order: frequency desc, then lexicographic
        eligible = [
            (token, count) for token, count in counts.items() if count >= self.min_count
        ]
        eligible.sort(key=lambda item: (-item[1], item[0]))
        if self.max_size is not None:
            eligible = eligible[: max(self.max_size - 1, 0)]
        self._id_to_token = [self.UNK] + [token for token, _ in eligible]
        self._token_to_id = {t: i for i, t in enumerate(self._id_to_token)}
        return self

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def encode(self, tokens: list[str]) -> np.ndarray:
        unk = 0
        return np.array(
            [self._token_to_id.get(t, unk) for t in tokens], dtype=np.int64
        )

    def decode(self, ids: Iterable[int]) -> list[str]:
        return [self._id_to_token[int(i)] for i in ids]

    def tokens(self) -> list[str]:
        return list(self._id_to_token)
