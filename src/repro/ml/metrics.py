"""Evaluation metrics and the paper's score() convention.

The metric-driven merge (paper section V) selects ``argmax score(p)`` over
candidate pipelines; "for example, we can use score = 1/MSE as a score
function for a pipeline whose performance metric is MSE". Metrics here all
return plain floats; :func:`score_from_metric` converts a named metric value
into a higher-is-better score exactly as the paper prescribes.
"""

from __future__ import annotations

import numpy as np


def accuracy(y_true, y_pred) -> float:
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("cannot score empty arrays")
    return float(np.mean(y_true == y_pred))


def mse(y_true, y_pred) -> float:
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    y_pred = np.asarray(y_pred, dtype=np.float64).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    return float(np.mean((y_true - y_pred) ** 2))


def log_loss(y_true, proba, eps: float = 1e-12) -> float:
    """Binary or one-vs-rest multiclass cross-entropy."""
    y_true = np.asarray(y_true).ravel()
    proba = np.asarray(proba, dtype=np.float64)
    clipped = np.clip(proba, eps, 1.0 - eps)
    if clipped.ndim == 1:
        return float(-np.mean(
            y_true * np.log(clipped) + (1 - y_true) * np.log(1 - clipped)
        ))
    n = y_true.shape[0]
    return float(-np.mean(np.log(clipped[np.arange(n), y_true.astype(int)])))


def roc_auc(y_true, scores) -> float:
    """Binary AUC via the Mann-Whitney U statistic (tie-aware)."""
    y_true = np.asarray(y_true).ravel()
    scores = np.asarray(scores, dtype=np.float64).ravel()
    pos = scores[y_true == 1]
    neg = scores[y_true == 0]
    if pos.size == 0 or neg.size == 0:
        raise ValueError("roc_auc needs both classes present")
    order = np.argsort(np.concatenate([neg, pos]), kind="mergesort")
    ranks = np.empty(order.size, dtype=np.float64)
    sorted_scores = np.concatenate([neg, pos])[order]
    # average ranks for ties
    i = 0
    while i < order.size:
        j = i
        while j + 1 < order.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    rank_pos = ranks[neg.size :].sum()
    u = rank_pos - pos.size * (pos.size + 1) / 2.0
    return float(u / (pos.size * neg.size))


def f1_score(y_true, y_pred, positive=1) -> float:
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    tp = np.sum((y_pred == positive) & (y_true == positive))
    fp = np.sum((y_pred == positive) & (y_true != positive))
    fn = np.sum((y_pred != positive) & (y_true == positive))
    if tp == 0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return float(2 * precision * recall / (precision + recall))


def confusion_matrix(y_true, y_pred) -> np.ndarray:
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    classes = np.unique(np.concatenate([y_true, y_pred]))
    index = {c: i for i, c in enumerate(classes)}
    out = np.zeros((classes.size, classes.size), dtype=np.int64)
    for t, p in zip(y_true, y_pred):
        out[index[t], index[p]] += 1
    return out


HIGHER_IS_BETTER = {"accuracy", "auc", "f1", "score"}
LOWER_IS_BETTER = {"mse", "log_loss"}


def score_from_metric(metric_name: str, value: float) -> float:
    """Convert a metric value to a higher-is-better score (section V)."""
    if metric_name in HIGHER_IS_BETTER:
        return float(value)
    if metric_name in LOWER_IS_BETTER:
        # Paper: "we can use score = 1/MSE as a score function".
        return float(1.0 / max(value, 1e-12))
    raise ValueError(f"unknown metric {metric_name!r}")
