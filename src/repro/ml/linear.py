"""Linear models: logistic regression and ridge regression.

Logistic regression is the cheap model-component variant several workload
version families use (early versions of a pipeline's model stage), trained
with full-batch gradient descent plus L2 regularization.
"""

from __future__ import annotations

import numpy as np

from .base import Classifier, Estimator, as_2d, encode_labels, one_hot
from .utils import resolve_rng, sigmoid, softmax


class LogisticRegression(Classifier):
    """Multinomial logistic regression trained by gradient descent."""

    def __init__(
        self,
        learning_rate: float = 0.5,
        n_iterations: int = 200,
        l2: float = 1e-3,
        seed: int = 0,
    ):
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if n_iterations < 1:
            raise ValueError(f"n_iterations must be >= 1, got {n_iterations}")
        self.learning_rate = learning_rate
        self.n_iterations = n_iterations
        self.l2 = l2
        self.seed = seed
        self.weights_: np.ndarray | None = None
        self.bias_: np.ndarray | None = None

    def fit(self, X, y) -> "LogisticRegression":
        X = as_2d(X)
        self.classes_, indices = encode_labels(y)
        n_classes = self.classes_.size
        if n_classes < 2:
            raise ValueError("need at least two classes")
        rng = resolve_rng(self.seed)
        n, d = X.shape
        targets = one_hot(indices, n_classes)
        W = rng.standard_normal((d, n_classes)) * 0.01
        b = np.zeros(n_classes)
        for _ in range(self.n_iterations):
            proba = softmax(X @ W + b)
            grad_logits = (proba - targets) / n
            W -= self.learning_rate * (X.T @ grad_logits + self.l2 * W)
            b -= self.learning_rate * grad_logits.sum(axis=0)
        self.weights_, self.bias_ = W, b
        self._mark_fitted()
        return self

    def predict_proba(self, X) -> np.ndarray:
        self.check_fitted()
        return softmax(as_2d(X) @ self.weights_ + self.bias_)

    def decision_function(self, X) -> np.ndarray:
        """Binary margin (positive-class logit difference)."""
        self.check_fitted()
        logits = as_2d(X) @ self.weights_ + self.bias_
        if self.classes_.size == 2:
            return logits[:, 1] - logits[:, 0]
        return logits

    def get_params(self) -> dict:
        self.check_fitted()
        return {
            "weights": self.weights_,
            "bias": self.bias_,
            "classes": self.classes_.astype(np.int64)
            if self.classes_.dtype.kind in "iu"
            else self.classes_.astype(str).astype(object),
        }


class BinaryLogisticRegression(Classifier):
    """Dedicated two-class variant with a single weight vector.

    Kept alongside the multinomial version because some workload component
    versions intentionally differ in parameterization (different learned
    bytes for the storage-dedup experiments) while solving the same task.
    """

    def __init__(
        self,
        learning_rate: float = 0.5,
        n_iterations: int = 300,
        l2: float = 1e-3,
        seed: int = 0,
    ):
        self.learning_rate = learning_rate
        self.n_iterations = n_iterations
        self.l2 = l2
        self.seed = seed
        self.weights_: np.ndarray | None = None
        self.bias_: float = 0.0

    def fit(self, X, y) -> "BinaryLogisticRegression":
        X = as_2d(X)
        self.classes_, indices = encode_labels(y)
        if self.classes_.size != 2:
            raise ValueError(f"expected 2 classes, got {self.classes_.size}")
        target = indices.astype(np.float64)
        rng = resolve_rng(self.seed)
        n, d = X.shape
        w = rng.standard_normal(d) * 0.01
        b = 0.0
        for _ in range(self.n_iterations):
            p = sigmoid(X @ w + b)
            grad = (p - target) / n
            w -= self.learning_rate * (X.T @ grad + self.l2 * w)
            b -= self.learning_rate * grad.sum()
        self.weights_, self.bias_ = w, float(b)
        self._mark_fitted()
        return self

    def predict_proba(self, X) -> np.ndarray:
        self.check_fitted()
        p1 = sigmoid(as_2d(X) @ self.weights_ + self.bias_)
        return np.column_stack([1.0 - p1, p1])

    def get_params(self) -> dict:
        self.check_fitted()
        return {"weights": self.weights_, "bias": self.bias_}


class RidgeRegression(Estimator):
    """Closed-form L2-regularized least squares."""

    def __init__(self, alpha: float = 1.0):
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self.alpha = alpha
        self.weights_: np.ndarray | None = None
        self.bias_: float = 0.0

    def fit(self, X, y) -> "RidgeRegression":
        X = as_2d(X)
        y = np.asarray(y, dtype=np.float64).ravel()
        x_mean = X.mean(axis=0)
        y_mean = y.mean()
        Xc = X - x_mean
        gram = Xc.T @ Xc + self.alpha * np.eye(X.shape[1])
        self.weights_ = np.linalg.solve(gram, Xc.T @ (y - y_mean))
        self.bias_ = float(y_mean - x_mean @ self.weights_)
        self._mark_fitted()
        return self

    def predict(self, X) -> np.ndarray:
        self.check_fitted()
        return as_2d(X) @ self.weights_ + self.bias_

    def get_params(self) -> dict:
        self.check_fitted()
        return {"weights": self.weights_, "bias": self.bias_}
