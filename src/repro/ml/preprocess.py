"""Feature pre-processing transformers (imputation, scaling, encoding).

These are the "data cleansing" style library components of the evaluated
pipelines: the Readmission pipeline's first step "cleans the dataset by
filling in the missing diagnosis codes", then extracts numeric medical
features that need scaling and one-hot encoding before hitting a model.
"""

from __future__ import annotations

import numpy as np

from .base import Transformer, as_2d


class MeanImputer(Transformer):
    """Replace NaNs with per-column training means."""

    def __init__(self) -> None:
        self.means_: np.ndarray | None = None

    def fit(self, X) -> "MeanImputer":
        X = as_2d(X)
        with np.errstate(invalid="ignore"):
            means = np.nanmean(X, axis=0)
        self.means_ = np.where(np.isnan(means), 0.0, means)
        self._mark_fitted()
        return self

    def transform(self, X) -> np.ndarray:
        self.check_fitted()
        X = as_2d(X).copy()
        mask = np.isnan(X)
        if mask.any():
            X[mask] = np.broadcast_to(self.means_, X.shape)[mask]
        return X

    def get_params(self) -> dict:
        self.check_fitted()
        return {"means": self.means_}


class ModeImputer:
    """Fill missing categorical values (None) with the training mode.

    Operates on object arrays, not float matrices, so it does not inherit
    from :class:`Transformer` (whose contract is numeric).
    """

    def __init__(self) -> None:
        self.mode_: str | None = None
        self._fitted = False

    def fit(self, values: np.ndarray) -> "ModeImputer":
        present = [v for v in values if v is not None]
        if not present:
            self.mode_ = "unknown"
        else:
            uniques, counts = np.unique(np.array(present, dtype=object), return_counts=True)
            self.mode_ = str(uniques[np.argmax(counts)])
        self._fitted = True
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        if not self._fitted:
            from ..errors import NotFittedError

            raise NotFittedError("ModeImputer")
        out = np.array(values, dtype=object)
        out[np.array([v is None for v in out], dtype=bool)] = self.mode_
        return out

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)

    def get_params(self) -> dict:
        return {"mode": self.mode_}


class StandardScaler(Transformer):
    """Zero-mean unit-variance scaling; constant columns pass through."""

    def __init__(self) -> None:
        self.means_: np.ndarray | None = None
        self.stds_: np.ndarray | None = None

    def fit(self, X) -> "StandardScaler":
        X = as_2d(X)
        self.means_ = X.mean(axis=0)
        stds = X.std(axis=0)
        self.stds_ = np.where(stds < 1e-12, 1.0, stds)
        self._mark_fitted()
        return self

    def transform(self, X) -> np.ndarray:
        self.check_fitted()
        return (as_2d(X) - self.means_) / self.stds_

    def get_params(self) -> dict:
        self.check_fitted()
        return {"means": self.means_, "stds": self.stds_}


class MinMaxScaler(Transformer):
    """Scale each column into [0, 1] based on the training range."""

    def __init__(self) -> None:
        self.mins_: np.ndarray | None = None
        self.ranges_: np.ndarray | None = None

    def fit(self, X) -> "MinMaxScaler":
        X = as_2d(X)
        self.mins_ = X.min(axis=0)
        ranges = X.max(axis=0) - self.mins_
        self.ranges_ = np.where(ranges < 1e-12, 1.0, ranges)
        self._mark_fitted()
        return self

    def transform(self, X) -> np.ndarray:
        self.check_fitted()
        return (as_2d(X) - self.mins_) / self.ranges_

    def get_params(self) -> dict:
        self.check_fitted()
        return {"mins": self.mins_, "ranges": self.ranges_}


class OneHotEncoder:
    """Encode a categorical column into indicator columns.

    Unseen categories at transform time map to the all-zeros row, which
    keeps downstream matrix widths stable — a property the schema-hash
    compatibility rule depends on.
    """

    def __init__(self) -> None:
        self.categories_: list[str] | None = None
        self._fitted = False

    def fit(self, values: np.ndarray) -> "OneHotEncoder":
        cleaned = ["<none>" if v is None else str(v) for v in values]
        self.categories_ = sorted(set(cleaned))
        self._fitted = True
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        if not self._fitted:
            from ..errors import NotFittedError

            raise NotFittedError("OneHotEncoder")
        index = {c: i for i, c in enumerate(self.categories_)}
        out = np.zeros((len(values), len(self.categories_)), dtype=np.float64)
        for row, value in enumerate(values):
            key = "<none>" if value is None else str(value)
            col = index.get(key)
            if col is not None:
                out[row, col] = 1.0
        return out

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)

    def get_params(self) -> dict:
        return {"categories": list(self.categories_ or [])}
