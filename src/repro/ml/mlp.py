"""Multi-layer perceptron classifier (backprop, mini-batch SGD + momentum).

This is the "DL model" stage of the Readmission and DPM pipelines. The
paper trains deep models on Apache SINGA; here a seeded numpy MLP plays the
same role: an expensive trainable component whose accuracy depends on which
upstream feature-extraction version feeds it — the coupling that makes the
metric-driven merge non-trivial.
"""

from __future__ import annotations

import numpy as np

from .base import Classifier, as_2d, encode_labels, one_hot
from .utils import minibatches, relu, resolve_rng, softmax, xavier_init


class MLPClassifier(Classifier):
    """Fully-connected ReLU network with a softmax head."""

    def __init__(
        self,
        hidden_sizes: tuple[int, ...] = (32,),
        learning_rate: float = 0.05,
        n_epochs: int = 30,
        batch_size: int = 32,
        momentum: float = 0.9,
        l2: float = 1e-4,
        seed: int = 0,
    ):
        if not hidden_sizes:
            raise ValueError("need at least one hidden layer")
        if any(h < 1 for h in hidden_sizes):
            raise ValueError(f"hidden sizes must be positive, got {hidden_sizes}")
        self.hidden_sizes = tuple(int(h) for h in hidden_sizes)
        self.learning_rate = learning_rate
        self.n_epochs = n_epochs
        self.batch_size = batch_size
        self.momentum = momentum
        self.l2 = l2
        self.seed = seed
        self.weights_: list[np.ndarray] = []
        self.biases_: list[np.ndarray] = []
        self.loss_history_: list[float] = []

    # ------------------------------------------------------------- internals
    def _init_params(self, n_features: int, n_classes: int, rng) -> None:
        sizes = [n_features, *self.hidden_sizes, n_classes]
        self.weights_ = [
            xavier_init(rng, sizes[i], sizes[i + 1]) for i in range(len(sizes) - 1)
        ]
        self.biases_ = [np.zeros(sizes[i + 1]) for i in range(len(sizes) - 1)]

    def _forward(self, X: np.ndarray) -> tuple[list[np.ndarray], np.ndarray]:
        activations = [X]
        h = X
        for W, b in zip(self.weights_[:-1], self.biases_[:-1]):
            h = relu(h @ W + b)
            activations.append(h)
        logits = h @ self.weights_[-1] + self.biases_[-1]
        return activations, logits

    def _backward(
        self,
        activations: list[np.ndarray],
        proba: np.ndarray,
        targets: np.ndarray,
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        n = targets.shape[0]
        grad_logits = (proba - targets) / n
        grads_w: list[np.ndarray] = [None] * len(self.weights_)  # type: ignore[list-item]
        grads_b: list[np.ndarray] = [None] * len(self.biases_)  # type: ignore[list-item]
        delta = grad_logits
        for layer in range(len(self.weights_) - 1, -1, -1):
            grads_w[layer] = activations[layer].T @ delta + self.l2 * self.weights_[layer]
            grads_b[layer] = delta.sum(axis=0)
            if layer > 0:
                delta = (delta @ self.weights_[layer].T) * (activations[layer] > 0)
        return grads_w, grads_b

    # ------------------------------------------------------------ public API
    def fit(self, X, y) -> "MLPClassifier":
        X = as_2d(X)
        self.classes_, indices = encode_labels(y)
        n_classes = self.classes_.size
        if n_classes < 2:
            raise ValueError("need at least two classes")
        targets_full = one_hot(indices, n_classes)
        rng = resolve_rng(self.seed)
        self._init_params(X.shape[1], n_classes, rng)
        velocity_w = [np.zeros_like(W) for W in self.weights_]
        velocity_b = [np.zeros_like(b) for b in self.biases_]
        self.loss_history_ = []

        for _ in range(self.n_epochs):
            epoch_loss = 0.0
            n_batches = 0
            for batch in minibatches(X.shape[0], self.batch_size, rng):
                activations, logits = self._forward(X[batch])
                proba = softmax(logits)
                batch_targets = targets_full[batch]
                loss = -np.mean(
                    np.sum(batch_targets * np.log(np.clip(proba, 1e-12, 1.0)), axis=1)
                )
                epoch_loss += loss
                n_batches += 1
                grads_w, grads_b = self._backward(activations, proba, batch_targets)
                for layer in range(len(self.weights_)):
                    velocity_w[layer] = (
                        self.momentum * velocity_w[layer]
                        - self.learning_rate * grads_w[layer]
                    )
                    velocity_b[layer] = (
                        self.momentum * velocity_b[layer]
                        - self.learning_rate * grads_b[layer]
                    )
                    self.weights_[layer] += velocity_w[layer]
                    self.biases_[layer] += velocity_b[layer]
            self.loss_history_.append(epoch_loss / max(n_batches, 1))
        self._mark_fitted()
        return self

    def predict_proba(self, X) -> np.ndarray:
        self.check_fitted()
        _, logits = self._forward(as_2d(X))
        return softmax(logits)

    def get_params(self) -> dict:
        self.check_fitted()
        params: dict = {"n_layers": len(self.weights_)}
        for i, (W, b) in enumerate(zip(self.weights_, self.biases_)):
            params[f"W{i}"] = W
            params[f"b{i}"] = b
        return params
