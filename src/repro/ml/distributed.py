"""Simulated synchronous data-parallel distributed training (section VII-F).

The paper measures ResNet18 on up to 8 physical GPUs; offline we reproduce
the *experiment*, not the hardware: gradients are genuinely computed by
``n_workers`` shards and averaged (synchronous data-parallel SGD — the
update math is exact), while wall-clock is advanced on a simulated clock::

    step_time = compute_time / n_workers + sync_overhead(n_workers)

``compute_time`` is calibrated from the measured single-shard gradient
cost, so the loss-vs-simulated-time curves in Fig. 11(a) have the right
relative shape: more workers -> higher sample throughput -> faster loss
decay, with diminishing returns from the synchronization term.

``pipeline_speedup`` is the closed-form Amdahl model the paper plots in
Fig. 11(b): ``Speedup = 1 / ((1 - p) + p / k)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .base import as_2d, encode_labels, one_hot
from .mlp import MLPClassifier
from .utils import resolve_rng, softmax


def pipeline_speedup(p: float, k: float) -> float:
    """Paper's pipeline-time speedup model: 1 / ((1-p) + p/k).

    ``p`` is the fraction of pipeline time spent in model training and
    ``k`` the training speedup from distributed execution.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    return 1.0 / ((1.0 - p) + p / k)


@dataclass
class TrainingTrace:
    """Loss curve on the simulated clock.

    ``losses`` holds raw per-step minibatch losses; ``smoothed`` holds an
    exponential moving average (the curve a dashboard would plot — raw
    minibatch losses are too noisy for cross-run time comparisons).
    """

    n_workers: int
    times: list[float] = field(default_factory=list)
    losses: list[float] = field(default_factory=list)
    smoothed: list[float] = field(default_factory=list)

    def loss_at_time(self, t: float) -> float:
        """Last smoothed loss recorded at or before simulated time ``t``."""
        idx = np.searchsorted(self.times, t, side="right") - 1
        if idx < 0:
            return float("nan")
        series = self.smoothed if self.smoothed else self.losses
        return series[idx]


class DistributedTrainer:
    """Synchronous data-parallel SGD over an MLP with a simulated clock."""

    def __init__(
        self,
        model: MLPClassifier,
        n_workers: int = 1,
        sync_overhead_fraction: float = 0.04,
        seed: int = 0,
    ):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if sync_overhead_fraction < 0:
            raise ValueError("sync_overhead_fraction must be >= 0")
        self.model = model
        self.n_workers = n_workers
        # All-reduce cost grows with the worker count but is proportional
        # to the per-batch compute (gradient size ~ model size); expressing
        # it as a fraction keeps the simulation sane across model scales.
        self.sync_overhead_fraction = sync_overhead_fraction
        self.seed = seed

    def train(
        self,
        X,
        y,
        n_steps: int = 200,
        global_batch: int = 64,
        compute_time_per_batch: float | None = None,
    ) -> TrainingTrace:
        """Run ``n_steps`` synchronous steps; return the simulated-time trace.

        Each step draws a global batch, shards it across workers, computes
        per-shard gradients, averages them, and applies one SGD update —
        numerically the same update a single worker would make on the full
        batch, which is the defining property of synchronous data-parallel
        training.
        """
        model = self.model
        X = as_2d(X)
        model.classes_, indices = encode_labels(y)
        n_classes = model.classes_.size
        targets_full = one_hot(indices, n_classes)
        rng = resolve_rng(self.seed)
        model._init_params(X.shape[1], n_classes, rng)

        if compute_time_per_batch is None:
            compute_time_per_batch = self._calibrate(X, targets_full, global_batch)

        trace = TrainingTrace(n_workers=self.n_workers)
        clock = 0.0
        overhead = 0.0
        if self.n_workers > 1:
            overhead = (
                self.sync_overhead_fraction
                * compute_time_per_batch
                * np.log2(self.n_workers)
            )

        for _ in range(n_steps):
            batch = rng.choice(X.shape[0], size=min(global_batch, X.shape[0]), replace=False)
            shards = np.array_split(batch, self.n_workers)
            grads_w = [np.zeros_like(W) for W in model.weights_]
            grads_b = [np.zeros_like(b) for b in model.biases_]
            total = 0
            for shard in shards:
                if shard.size == 0:
                    continue
                activations, logits = model._forward(X[shard])
                proba = softmax(logits)
                shard_targets = targets_full[shard]
                total += shard.size
                gw, gb = model._backward(activations, proba, shard_targets)
                # _backward normalizes by shard size; undo to weight shards
                # by their sample counts before global averaging.
                for layer in range(len(grads_w)):
                    grads_w[layer] += gw[layer] * shard.size
                    grads_b[layer] += gb[layer] * shard.size
            for layer in range(len(grads_w)):
                model.weights_[layer] -= model.learning_rate * grads_w[layer] / total
                model.biases_[layer] -= model.learning_rate * grads_b[layer] / total

            clock += compute_time_per_batch / self.n_workers + overhead
            trace.times.append(clock)
            # Record the full-dataset training loss: monotone-comparable
            # across worker counts (minibatch losses are too noisy; the
            # simulated clock never charges for this bookkeeping pass).
            _, logits = model._forward(X)
            proba = softmax(logits)
            raw = float(
                -np.mean(
                    np.sum(targets_full * np.log(np.clip(proba, 1e-12, 1.0)), axis=1)
                )
            )
            trace.losses.append(raw)
            previous = trace.smoothed[-1] if trace.smoothed else raw
            trace.smoothed.append(0.8 * previous + 0.2 * raw)

        model._mark_fitted()
        return trace

    def _calibrate(self, X, targets_full, global_batch: int) -> float:
        """Measure the real single-worker cost of one batch gradient."""
        model = self.model
        batch = np.arange(min(global_batch, X.shape[0]))
        start = time.perf_counter()
        activations, logits = model._forward(X[batch])
        proba = softmax(logits)
        model._backward(activations, proba, targets_full[batch])
        return max(time.perf_counter() - start, 1e-5)
