"""Shared ML utilities: splits, batching, seeded randomness."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np


def resolve_rng(seed_or_rng) -> np.random.Generator:
    """Accept a seed, a Generator, or None; return a Generator."""
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_fraction: float = 0.25,
    seed: int | np.random.Generator = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffled split into (X_train, X_test, y_train, y_test)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    X = np.asarray(X)
    y = np.asarray(y)
    if X.shape[0] != y.shape[0]:
        raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
    rng = resolve_rng(seed)
    order = rng.permutation(X.shape[0])
    n_test = max(1, int(round(X.shape[0] * test_fraction)))
    test_idx, train_idx = order[:n_test], order[n_test:]
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


def minibatches(
    n_samples: int,
    batch_size: int,
    rng: np.random.Generator,
    shuffle: bool = True,
) -> Iterator[np.ndarray]:
    """Yield index arrays covering [0, n_samples) in batches."""
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    order = rng.permutation(n_samples) if shuffle else np.arange(n_samples)
    for start in range(0, n_samples, batch_size):
        yield order[start : start + batch_size]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, numerically stabilized."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z, dtype=np.float64)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def relu(z: np.ndarray) -> np.ndarray:
    return np.maximum(z, 0.0)


def xavier_init(
    rng: np.random.Generator, fan_in: int, fan_out: int
) -> np.ndarray:
    """Glorot-uniform weight initialization."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))
