"""Decision stumps and AdaBoost (SAMME) for the Autolearn pipeline.

The Autolearn pipeline's final step builds "an AdaBoost classifier ... for
the image classification task" (paper section VII-A). SAMME generalizes
the classic two-class AdaBoost to the 10-class digit problem.
"""

from __future__ import annotations

import numpy as np

from .base import Classifier, as_2d, encode_labels


class DecisionStump:
    """Depth-1 decision tree: threshold on one feature, weighted classes.

    ``fit`` minimizes weighted misclassification over a quantile grid of
    candidate thresholds per feature, predicting the weighted-majority
    class on each side of the split.
    """

    def __init__(self, n_thresholds: int = 12):
        if n_thresholds < 1:
            raise ValueError(f"n_thresholds must be >= 1, got {n_thresholds}")
        self.n_thresholds = n_thresholds
        self.feature_: int = -1
        self.threshold_: float = 0.0
        self.left_class_: int = 0
        self.right_class_: int = 0

    def fit(self, X: np.ndarray, y_idx: np.ndarray, weights: np.ndarray, n_classes: int):
        X = as_2d(X)
        best_err = np.inf
        quantiles = np.linspace(0.05, 0.95, self.n_thresholds)
        # Per-class weight rows (C, n): lets every threshold's side scores
        # be computed with one matrix product per feature.
        class_weights = np.zeros((n_classes, X.shape[0]))
        class_weights[y_idx, np.arange(X.shape[0])] = weights
        total_per_class = class_weights.sum(axis=1)  # (C,)
        total_weight = weights.sum()

        for feature in range(X.shape[1]):
            column = X[:, feature]
            thresholds = np.unique(np.quantile(column, quantiles))
            left_mask = column[:, None] <= thresholds[None, :]  # (n, t)
            n_left = left_mask.sum(axis=0)
            valid = (n_left > 0) & (n_left < X.shape[0])
            if not valid.any():
                continue
            left_scores = class_weights @ left_mask  # (C, t)
            right_scores = total_per_class[:, None] - left_scores
            err = (
                total_weight
                - left_scores.max(axis=0)
                - right_scores.max(axis=0)
            )
            err[~valid] = np.inf
            pick = int(np.argmin(err))
            if err[pick] < best_err:
                best_err = float(err[pick])
                self.feature_ = feature
                self.threshold_ = float(thresholds[pick])
                self.left_class_ = int(left_scores[:, pick].argmax())
                self.right_class_ = int(right_scores[:, pick].argmax())
        return self

    def predict_idx(self, X: np.ndarray) -> np.ndarray:
        X = as_2d(X)
        left = X[:, self.feature_] <= self.threshold_
        return np.where(left, self.left_class_, self.right_class_)


class AdaBoostClassifier(Classifier):
    """SAMME multi-class AdaBoost over decision stumps."""

    def __init__(self, n_estimators: int = 40, n_thresholds: int = 12):
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.n_thresholds = n_thresholds
        self.stumps_: list[DecisionStump] = []
        self.alphas_: list[float] = []

    def fit(self, X, y) -> "AdaBoostClassifier":
        X = as_2d(X)
        self.classes_, y_idx = encode_labels(y)
        n_classes = self.classes_.size
        n = X.shape[0]
        weights = np.full(n, 1.0 / n)
        self.stumps_, self.alphas_ = [], []

        for _ in range(self.n_estimators):
            stump = DecisionStump(self.n_thresholds).fit(X, y_idx, weights, n_classes)
            pred = stump.predict_idx(X)
            wrong = pred != y_idx
            err = float(weights[wrong].sum())
            if err >= 1.0 - 1.0 / n_classes:
                break  # weaker than chance: stop boosting
            err = max(err, 1e-12)
            alpha = np.log((1.0 - err) / err) + np.log(n_classes - 1.0)
            self.stumps_.append(stump)
            self.alphas_.append(float(alpha))
            weights = weights * np.exp(alpha * wrong)
            weights /= weights.sum()
            if err < 1e-10:
                break  # perfect stump, nothing left to reweight
        if not self.stumps_:
            # Degenerate input: keep the first stump anyway so predict works.
            stump = DecisionStump(self.n_thresholds).fit(X, y_idx, weights, n_classes)
            self.stumps_ = [stump]
            self.alphas_ = [1.0]
        self._mark_fitted()
        return self

    def _votes(self, X) -> np.ndarray:
        X = as_2d(X)
        n_classes = self.classes_.size
        votes = np.zeros((X.shape[0], n_classes))
        for stump, alpha in zip(self.stumps_, self.alphas_):
            pred = stump.predict_idx(X)
            votes[np.arange(X.shape[0]), pred] += alpha
        return votes

    def predict_proba(self, X) -> np.ndarray:
        self.check_fitted()
        votes = self._votes(X)
        total = votes.sum(axis=1, keepdims=True)
        total[total == 0] = 1.0
        return votes / total

    def get_params(self) -> dict:
        self.check_fitted()
        return {
            "features": np.array([s.feature_ for s in self.stumps_], dtype=np.int64),
            "thresholds": np.array([s.threshold_ for s in self.stumps_]),
            "left_classes": np.array([s.left_class_ for s in self.stumps_], dtype=np.int64),
            "right_classes": np.array([s.right_class_ for s in self.stumps_], dtype=np.int64),
            "alphas": np.array(self.alphas_),
        }
