"""Numpy-only ML substrate: the models and transforms the pipelines use."""

from .base import Classifier, Estimator, Transformer
from .boosting import AdaBoostClassifier, DecisionStump
from .cnn import SimpleCNN, im2col
from .distributed import DistributedTrainer, TrainingTrace, pipeline_speedup
from .embeddings import WordEmbedder, cooccurrence_matrix, ppmi_matrix
from .hmm import GaussianHMM
from .linear import BinaryLogisticRegression, LogisticRegression, RidgeRegression
from .metrics import (
    accuracy,
    confusion_matrix,
    f1_score,
    log_loss,
    mse,
    roc_auc,
    score_from_metric,
)
from .mlp import MLPClassifier
from .preprocess import (
    MeanImputer,
    MinMaxScaler,
    ModeImputer,
    OneHotEncoder,
    StandardScaler,
)
from .text import Vocabulary, tokenize
from .utils import minibatches, resolve_rng, train_test_split
from .zernike import ZernikeExtractor

__all__ = [
    "Classifier", "Estimator", "Transformer",
    "AdaBoostClassifier", "DecisionStump",
    "SimpleCNN", "im2col",
    "DistributedTrainer", "TrainingTrace", "pipeline_speedup",
    "WordEmbedder", "cooccurrence_matrix", "ppmi_matrix",
    "GaussianHMM",
    "BinaryLogisticRegression", "LogisticRegression", "RidgeRegression",
    "accuracy", "confusion_matrix", "f1_score", "log_loss", "mse", "roc_auc",
    "score_from_metric",
    "MLPClassifier",
    "MeanImputer", "MinMaxScaler", "ModeImputer", "OneHotEncoder", "StandardScaler",
    "Vocabulary", "tokenize",
    "minibatches", "resolve_rng", "train_test_split",
    "ZernikeExtractor",
]
