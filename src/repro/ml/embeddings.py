"""Word embeddings: PPMI co-occurrence matrix + truncated SVD.

The SA pipeline's costly pre-processing steps "process the external corpora
and pre-trained word embeddings" (paper section VII-A). With no pre-trained
vectors available offline, we *train* embeddings from the synthetic corpus:
positive pointwise mutual information over a sliding co-occurrence window,
factorized with sparse truncated SVD (scipy). Documents are then embedded
as the mean of their word vectors — the feature matrix the classifier
consumes. This is deliberately the slowest stage of the SA pipeline,
matching the paper's observation that SA's pre-processing dominates.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import svds

from ..errors import NotFittedError
from .text import Vocabulary


def cooccurrence_matrix(
    encoded_docs: list[np.ndarray],
    vocab_size: int,
    window: int = 4,
) -> sparse.csr_matrix:
    """Symmetric within-window co-occurrence counts."""
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    rows: list[int] = []
    cols: list[int] = []
    for doc in encoded_docs:
        n = doc.shape[0]
        for i in range(n):
            lo = max(0, i - window)
            for j in range(lo, i):
                rows.append(int(doc[i]))
                cols.append(int(doc[j]))
                rows.append(int(doc[j]))
                cols.append(int(doc[i]))
    data = np.ones(len(rows), dtype=np.float64)
    return sparse.csr_matrix(
        (data, (rows, cols)), shape=(vocab_size, vocab_size)
    )


def ppmi_matrix(cooc: sparse.csr_matrix, shift: float = 1.0) -> sparse.csr_matrix:
    """Positive (shifted) PMI transform of a co-occurrence matrix."""
    total = cooc.sum()
    if total == 0:
        return cooc.copy()
    row_sums = np.asarray(cooc.sum(axis=1)).ravel()
    col_sums = np.asarray(cooc.sum(axis=0)).ravel()
    coo = cooc.tocoo()
    with np.errstate(divide="ignore"):
        pmi = np.log(
            (coo.data * total)
            / (row_sums[coo.row] * col_sums[coo.col] + 1e-12)
        ) - np.log(shift)
    positive = pmi > 0
    return sparse.csr_matrix(
        (pmi[positive], (coo.row[positive], coo.col[positive])),
        shape=cooc.shape,
    )


class WordEmbedder:
    """PPMI + truncated-SVD word vectors with mean-pooled doc embeddings."""

    def __init__(self, dimensions: int = 32, window: int = 4, seed: int = 0):
        if dimensions < 2:
            raise ValueError(f"dimensions must be >= 2, got {dimensions}")
        self.dimensions = dimensions
        self.window = window
        self.seed = seed
        self.vocabulary: Vocabulary | None = None
        self.vectors_: np.ndarray | None = None

    def fit(self, encoded_docs: list[np.ndarray], vocabulary: Vocabulary) -> "WordEmbedder":
        self.vocabulary = vocabulary
        vocab_size = len(vocabulary)
        cooc = cooccurrence_matrix(encoded_docs, vocab_size, self.window)
        ppmi = ppmi_matrix(cooc)
        k = min(self.dimensions, vocab_size - 1)
        rng = np.random.default_rng(self.seed)
        v0 = rng.standard_normal(vocab_size)
        u, s, _ = svds(ppmi, k=k, v0=v0)
        # svds returns ascending singular values; flip for determinism
        order = np.argsort(-s)
        vectors = u[:, order] * np.sqrt(s[order])[None, :]
        if vectors.shape[1] < self.dimensions:
            pad = np.zeros((vocab_size, self.dimensions - vectors.shape[1]))
            vectors = np.hstack([vectors, pad])
        # Fix sign convention (largest-magnitude entry positive per column).
        for col in range(vectors.shape[1]):
            pivot = np.argmax(np.abs(vectors[:, col]))
            if vectors[pivot, col] < 0:
                vectors[:, col] = -vectors[:, col]
        self.vectors_ = vectors
        return self

    def embed_document(self, encoded_doc: np.ndarray) -> np.ndarray:
        if self.vectors_ is None:
            raise NotFittedError("WordEmbedder")
        if encoded_doc.size == 0:
            return np.zeros(self.vectors_.shape[1])
        return self.vectors_[encoded_doc].mean(axis=0)

    def embed_documents(self, encoded_docs: list[np.ndarray]) -> np.ndarray:
        return np.vstack([self.embed_document(d) for d in encoded_docs])

    def get_params(self) -> dict:
        if self.vectors_ is None:
            raise NotFittedError("WordEmbedder")
        return {"vectors": self.vectors_}
