"""ForkBase-like storage substrate: chunking, content addressing, versioned KV.

Public surface:

* :class:`ContentDefinedChunker` / :class:`FixedSizeChunker` — blob splitting
* :class:`MemoryChunkStore` / :class:`FileChunkStore` — chunk persistence
* :class:`ObjectStore` — whole-blob storage via chunk recipes
* :class:`VersionedKV` — branchable versioned key-value layer
* :class:`FolderStore` — the baselines' full-copy archival store
* schema-hash helpers from :mod:`repro.storage.hashing`
"""

from .accounting import StorageStats
from .chunk_store import ChunkStore, FileChunkStore, MemoryChunkStore
from .chunking import ChunkerConfig, ContentDefinedChunker, FixedSizeChunker, rolling_hashes
from .folder_store import FolderStore
from .gc import GCReport, collect_garbage, live_digests_of_repo
from .hashing import (
    array_schema_hash,
    fingerprint_many,
    image_schema_hash,
    meta_schema_hash,
    relational_schema_hash,
    sha256_hex,
    short_digest,
    standardize_header,
    text_schema_hash,
)
from .kv import DEFAULT_BRANCH, VersionedKV, VersionNode
from .object_store import ObjectStore, Recipe

__all__ = [
    "StorageStats",
    "ChunkStore",
    "FileChunkStore",
    "MemoryChunkStore",
    "ChunkerConfig",
    "ContentDefinedChunker",
    "FixedSizeChunker",
    "rolling_hashes",
    "FolderStore",
    "GCReport", "collect_garbage", "live_digests_of_repo",
    "array_schema_hash",
    "fingerprint_many",
    "image_schema_hash",
    "meta_schema_hash",
    "relational_schema_hash",
    "sha256_hex",
    "short_digest",
    "standardize_header",
    "text_schema_hash",
    "DEFAULT_BRANCH",
    "VersionedKV",
    "VersionNode",
    "ObjectStore",
    "Recipe",
]
