"""Garbage collection for the content-addressed store.

Immutable engines never overwrite, so abandoned experiments leave chunks
behind. GC is mark-and-sweep: callers name the *live roots* (blob digests
still referenced by checkpoint records, KV heads, or commits), the
collector walks their recipes to the chunk level and drops everything
else. Content addressing makes this safe: a chunk is either reachable
from a live recipe or provably garbage.
"""

from __future__ import annotations

from dataclasses import dataclass

from .object_store import ObjectStore


@dataclass(frozen=True)
class GCReport:
    """What a sweep did."""

    live_blobs: int
    live_chunks: int
    swept_chunks: int
    swept_bytes: int


def collect_garbage(store: ObjectStore, live_blob_digests: set[str]) -> GCReport:
    """Drop chunks unreachable from ``live_blob_digests``.

    The sweep speaks only the :class:`ChunkStore` interface
    (``digests()``/``discard()``), so every backend sweeps in place:
    memory stores drop dict entries, :class:`FileChunkStore` unlinks
    object files (and empty fan-out directories), and a hub tenant view
    releases its refcounts on the shared backend — the bytes disappear
    deployment-wide only when the last tenant's sweep lets go.
    """
    chunks = store.chunks

    live_chunks: set[str] = set()
    live_blobs = 0
    for digest in live_blob_digests:
        if not store.contains(digest):
            continue
        live_blobs += 1
        live_chunks.update(store.recipe(digest).chunk_digests)

    swept_chunks = 0
    swept_bytes = 0
    for digest in list(chunks.digests()):
        if digest not in live_chunks:
            swept_bytes += chunks.discard(digest)
            swept_chunks += 1

    # Drop dead recipes so future GC runs stay linear in live data.
    dead_recipes = [
        digest for digest in store._recipes if digest not in live_blob_digests
    ]
    for digest in dead_recipes:
        del store._recipes[digest]
        store.revision += 1

    return GCReport(
        live_blobs=live_blobs,
        live_chunks=len(live_chunks),
        swept_chunks=swept_chunks,
        swept_bytes=swept_bytes,
    )


def live_digests_of_repo(repo) -> set[str]:
    """Live blob roots of an MLCask repository: every checkpointed output
    referenced by a commit, plus every checkpoint record (merge candidates
    not committed anywhere are *not* roots — they are what GC reclaims
    after pruning history)."""
    live: set[str] = set()
    for commit in repo.graph.all_commits():
        live.update(commit.stage_outputs.values())
    return live
