"""Folder-archival store: the baselines' storage mechanism.

Per paper section VII-B, ModelDB and MLflow "archive different versions of
libraries and intermediate results into separate folders": every version is
a full copy, so logical bytes equal physical bytes and storage grows
linearly with versions (the ModelDB line in Fig. 7). Writes are nearly
instantaneous compared to a deduplicating engine because the store does no
chunking or hashing — the paper notes the baselines "almost instantaneously
materialize the reusable outputs while MLCask takes a few seconds".
"""

from __future__ import annotations

import os

from ..errors import ObjectNotFoundError
from .accounting import StorageStats


class FolderStore:
    """Archive each (namespace, version) as an independent full copy."""

    def __init__(self, root: str | os.PathLike[str] | None = None):
        # With a root, copies land on the real filesystem; without one the
        # store is memory-backed, which keeps experiments fast while still
        # paying a byte-copy per archival (the baselines' true cost shape).
        self.root = os.fspath(root) if root is not None else None
        if self.root is not None:
            os.makedirs(self.root, exist_ok=True)
        self._memory: dict[tuple[str, str], bytes] = {}
        self.stats = StorageStats()

    def _path(self, namespace: str, version: str) -> str:
        assert self.root is not None
        folder = os.path.join(self.root, namespace, version)
        os.makedirs(folder, exist_ok=True)
        return os.path.join(folder, "data.bin")

    def archive(self, namespace: str, version: str, data: bytes) -> None:
        """Store a full copy of ``data`` under its own version folder."""
        with self.stats.timed_write():
            self.stats.record_logical(len(data))
            self.stats.record_physical(len(data))  # no dedup: every copy held
            if self.root is not None:
                with open(self._path(namespace, version), "wb") as fh:
                    fh.write(data)
            else:
                self._memory[(namespace, version)] = bytes(data)

    def retrieve(self, namespace: str, version: str) -> bytes:
        with self.stats.timed_read():
            if self.root is not None:
                path = self._path(namespace, version)
                if not os.path.exists(path):
                    raise ObjectNotFoundError(f"{namespace}/{version}")
                with open(path, "rb") as fh:
                    data = fh.read()
            else:
                try:
                    data = self._memory[(namespace, version)]
                except KeyError:
                    raise ObjectNotFoundError(f"{namespace}/{version}") from None
        self.stats.record_read(len(data))
        return data

    def contains(self, namespace: str, version: str) -> bool:
        if self.root is not None:
            return os.path.exists(self._path(namespace, version))
        return (namespace, version) in self._memory

    def versions(self, namespace: str) -> list[str]:
        if self.root is not None:
            folder = os.path.join(self.root, namespace)
            if not os.path.isdir(folder):
                return []
            return sorted(os.listdir(folder))
        return sorted(v for (ns, v) in self._memory if ns == namespace)
